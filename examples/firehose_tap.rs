//! Subscribe to the Relay firehose with a cursor and summarise the event mix,
//! exactly like the paper's Firehose Dataset collection (§3, Table 1).
//!
//! ```sh
//! cargo run --example firehose_tap
//! ```

use bluesky_repro::bsky_atproto::firehose::EventKind;
use bluesky_repro::bsky_atproto::Datetime;
use bluesky_repro::bsky_workload::{ScenarioConfig, World};
use std::collections::BTreeMap;

fn main() {
    let mut config = ScenarioConfig::test_scale(2);
    config.start = Datetime::from_ymd(2024, 2, 15).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 1).unwrap();
    config.scale = 40_000;
    let mut world = World::new(config);

    // Tap the firehose day by day, exactly like a long-lived subscriber.
    let mut cursor = 0u64;
    let mut counts: BTreeMap<EventKind, u64> = BTreeMap::new();
    let mut bytes = 0u64;
    while !world.finished() {
        world.step_day();
        let sub = world.relay.subscribe(cursor);
        cursor = sub.cursor;
        for event in &sub.events {
            *counts.entry(event.kind()).or_insert(0) += 1;
            bytes += event.wire_size() as u64;
        }
    }

    let total: u64 = counts.values().sum();
    println!("Firehose event mix over {} events:", total);
    for kind in EventKind::all() {
        let count = counts.get(&kind).copied().unwrap_or(0);
        if count > 0 {
            println!(
                "  {:<20} {:>8}  ({:.2} %)",
                kind.display_name(),
                count,
                count as f64 / total as f64 * 100.0
            );
        }
    }
    println!(
        "wire volume: {:.2} MB over {} simulated days",
        bytes as f64 / 1e6,
        config.total_days()
    );
}
