//! Quickstart: build a tiny simulated Bluesky network, run it for a few
//! weeks, and print what the Relay and AppView observed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bluesky_repro::bsky_atproto::Datetime;
use bluesky_repro::bsky_workload::{ScenarioConfig, World};

fn main() {
    // A small, fast scenario: six weeks around the public launch.
    let mut config = ScenarioConfig::test_scale(1);
    config.start = Datetime::from_ymd(2024, 2, 1).unwrap();
    config.end = Datetime::from_ymd(2024, 3, 15).unwrap();
    config.scale = 40_000;

    let mut world = World::new(config);
    println!(
        "simulating {} days with a target of ≈{} users...",
        config.total_days(),
        config.target_users()
    );
    world.run_to_end();

    println!("users signed up:        {}", world.users.len());
    println!(
        "accounts known to relay: {}",
        world.relay.known_account_count()
    );
    println!(
        "firehose events:         {}",
        world.relay.firehose().total_events()
    );
    println!(
        "posts indexed by AppView: {}",
        world.appview.index().post_count()
    );
    println!(
        "follow edges:            {}",
        world.appview.index().follow_edge_count()
    );
    println!(
        "labels ingested:         {}",
        world.appview.index().labels_ingested()
    );
    println!("feed generators online:  {}", world.feedgens.len());

    // Show one user's profile through the AppView API, like a client would.
    if let Some(user) = world.users.first() {
        let did = user.did.clone();
        if let Ok(profile) = world.appview.get_profile(&did) {
            println!(
                "profile of @{}: {} posts, {} followers, {} follows",
                profile.handle, profile.posts, profile.followers, profile.follows
            );
        }
    }
}
