//! Build and query custom Feed Generators against the public API: a
//! regex-filtered Skyfeed-style feed and a personalised feed, hydrated
//! through the AppView (§2, §7 of the paper).
//!
//! ```sh
//! cargo run --example feed_generator
//! ```

use bluesky_repro::bsky_appview::AppView;
use bluesky_repro::bsky_atproto::nsid::known;
use bluesky_repro::bsky_atproto::record::{FeedGeneratorRecord, PostRecord, Record};
use bluesky_repro::bsky_atproto::{AtUri, Datetime, Did, Handle, Nsid};
use bluesky_repro::bsky_feedgen::{
    CurationMode, FeedFilter, FeedGenerator, FeedInput, FeedPipeline, Regex, RetentionPolicy,
};

fn main() {
    let now = Datetime::from_ymd(2024, 4, 20).unwrap();
    let creator = Did::plc_from_seed(b"feed-creator");
    let mut appview = AppView::new();

    // A Skyfeed-style regex feed: every post mentioning ramen (in English or
    // Japanese).
    let mut ramen_feed = FeedGenerator::new(
        creator.clone(),
        "ramen-feed",
        FeedGeneratorRecord {
            service_did: Did::web("skyfeed.app").unwrap(),
            display_name: "ramen-feed".into(),
            description: "every post about ramen / ラーメン".into(),
            created_at: now,
        },
        CurationMode::Pipeline(FeedPipeline {
            inputs: vec![FeedInput::WholeNetwork],
            filters: vec![FeedFilter::TextRegex(
                Regex::new_case_insensitive("ramen|ラーメン").unwrap(),
            )],
        }),
        RetentionPolicy::Count(100),
    );

    // A personalised feed that returns nothing to anonymous crawlers.
    let mut personalised = FeedGenerator::new(
        creator.clone(),
        "the-algorithm",
        FeedGeneratorRecord {
            service_did: Did::web("selfhosted-feeds.example").unwrap(),
            display_name: "the-algorithm".into(),
            description: "personalised for you".into(),
            created_at: now,
        },
        CurationMode::Personalized,
        RetentionPolicy::All,
    );

    // Publish a handful of posts into the AppView and let the feed observe
    // them (the firehose-with-blocks path).
    let texts = [
        ("best ramen in Tokyo", "ja"),
        ("ラーメン食べたい", "ja"),
        ("I prefer sushi actually", "en"),
        ("homemade ramen recipe thread", "en"),
        ("cat pictures only", "en"),
    ];
    let author = Did::plc_from_seed(b"author");
    appview
        .index_mut()
        .upsert_actor(&author, &Handle::parse("author.bsky.social").unwrap());
    for (i, (text, lang)) in texts.iter().enumerate() {
        let rkey = format!("post{i:08}");
        let post = PostRecord::simple(*text, lang, now.plus_seconds(i as i64 * 60));
        appview.index_mut().index_record(
            &author,
            &Nsid::parse(known::POST).unwrap(),
            &rkey,
            &Record::Post(post.clone()),
            now,
        );
        let uri = AtUri::record(author.clone(), Nsid::parse(known::POST).unwrap(), rkey);
        ramen_feed.observe_post(&uri, &author, &post, now);
        personalised.curate_manually(uri, post.created_at, now);
    }

    let hydrated = appview.get_feed(&mut ramen_feed, 10, None);
    println!("ramen-feed returned {} posts:", hydrated.len());
    for post in &hydrated {
        println!("  [{}] {}", post.record.langs.join(","), post.record.text);
    }

    let anonymous = appview.get_feed(&mut personalised, 10, None);
    let viewer = Did::plc_from_seed(b"subscriber");
    let for_viewer = appview.get_feed(&mut personalised, 10, Some(&viewer));
    println!(
        "the-algorithm: {} posts for an anonymous crawler, {} for a real viewer",
        anonymous.len(),
        for_viewer.len()
    );

    let view = appview.get_feed_generator(&ramen_feed);
    println!(
        "getFeedGenerator: '{}' by {} — online: {}, valid: {}",
        view.display_name, view.creator, view.is_online, view.is_valid
    );
}
