//! Run a community Labeler end to end: observe posts, publish labels after a
//! reaction delay, rescind a false positive, and apply user moderation
//! preferences to decide what a client shows (§6 of the paper).
//!
//! ```sh
//! cargo run --example labeler_ops
//! ```

use bluesky_repro::bsky_appview::{decide_post_visibility, PostInfo, Visibility};
use bluesky_repro::bsky_atproto::label::LabelTarget;
use bluesky_repro::bsky_atproto::nsid::known;
use bluesky_repro::bsky_atproto::record::{Embed, ImageEmbed, MediaKind, PostRecord};
use bluesky_repro::bsky_atproto::{AtUri, Datetime, Did, Nsid};
use bluesky_repro::bsky_labeler::{
    IssuancePolicy, LabelerOperator, LabelerService, ReactionModel, Trigger,
};
use bluesky_repro::bsky_pds::ModerationPreferences;
use bluesky_repro::bsky_simnet::net::HostingClass;
use bluesky_repro::bsky_simnet::SimRng;

fn main() {
    let now = Datetime::from_ymd(2024, 4, 1).unwrap();
    let author = Did::plc_from_seed(b"author");

    // An automated alt-text labeler, as in Table 3's most active entry.
    let mut labeler = LabelerService::new(
        Did::plc_from_seed(b"alt-text-labeler"),
        "Bad Accessibility / Alt Text Labeler",
        LabelerOperator::Community,
        HostingClass::Cloud,
        IssuancePolicy::new(
            vec![Trigger::MissingAltText {
                value: "no-alt-text".into(),
            }],
            ReactionModel::Automated {
                median_secs: 0.6,
                sigma: 0.2,
            },
        )
        .with_rescind_probability(0.1),
        now,
        SimRng::new(7),
    );

    // Two posts: one with alt text, one without.
    let described = PostRecord {
        text: "my cat".into(),
        created_at: now,
        langs: vec!["en".into()],
        reply_parent: None,
        embed: Some(Embed::Images(vec![ImageEmbed {
            alt: Some("a tabby cat on a sofa".into()),
            kind: MediaKind::Photo,
        }])),
        tags: vec![],
    };
    let undescribed = PostRecord {
        embed: Some(Embed::Images(vec![ImageEmbed {
            alt: None,
            kind: MediaKind::Photo,
        }])),
        ..described.clone()
    };
    let uri_ok = AtUri::record(
        author.clone(),
        Nsid::parse(known::POST).unwrap(),
        "withalt00001",
    );
    let uri_missing = AtUri::record(
        author.clone(),
        Nsid::parse(known::POST).unwrap(),
        "noalt0000001",
    );
    labeler.observe_post(&uri_ok, &described, now);
    labeler.observe_post(&uri_missing, &undescribed, now);

    // Let the reaction delay elapse and read the public stream.
    labeler.poll(now.plus_seconds(3600));
    let labels: Vec<_> = labeler.subscribe_labels(0).0.to_vec();
    println!("labeler published {} interaction(s):", labels.len());
    for label in &labels {
        println!(
            "  {} -> {} (negated: {})",
            label.value,
            label.target.uri(),
            label.negated
        );
    }

    // Account-level moderation from the official labeler.
    let official = Did::plc_from_seed(b"bluesky-official");
    labeler
        .apply_label(
            LabelTarget::Account(Did::plc_from_seed(b"spammer")),
            "spam",
            now,
        )
        .unwrap();

    // Client-side decision: a viewer subscribed to the community labeler.
    let mut prefs = ModerationPreferences::default();
    prefs.subscribe(labeler.did().clone());
    let post_info = PostInfo {
        uri: uri_missing.clone(),
        author,
        record: undescribed,
        indexed_at: now,
        like_count: 0,
        repost_count: 0,
        labels: labels
            .iter()
            .filter(|l| !l.negated && l.target.uri() == uri_missing.to_string())
            .map(|l| (l.src.clone(), l.value.clone()))
            .collect(),
    };
    let decision = decide_post_visibility(&post_info, &prefs, &official);
    println!(
        "viewer subscribed to the labeler sees the un-described post as: {:?}",
        decision
    );
    assert_ne!(
        decision,
        Visibility::Hide,
        "warnings, not removal, by default"
    );
}
