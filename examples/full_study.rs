//! Run the complete measurement study end to end at a small scale and print
//! every table and figure (a faster version of the `repro` binary).
//!
//! The report is computed by the streaming engine: the collector drives the
//! world day by day and every analysis folds observations incrementally, so
//! the run needs one pass and never retains the firehose.
//!
//! ```sh
//! cargo run --release --example full_study
//! ```

use bluesky_repro::bsky_atproto::Datetime;
use bluesky_repro::bsky_study::{RunSpec, StudyReport};
use bluesky_repro::bsky_workload::ScenarioConfig;

fn main() {
    let mut config = ScenarioConfig::test_scale(42);
    // A shortened horizon keeps this example quick while still covering the
    // opening of the labeler ecosystem and the collection window.
    config.start = Datetime::from_ymd(2024, 1, 15).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 30).unwrap();
    config.scale = 20_000;

    eprintln!(
        "running the full study at scale 1:{} (≈{} users, {} days)...",
        config.scale,
        config.target_users(),
        config.total_days()
    );
    let (report, summary) = StudyReport::run_serial(&RunSpec::new(config));
    println!("{}", report.render());
    eprintln!("{}", summary.render());
}
