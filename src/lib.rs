//! # bluesky-repro
//!
//! Umbrella crate for the reproduction of *Looking AT the Blue Skies of
//! Bluesky* (IMC 2024). It re-exports the workspace crates so the examples
//! and integration tests have a single import surface:
//!
//! * [`bsky_atproto`] — the AT Protocol data model.
//! * [`bsky_simnet`] — the deterministic simulation substrate.
//! * [`bsky_identity`], [`bsky_pds`], [`bsky_relay`], [`bsky_labeler`],
//!   [`bsky_feedgen`], [`bsky_appview`] — the network services.
//! * [`bsky_workload`] — the calibrated synthetic ecosystem.
//! * [`bsky_study`] — the streaming measurement pipeline and analyses.
//!
//! ## The streaming study pipeline
//!
//! The measurement pipeline mirrors how the real study consumed the network:
//! as a continuous stream, not a batch scan. `bsky_study` is built around an
//! *observation bus*:
//!
//! * `bsky_study::Observation` — one bus item per §3 dataset element
//!   (firehose event, repo snapshot, user-identifier row, DID document,
//!   feed-generator entry, labeler entry) plus day-boundary and
//!   collection-window markers.
//! * `bsky_study::Analyzer` — incremental consumers: `observe` folds one
//!   observation into accumulators, `finish` emits the section's tables and
//!   figures.
//! * `bsky_study::StudyEngine` — the bus; `bsky_study::Collector::stream`
//!   produces onto it by driving a [`bsky_workload::World`] day by day
//!   through the public service interfaces.
//!
//! `bsky_study::StudyReport::run` computes the entire report in a single
//! pass with bounded memory — firehose events are never retained; the
//! producer reads the relay in constant-size chunks
//! ([`bsky_workload::World::step_chunk`]) so peak in-flight is independent
//! of daily volume — and `bsky_study::StudyBatch` runs whole seed × scale
//! grids.
//!
//! ## Run configuration: one `RunSpec`, three entry points
//!
//! Every knob a study run has — seeds, scales, engine shards and worker
//! threads, snapshot mode, block-store backend, AppView entity shards, the
//! write-back cache, wire framing, relay topology, fault scenario — lives
//! on one builder, `bsky_study::RunSpec`:
//!
//! ```ignore
//! let spec = RunSpec::new(config)
//!     .jobs(4)
//!     .shards(8)
//!     .store(StoreConfig::paged().page_size(4096))
//!     .appview_shards(4)
//!     .scenario("pds-migration");
//! let (report, summary) = StudyReport::run(&spec);
//! ```
//!
//! The entry points are `bsky_study::StudyReport::run` (sharded across
//! worker threads), `run_serial` (one thread, same report), and
//! `run_batch` (the legacy materializing collector); the repro CLI maps
//! its flags onto the same builder. `RunSpec::validate` rejects
//! inconsistent combinations up front with an actionable message instead
//! of a mid-run panic.
//!
//! ## The sharded engine
//!
//! Every stochastic decision in the workload derives from `(seed, DID,
//! day)` ([`bsky_workload::PopulationPlan`]), so the population partitions
//! exactly by DID hash: `bsky_study::StudyReport::run` (repro
//! `--jobs N [--shards S]`) runs one producer + analyzer set per shard on
//! worker threads and merges the per-shard states through the associative
//! `bsky_study::Analyzer::merge` — producing a report **byte-identical** to
//! the serial run for any shard count.
//!
//! The legacy batch representation survives as one optional materializing
//! analyzer (`bsky_study::datasets::Materialize`), and the batch analysis
//! functions replay materialized datasets through the same accumulators, so
//! all paths agree exactly (see `tests/pipeline_equivalence.rs`).
//!
//! ## The intra-shard pipeline
//!
//! Sharding parallelizes across shards; `RunSpec::pipeline` (repro
//! `--pipeline --analyzer-threads N`) parallelizes *inside* each one. The
//! shard's producer materializes its borrowed bus items into owned,
//! sequence-numbered `bsky_study::ObservationBatch`es and ships them over
//! bounded channels to N analyzer workers
//! (`bsky_study::PipelinedSink`), each folding a disjoint subset of the
//! eight analyzers; the bounded channel's backpressure preserves the
//! one-chunk memory bound, the sequence numbers guarantee every part folds
//! the exact serial stream, and the per-part states reassemble through the
//! same associative merge at shard end. Observations whose analyzers run
//! active measurements against the live world (the end-of-window DID
//! documents) drain the workers and fold inline on the producer thread.
//! The report stays byte-identical for any `(shards, jobs,
//! analyzer_threads)` — pinned by the golden and property tests — while
//! producer store I/O overlaps with analyzer CPU. `jobs` now defaults to
//! the machine's available parallelism clamped to the shard count
//! (`--jobs auto`).
//!
//! ## Incremental repository snapshots
//!
//! The §3 repositories dataset is collected incrementally by default
//! (`bsky_study::SnapshotMode`): repositories log the blocks each commit
//! introduces, the PDS and relay serve `com.atproto.sync.getRepo(did,
//! since=rev)` deltas, and `bsky_study::IncrementalRepoMirror` rides the
//! weekly `sync.listRepos` snapshots — fetching full CARs only for new or
//! rewound DIDs and record-scoped deltas otherwise — while emitting
//! `Observation::Repo` snapshots byte-identical to the window-end full
//! refetch (repro `--incremental` / `--full-snapshots`).
//!
//! ## Pluggable block storage and compaction
//!
//! Every CID-addressed byte blob — repository record and MST node blocks,
//! the relay's mirrored CAR archives, the study mirror's record blocks,
//! and the AppView's per-entity state — lives behind the
//! `bsky_atproto::blockstore::BlockStore` trait. Three backends:
//! `MemStore` (the default), `PagedStore` (fixed-size pages with an LRU of
//! resident pages; cold pages spill to a per-store disk directory and
//! every read-back is re-hashed and verified against its CID), and
//! `CountingStore` (a stats-feeding wrapper for invariants like "a
//! rejected write batch leaves no orphan blocks"). The backend is chosen
//! when a world is built (`bsky_workload::World::new_store`, repro
//! `--store mem|paged --page-size N --spill-dir DIR`) and changes only
//! *where* blocks reside — the golden equivalence test pins mem == paged
//! byte-identical, serial and sharded.
//!
//! ## Entity-sharded, store-backed AppView
//!
//! The AppView's own indices were the last monolithic in-memory state:
//! `bsky_appview::AppViewShards` partitions them by *entity hash* — posts
//! by the FNV-1a hash of their AT-URI, actors and their outgoing graph
//! edges by `bsky_atproto::Did::shard_hash`, the same hash the workload
//! plan partitions the population by — and each shard keeps its
//! `PostInfo`/`ActorInfo` entities as DAG-CBOR blocks in its own
//! `BlockStore` (only key→CID maps, edge sets and counters stay
//! resident). Ingestion decomposes into per-entity primitives routed to
//! the owning shard; queries (`following_timeline`, `getProfile`,
//! `getFeed` hydration) fan out and re-merge under a canonical
//! `(created_at desc, uri)` order; an associative merge mirrors the
//! pipeline's `Analyzer::merge`. Configured end to end via
//! `RunSpec::appview_shards` (repro `--appview-shards N`); a property
//! test pins sharded == monolithic for random event/label interleavings,
//! and the golden equivalence test pins the report byte-identical across
//! appview shard counts × store backends. Labels that arrive before the
//! entity they target are counted
//! (`StreamSummary::appview_labels_preindex`) instead of silently
//! dropped.
//!
//! ## Hot/cold entity split & the write-back cache
//!
//! Each AppView entity is stored in two halves. The *cold* half — record
//! payload, identity fields, labels — encodes once as an immutable
//! positional DAG-CBOR content block. The *hot* half — like/repost and
//! follower/post counters, mutated on nearly every event — accumulates in
//! small resident dirty maps (`bsky_appview::PostCounters` /
//! `ActorCounters`) and flushes at day boundaries into counter blocks of
//! a dozen-odd bytes, so a day of counter bumps costs one encode+put
//! instead of a full-entity re-encode → re-hash → delete+put cycle per
//! event. In front of each shard's store,
//! `bsky_atproto::blockstore::WriteBackStore` (repro `--writeback
//! on|off`, `RunSpec::write_back`) buffers same-day block writes so
//! create → mutate → delete cycles within a day never reach the backend,
//! and the day-boundary flush also demotes sealed cold pages
//! (`BlockStore::evict_cold`), keeping steady-state residency to the open
//! page plus the dirty maps. Cache hits, misses, flushes and coalesced
//! writes are `bsky_study::StreamSummary` counters, and the golden
//! equivalence tests pin reports byte-identical cache-on vs cache-off,
//! serial and sharded, mem and paged.
//!
//! On the wire, MST node entries are prefix-compressed exactly like the
//! reference implementation (`p` shared-prefix length + `k` suffix),
//! shrinking full CARs and structural deltas alike. On the storage side,
//! the study producer runs a weekly compaction pass
//! (`bsky_atproto::repo::Repository::compact_before`): commits that aged
//! out of the delta-serving window are dropped with their unreachable
//! record versions, and superseded MST nodes are reclaimed. A delta
//! requested since a compacted revision fails with
//! `AtError::RevisionCompacted`, and both the relay and the incremental
//! mirror fall back to a full fetch *visibly* — the fallback count is
//! surfaced in `bsky_study::StreamSummary`, never swallowed.
//!
//! ## The wire-level traffic observatory
//!
//! A passive adversary watching the encrypted links sees only frame sizes
//! and inter-arrival gaps — and, per the FOCI'20 encrypted-DNS
//! fingerprinting literature, that is often enough. The observatory models
//! this end to end:
//!
//! * **Capture** — `bsky_simnet::observer::WireObserver` is a bounded
//!   per-connection tap (overflow counted, never silent); the relay feeds
//!   it every firehose frame from `Event::wire_size` and the simulated
//!   clock, and the collector's identity snapshots route handle resolution
//!   through the simulated DNS (`bsky_simnet::dns`), producing a
//!   resolver-side lookup trace.
//! * **Mitigation** — `bsky_atproto::framing::FramingPolicy` shapes the
//!   wire: `PaddingPolicy` pads frames to 128-byte buckets or a constant
//!   size, and a batching window coalesces a connection's events into one
//!   frame per window. Framing derives purely from (event bytes, event
//!   time), so the sharded engine splits and merges it exactly (repro
//!   `--padding none|buckets|constant --batch-window SECS`).
//! * **Study** — `bsky_study::ObservatoryAnalyzer` folds the traces into
//!   the §10 report section: a closed-world 1-NN classifier over
//!   per-(DID, week) (size, gap) features, trained on even weeks and
//!   tested on odd weeks with class-balanced sampling, against ground
//!   truth from the `bsky_workload::PopulationPlan` activity weights. The
//!   whole mitigation sweep is evaluated *counterfactually* from the raw
//!   captured traces, so every cell — accuracy × bandwidth overhead for
//!   none / bucketed / batched / constant-size framing — appears in one
//!   report, and the report stays byte-identical whatever policy is
//!   active on the wire (the golden tests pin this, serial and sharded,
//!   mem and paged stores).
//!
//! The active policy's real cost *is* visible where it belongs:
//! `bsky_study::StreamSummary` counts wire frames, padding overhead
//! bytes, identity lookups, and observer drops.
//!
//! ## Hierarchical relay federation
//!
//! One relay crawling every PDS is the million-DID bottleneck: its
//! firehose retention, known-DID index and crawl cursors all grow with
//! the fleet. `bsky_relay::RelayFederation` (repro `--relays N`,
//! `RunSpec::relays`) splits the crawl hierarchically:
//!
//! ```text
//!   PDS fleet (hostname-sorted)          regional relays      super-relay
//!   [pds00 pds01 | pds02 pds03]  --->  relay00  relay01  --->    hub
//!        region 0      region 1         (crawl)  (crawl)      (collector)
//! ```
//!
//! Each regional relay owns a *contiguous slice* of the hostname-sorted
//! fleet and crawls only that slice; the super-relay never talks to a PDS
//! for its firehose — regions forward their streams through
//! cursor-resumable subscriptions (`Relay::subscribe` from the last
//! forwarded seq, so a region outage resumes without loss) into the hub,
//! which re-sequences them densely. A cross-relay dedup index drops
//! commits by `(did, rev)` — the rev is a monotonic per-repo TID, so the
//! pair names one commit globally — and revision-less frames (identity,
//! handle change, tombstone) by their crawl provenance `(host,
//! outbox_seq)`; a commit reaching the hub via two regions is emitted
//! exactly once, and the index ages out with the firehose retention
//! window. Because region 0..N−1 forward in the same order a single
//! relay's sorted crawl would visit, the hub's stream is **byte-identical**
//! to the classic single-relay firehose — seqs, wire sizes, stats, known
//! DIDs — pinned by `tests/federation_golden.rs` across engines, stores
//! and seeds against the pre-federation goldens. A relay joining late
//! backfills through the same `getRepo(since)` delta path the study
//! mirror uses (`RelayFederation::backfill_region`). Forwarding volume,
//! dedup admissions and duplicate drops are `RelayStats` /
//! `bsky_study::StreamSummary` counters, and inter-relay links run
//! through the same bounded `WireObserver` tap as every other wire. The
//! scale-out story is measured, not asserted: the streaming bench exports
//! `bytes_per_did` / `ns_per_day_per_did` at two population scales and
//! bench-compare enforces the larger population staying strictly cheaper
//! per DID.
//!
//! ## Deterministic fault injection & scenarios
//!
//! `bsky_simnet::faults` extends determinism-by-derivation to failure:
//! a `FaultPlan` derives every injected fault — PDS host outages with
//! mass account re-homing, flaky or timed-out `getRepo`/`getRepoSince`
//! calls, DNS lookup failures, firehose cursor gaps and rewinds, spam
//! waves, label storms, tombstone storms — as a pure function of
//! `(seed, key, day)` from dedicated RNG forks, so an injected outage
//! hits the same DIDs on the same day in every shard layout and store
//! backend. The collector recovers through
//! `bsky_simnet::faults::RetryPolicy` (bounded retries, deterministic
//! exponential backoff, per-class timeouts), and the established
//! never-silent rule applies to recovery too: every retry, backoff,
//! give-up, host-change backfill, dropped event, and replayed event is
//! a named `bsky_study::StreamSummary` counter, rolled up into a
//! `Scenario impact` report section (`bsky_study::FaultImpact`).
//! Scenarios are selected with repro `--scenario NAME` (pds-migration,
//! flaky-fetch, dns-flap, cursor-gap, spam-wave, label-storm,
//! tombstone-storm) or composed ad hoc with `--faults SPEC`; the
//! golden tests in `tests/fault_scenarios.rs` pin every scenario
//! byte-identical serial vs. sharded and mem vs. paged, and the quiet
//! plan byte-inert against the plain streaming path.

pub use bsky_appview;
pub use bsky_atproto;
pub use bsky_feedgen;
pub use bsky_identity;
pub use bsky_labeler;
pub use bsky_pds;
pub use bsky_relay;
pub use bsky_simnet;
pub use bsky_study;
pub use bsky_workload;
