//! # bluesky-repro
//!
//! Umbrella crate for the reproduction of *Looking AT the Blue Skies of
//! Bluesky* (IMC 2024). It re-exports the workspace crates so the examples
//! and integration tests have a single import surface:
//!
//! * [`bsky_atproto`] — the AT Protocol data model.
//! * [`bsky_simnet`] — the deterministic simulation substrate.
//! * [`bsky_identity`], [`bsky_pds`], [`bsky_relay`], [`bsky_labeler`],
//!   [`bsky_feedgen`], [`bsky_appview`] — the network services.
//! * [`bsky_workload`] — the calibrated synthetic ecosystem.
//! * [`bsky_study`] — the measurement pipeline and analyses.

pub use bsky_appview;
pub use bsky_atproto;
pub use bsky_feedgen;
pub use bsky_identity;
pub use bsky_labeler;
pub use bsky_pds;
pub use bsky_relay;
pub use bsky_simnet;
pub use bsky_study;
pub use bsky_workload;
