//! Golden anchors for hierarchical relay federation:
//!
//! 1. **Federation is byte-inert** — the same spec with `--relays 2`
//!    (regional relays crawling contiguous fleet slices and forwarding
//!    into the super-relay) produces byte-identical reports to the classic
//!    single-relay run, serially and on the 4×4 sharded engine, over the
//!    in-memory and the paged store alike, for two seeds. The federated
//!    render is additionally pinned against the pre-federation FNV-1a
//!    goldens, so a divergence is caught even if both sides drift together.
//! 2. **The topology is real** — federated runs forward every frame
//!    through the dedup index (forwarded > 0, tracked == forwarded, zero
//!    duplicates on clean partitions), the counters merge exactly across
//!    engines and stores, paged federated cells actually spill, and
//!    non-federated runs never touch the forwarding path.

use bluesky_repro::bsky_atproto::blockstore::StoreConfig;
use bluesky_repro::bsky_atproto::did::{fnv1a_64, FNV_OFFSET};
use bluesky_repro::bsky_atproto::Datetime;
use bluesky_repro::bsky_study::{RunSpec, StudyReport};
use bluesky_repro::bsky_workload::ScenarioConfig;

fn small_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::test_scale(seed);
    config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
    config.scale = 40_000;
    config
}

fn spec(seed: u64) -> RunSpec {
    RunSpec::new(small_config(seed))
}

/// The same pre-redesign render hashes `tests/runspec_golden.rs` pins:
/// a federated run must land on these exact bytes too.
const GOLDEN_RENDER: [(u64, u64); 2] = [(31, 0xba69_c98a_fe7c_859e), (32, 0xff1a_63ca_e6bb_ac82)];

#[test]
fn federated_runs_are_byte_identical_to_single_relay() {
    let paged = StoreConfig::paged().page_size(4096).resident_pages(2);
    for (seed, render_hash) in GOLDEN_RENDER {
        let (baseline, baseline_summary) = StudyReport::run_serial(&spec(seed));
        assert_eq!(
            baseline_summary.relay_events_forwarded, 0,
            "seed {seed}: a single-relay run must never forward"
        );
        assert_eq!(baseline_summary.relay_dedup_tracked, 0);
        assert_eq!(baseline_summary.relay_duplicates_dropped, 0);
        // Every federated cell must agree on the forwarding counters: the
        // serial run and the 4×4 sharded run see the same events, so the
        // sharded engine's per-shard counters must merge to exactly the
        // serial totals, on either store.
        let mut counters: Option<(u64, u64)> = None;
        for (store, store_label) in [(StoreConfig::mem(), "mem"), (paged.clone(), "paged")] {
            for (engine_shards, engine_label) in [(1usize, "serial"), (4, "4x4 sharded")] {
                let label = format!("seed {seed}, {engine_label}, {store_label}, 2 relays");
                let (fed, fed_summary) = StudyReport::run(
                    &spec(seed)
                        .relays(2)
                        .shards(engine_shards)
                        .jobs(engine_shards)
                        .store(store.clone()),
                );
                assert_eq!(
                    fed.render(),
                    baseline.render(),
                    "{label}: federation changed the rendered report"
                );
                assert_eq!(
                    fed.to_json().to_string_pretty(),
                    baseline.to_json().to_string_pretty(),
                    "{label}: federation changed the JSON export"
                );
                assert_eq!(
                    fnv1a_64(fed.render().as_bytes(), FNV_OFFSET),
                    render_hash,
                    "{label}: federated render diverged from the pre-federation golden"
                );
                let merged = &fed_summary.merged;
                assert!(
                    merged.relay_events_forwarded > 0,
                    "{label}: regional relays forwarded nothing"
                );
                assert_eq!(
                    merged.relay_dedup_tracked, merged.relay_events_forwarded,
                    "{label}: every forwarded frame must pass through the dedup index"
                );
                assert_eq!(
                    merged.relay_duplicates_dropped, 0,
                    "{label}: clean contiguous partitions must produce zero duplicates"
                );
                match counters {
                    None => {
                        counters = Some((merged.relay_events_forwarded, merged.relay_dedup_tracked))
                    }
                    Some(expected) => assert_eq!(
                        (merged.relay_events_forwarded, merged.relay_dedup_tracked),
                        expected,
                        "{label}: counters did not merge exactly across engines/stores"
                    ),
                }
                if store_label == "paged" {
                    assert!(
                        merged.spilled_block_bytes > 0,
                        "{label}: the paged federated run must actually spill"
                    );
                }
            }
        }
    }
}
