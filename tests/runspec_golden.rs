//! Golden anchors for the `RunSpec` redesign and the hot/cold entity
//! split:
//!
//! 1. **API redesign is inert** — a default `RunSpec` run renders and
//!    serialises byte-for-byte what the pre-redesign entry points produced,
//!    pinned as FNV-1a hashes captured from the old
//!    `StudyReport::run_streaming` before the refactor, for two seeds. Any
//!    accidental behavior change smuggled in with the API work trips these
//!    constants.
//! 2. **Write-back cache is observationally transparent** — the same spec
//!    with the AppView write-back cache on vs. off produces byte-identical
//!    reports, serially and on the 4×4 sharded engine, over the in-memory
//!    and the paged store alike; only the summary's cache accounting moves
//!    (and the cached runs really flushed).

use bluesky_repro::bsky_atproto::blockstore::StoreConfig;
use bluesky_repro::bsky_atproto::did::{fnv1a_64, FNV_OFFSET};
use bluesky_repro::bsky_atproto::Datetime;
use bluesky_repro::bsky_study::{RunSpec, StudyReport};
use bluesky_repro::bsky_workload::ScenarioConfig;

fn small_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::test_scale(seed);
    config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
    config.scale = 40_000;
    config
}

fn spec(seed: u64) -> RunSpec {
    RunSpec::new(small_config(seed))
}

/// `(seed, fnv1a_64(render), fnv1a_64(to_json pretty))` captured from
/// `StudyReport::run_streaming(small_config(seed))` immediately before the
/// RunSpec redesign and the hot/cold AppView split landed.
const GOLDEN: [(u64, u64, u64); 2] = [
    (31, 0xba69_c98a_fe7c_859e, 0xe0c1_a314_661f_7867),
    (32, 0xff1a_63ca_e6bb_ac82, 0xa4de_4963_1cae_edbc),
];

#[test]
fn runspec_defaults_match_pre_redesign_goldens() {
    for (seed, render_hash, json_hash) in GOLDEN {
        let (report, _) = StudyReport::run_serial(&spec(seed));
        assert_eq!(
            fnv1a_64(report.render().as_bytes(), FNV_OFFSET),
            render_hash,
            "seed {seed}: rendered report diverged from the pre-redesign golden"
        );
        assert_eq!(
            fnv1a_64(report.to_json().to_string_pretty().as_bytes(), FNV_OFFSET),
            json_hash,
            "seed {seed}: JSON export diverged from the pre-redesign golden"
        );
    }
}

#[test]
fn write_back_cache_is_byte_inert_everywhere() {
    let paged = StoreConfig::paged().page_size(4096).resident_pages(2);
    for seed in [31u64, 32] {
        let (baseline, _) = StudyReport::run_serial(&spec(seed));
        for (store, store_label) in [(StoreConfig::mem(), "mem"), (paged.clone(), "paged")] {
            for (engine_shards, engine_label) in [(1usize, "serial"), (4, "4x4 sharded")] {
                let cell = || {
                    spec(seed)
                        .shards(engine_shards)
                        .jobs(engine_shards)
                        .store(store.clone())
                };
                let (cached, cached_summary) = StudyReport::run(&cell().write_back(true));
                let (raw, raw_summary) = StudyReport::run(&cell().write_back(false));
                let label = format!("seed {seed}, {engine_label}, {store_label}");
                assert_eq!(
                    cached.render(),
                    raw.render(),
                    "{label}: write-back cache changed the rendered report"
                );
                assert_eq!(
                    cached.to_json().to_string_pretty(),
                    raw.to_json().to_string_pretty(),
                    "{label}: write-back cache changed the JSON export"
                );
                assert_eq!(
                    cached.render(),
                    baseline.render(),
                    "{label}: cell diverged from the serial mem baseline"
                );
                // The knob is real: cached runs flush the write-back buffer
                // at day boundaries and see same-day hits, raw runs never
                // touch that machinery.
                assert!(
                    cached_summary.merged.writeback_flushes > 0,
                    "{label}: cached run never flushed"
                );
                assert!(
                    cached_summary.merged.writeback_hits > 0,
                    "{label}: cached run saw no buffer hits"
                );
                assert_eq!(
                    raw_summary.merged.writeback_flushes, 0,
                    "{label}: raw run flushed a write-back buffer"
                );
                assert_eq!(
                    raw_summary.merged.writeback_hits, 0,
                    "{label}: raw run hit a write-back buffer"
                );
                // The hot/cold counter split coalesces same-day counter
                // bumps regardless of the cache knob.
                assert!(
                    cached_summary.merged.counter_coalesced_writes > 0,
                    "{label}: no counter writes coalesced"
                );
            }
        }
    }
}
