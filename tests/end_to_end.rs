//! Cross-crate integration tests: the full pipeline from the synthetic world
//! through the collectors to the analyses, plus invariants that span crates.

use bluesky_repro::bsky_atproto::Datetime;
use bluesky_repro::bsky_study::{Collector, RunSpec, StudyReport};
use bluesky_repro::bsky_workload::{ScenarioConfig, World};

fn small_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::test_scale(seed);
    config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
    config.scale = 40_000;
    config
}

#[test]
fn full_study_reproduces_headline_shapes() {
    let (report, _) = StudyReport::run_serial(&RunSpec::new(small_config(1)));

    // Table 1: commits dominate the firehose.
    let commit_share = report
        .table1
        .rows
        .iter()
        .find(|r| r.0 == "Repo Commit")
        .map(|r| r.2)
        .unwrap_or(0.0);
    assert!(commit_share > 90.0, "commit share {commit_share}");

    // §4: likes outnumber posts, posts outnumber reposts.
    let (posts, likes, _follows, reposts, blocks) = report.activity.totals;
    assert!(likes > posts && posts > reposts && blocks < reposts);

    // §5: custodial handles dominate; DNS TXT proofs dominate.
    assert!(report.identity.bsky_social.1 > 95.0);
    assert!(report.identity.proofs.2 > 80.0);

    // §6: community labelers issue the majority of recent labels; the most
    // prolific labeler is an automated one with a sub-minute median.
    assert!(report.moderation.community_share_last_month > 50.0);
    if let Some(top) = report.moderation.table6.first() {
        if let Some(median) = top.median_reaction_secs {
            assert!(median < 60.0, "top labeler median {median}");
        }
    }

    // §7: Skyfeed hosts the largest share of feeds; some feeds never curated.
    assert_eq!(report.recommendation.platform_shares[0].0, "Skyfeed");
    assert!(report.recommendation.platform_shares[0].2 > 50.0);
    assert!(report.recommendation.never_curated.0 > 0);

    // §9: extrapolated firehose volume is positive and scales with the
    // configured factor.
    assert!(
        report.firehose_volume.extrapolated_full_network > report.firehose_volume.bytes_per_day
    );
}

#[test]
fn collector_observes_only_public_surfaces() {
    let mut world = World::new(small_config(2));
    let datasets = Collector::new().run(&mut world);
    // The datasets never contain more identities than the relay exposes.
    assert!(datasets.user_identifiers.len() <= world.relay.known_account_count() + 5);
    // Repositories decode into records; every decoded record belongs to a
    // collection with a valid NSID.
    for repo in &datasets.repositories {
        for (collection, _, _) in &repo.records {
            assert!(collection.as_str().split('.').count() >= 3);
        }
    }
    // Labeler streams include rescissions that effective-label application
    // removes.
    let any_negated = datasets
        .labelers
        .iter()
        .flat_map(|l| &l.labels)
        .any(|l| l.negated);
    if any_negated {
        for entry in &datasets.labelers {
            let effective = bluesky_repro::bsky_atproto::label::effective_labels(&entry.labels);
            let applied = entry.labels.iter().filter(|l| !l.negated).count();
            assert!(effective.len() <= applied);
        }
    }
}

#[test]
fn identical_seeds_give_identical_reports() {
    let (a, _) = StudyReport::run_serial(&RunSpec::new(small_config(3)));
    let (b, _) = StudyReport::run_serial(&RunSpec::new(small_config(3)));
    assert_eq!(a.table1.total, b.table1.total);
    assert_eq!(a.activity.totals, b.activity.totals);
    assert_eq!(a.moderation.interactions, b.moderation.interactions);
    assert_eq!(a.recommendation.total_feeds, b.recommendation.total_feeds);
    // And a different seed gives a different world.
    let (c, _) = StudyReport::run_serial(&RunSpec::new(small_config(4)));
    assert_ne!(a.activity.totals, c.activity.totals);
}
