//! Golden equivalence: the streaming engine's `StudyReport` must be
//! identical — every table and figure field — to the batch
//! `StudyReport::from_collected` computed over materialized `Datasets`, and
//! the sharded run (`--jobs 4`) must be **byte-identical** to the serial
//! run, for multiple seeds.
//!
//! Every run is described by one `RunSpec`; the knob under test is the only
//! builder call that differs between the compared specs. The rendered
//! report covers every table/figure field of every section and the JSON
//! export covers the headline numbers, so string equality over both pins
//! the full surface. A few structured fields are compared directly as well
//! so a failure points at the diverging section.

use bluesky_repro::bsky_atproto::blockstore::StoreConfig;
use bluesky_repro::bsky_atproto::Datetime;
use bluesky_repro::bsky_study::{Collector, RunSpec, SnapshotMode, StudyReport};
use bluesky_repro::bsky_workload::{ScenarioConfig, World};

fn small_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::test_scale(seed);
    config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
    config.scale = 40_000;
    config
}

fn spec(seed: u64) -> RunSpec {
    RunSpec::new(small_config(seed))
}

fn assert_reports_identical(streaming: &StudyReport, batch: &StudyReport, seed: u64) {
    // Structured spot checks first, for readable failures.
    assert_eq!(streaming.table1.total, batch.table1.total, "seed {seed}");
    assert_eq!(streaming.table1.rows, batch.table1.rows, "seed {seed}");
    assert_eq!(
        streaming.activity.totals, batch.activity.totals,
        "seed {seed}"
    );
    assert_eq!(
        streaming.activity.monthly, batch.activity.monthly,
        "seed {seed}"
    );
    assert_eq!(
        streaming.section4.most_followed, batch.section4.most_followed,
        "seed {seed}"
    );
    assert_eq!(
        streaming.identity.registrars, batch.identity.registrars,
        "seed {seed}"
    );
    assert_eq!(
        streaming.identity.handle_updates, batch.identity.handle_updates,
        "seed {seed}"
    );
    assert_eq!(
        streaming.moderation.interactions, batch.moderation.interactions,
        "seed {seed}"
    );
    assert_eq!(
        streaming.moderation.labels_by_month, batch.moderation.labels_by_month,
        "seed {seed}"
    );
    assert_eq!(
        streaming.moderation.table3, batch.moderation.table3,
        "seed {seed}"
    );
    assert_eq!(
        streaming.recommendation.platform_shares, batch.recommendation.platform_shares,
        "seed {seed}"
    );
    assert_eq!(
        streaming.recommendation.cumulative_growth, batch.recommendation.cumulative_growth,
        "seed {seed}"
    );
    // Full surface: the rendered report contains every table and figure
    // field; the JSON export contains every headline number.
    assert_eq!(streaming.render(), batch.render(), "seed {seed}");
    assert_eq!(
        streaming.to_json().to_string_pretty(),
        batch.to_json().to_string_pretty(),
        "seed {seed}"
    );
}

#[test]
fn streaming_equals_batch_for_two_seeds() {
    for seed in [31u64, 32] {
        let config = small_config(seed);
        // Streaming: one pass, no retained firehose.
        let (streaming, summary) = StudyReport::run_serial(&spec(seed));
        // Batch: materialize the datasets, then compute from the vectors.
        let mut world = World::new(config);
        let datasets = Collector::new().run(&mut world);
        let batch = StudyReport::from_collected(config, &world, &datasets);

        assert_reports_identical(&streaming, &batch, seed);

        // And the streaming path really was bounded: its peak in-flight
        // event count is strictly below what the batch path retained.
        assert!(summary.firehose_events > 0, "seed {seed}");
        assert_eq!(
            summary.firehose_events as usize,
            datasets.firehose_events.len(),
            "seed {seed}"
        );
        assert!(
            summary.peak_in_flight_events < datasets.firehose_events.len(),
            "seed {seed}: peak {} vs retained {}",
            summary.peak_in_flight_events,
            datasets.firehose_events.len()
        );
    }
}

#[test]
fn run_and_run_serial_agree() {
    let spec = spec(33);
    let (via_run, _) = StudyReport::run(&spec);
    let (via_serial, _) = StudyReport::run_serial(&spec);
    assert_eq!(via_run.render(), via_serial.render());
}

#[test]
fn sharded_run_is_byte_identical_to_serial() {
    for seed in [31u64, 32] {
        let (serial, _) = StudyReport::run_serial(&spec(seed));
        // 4 shards on 4 worker threads: every stochastic decision derives
        // from (seed, DID, day), so partitioning the population must not
        // change a single byte of the rendered report or the JSON export.
        let (sharded, summary) = StudyReport::run(&spec(seed).shards(4).jobs(4));
        assert_eq!(summary.shards, 4);
        assert_eq!(summary.per_shard.len(), 4);
        assert_reports_identical(&sharded, &serial, seed);
        assert_eq!(sharded.render(), serial.render(), "seed {seed}");
        assert_eq!(
            sharded.to_json().to_string_pretty(),
            serial.to_json().to_string_pretty(),
            "seed {seed}"
        );
        // The shard partition is real: more than one shard produced events.
        let active_shards = summary
            .per_shard
            .iter()
            .filter(|s| s.firehose_events > 0)
            .count();
        assert!(active_shards > 1, "seed {seed}: population not partitioned");
    }
}

#[test]
fn incremental_snapshots_equal_full_refetch_serial_and_sharded() {
    for seed in [31u64, 32] {
        // Full refetch: every repository CAR downloaded once, at the window
        // end (the §3 baseline).
        let (full, full_summary) =
            StudyReport::run(&spec(seed).snapshots(SnapshotMode::FullRefetch));
        // Incremental: rev-aware weekly syncs through the repo mirror,
        // deltas for advanced repos, full CARs only for new DIDs.
        let (incremental, inc_summary) =
            StudyReport::run(&spec(seed).snapshots(SnapshotMode::Incremental));
        assert_reports_identical(&incremental, &full, seed);

        // The incremental producer really used the delta path, and fetched
        // strictly fewer repository bytes than the full refetch.
        assert!(
            inc_summary.merged.repo_delta_fetches > 0,
            "seed {seed}: no deltas used"
        );
        assert_eq!(full_summary.merged.repo_delta_fetches, 0, "seed {seed}");
        assert!(
            inc_summary.merged.snapshot_bytes_fetched < full_summary.merged.snapshot_bytes_fetched,
            "seed {seed}: incremental fetched {} bytes vs {} full",
            inc_summary.merged.snapshot_bytes_fetched,
            full_summary.merged.snapshot_bytes_fetched,
        );

        // And the incremental mode composes with the sharded engine: a
        // 4-shard incremental run renders byte-identically too.
        let (sharded, sharded_summary) = StudyReport::run(
            &spec(seed)
                .snapshots(SnapshotMode::Incremental)
                .shards(4)
                .jobs(4),
        );
        assert_reports_identical(&sharded, &full, seed);
        assert!(
            sharded_summary.merged.repo_delta_fetches > 0,
            "seed {seed}: sharded run used no deltas"
        );
    }
}

#[test]
fn paged_store_is_byte_identical_to_mem_store_serial_and_sharded() {
    for seed in [31u64, 32] {
        // Baseline: the in-memory block store (the default everywhere).
        let (mem, mem_summary) = StudyReport::run(&spec(seed).store(StoreConfig::mem()));
        // Paged: tiny pages and a 2-page LRU so repositories, the relay
        // mirror and the producer mirror all actually spill to disk.
        let paged_config = StoreConfig::paged().page_size(4096).resident_pages(2);
        let (paged, paged_summary) = StudyReport::run(&spec(seed).store(paged_config.clone()));
        assert_reports_identical(&paged, &mem, seed);
        // The paged run really went through the spill path, and ended the
        // window with strictly fewer resident block bytes.
        assert!(
            paged_summary.merged.spilled_block_bytes > 0,
            "seed {seed}: paged store never spilled"
        );
        assert!(
            paged_summary.merged.resident_block_bytes < mem_summary.merged.resident_block_bytes,
            "seed {seed}: paged resident {} vs mem {}",
            paged_summary.merged.resident_block_bytes,
            mem_summary.merged.resident_block_bytes,
        );
        assert_eq!(mem_summary.merged.spilled_block_bytes, 0, "seed {seed}");

        // And the paged backend composes with the sharded engine: 4 shards
        // on 4 workers, still byte-identical to the serial mem run.
        let (paged_sharded, sharded_summary) =
            StudyReport::run(&spec(seed).store(paged_config).shards(4).jobs(4));
        assert_reports_identical(&paged_sharded, &mem, seed);
        assert!(
            sharded_summary.merged.spilled_block_bytes > 0,
            "seed {seed}: sharded paged run never spilled"
        );
    }
}

#[test]
fn appview_sharding_is_byte_identical_across_backends() {
    for seed in [31u64, 32] {
        // Baseline: monolithic in-memory AppView (1 entity shard), serial.
        let (baseline, _) = StudyReport::run_serial(&spec(seed));
        let paged = StoreConfig::paged().page_size(4096).resident_pages(2);
        // The full appview-shard-count × store-backend grid, serial AND on
        // the 4-shard engine: entity sharding and spill change only where
        // AppView state resides — never a report byte.
        for (appview_shards, store, label) in [
            (4usize, StoreConfig::mem(), "4 shards, mem"),
            (1, paged.clone(), "1 shard, paged"),
            (4, paged.clone(), "4 shards, paged"),
        ] {
            let cell = |engine_shards: usize| {
                spec(seed)
                    .shards(engine_shards)
                    .jobs(engine_shards)
                    .store(store.clone())
                    .appview_shards(appview_shards)
            };
            let (serial, serial_summary) = StudyReport::run(&cell(1));
            assert_reports_identical(&serial, &baseline, seed);
            let (sharded_engine, _) = StudyReport::run(&cell(4));
            assert_reports_identical(&sharded_engine, &baseline, seed);
            // Paged layouts really exercised the spill path (repo, relay
            // and appview stores all ride the same backend).
            if store.kind == bluesky_repro::bsky_atproto::StoreKind::Paged {
                assert!(
                    serial_summary.merged.spilled_block_bytes > 0,
                    "seed {seed} ({label}): paged run never spilled"
                );
            }
        }
    }
}

#[test]
fn observatory_mitigations_never_change_the_report() {
    use bluesky_repro::bsky_atproto::framing::{FramingPolicy, PaddingPolicy};
    for seed in [31u64, 32] {
        // Baseline: the plain streaming run (implicitly FramingPolicy::none()).
        let (baseline, _) = StudyReport::run_serial(&spec(seed));
        // Explicit no-op framing: the observatory tap is always on, but with
        // no padding and no batching it must not change a single report byte
        // — §4–§9 and the §10 mitigation sweep alike.
        let (unpadded, unpadded_summary) =
            StudyReport::run(&spec(seed).framing(FramingPolicy::none()));
        assert_reports_identical(&unpadded, &baseline, seed);
        // Mitigations on the wire: 128-byte padding buckets plus a 2-second
        // batching window. The §10 sweep is counterfactual (every cell is
        // evaluated from the captured raw traces), so the active policy may
        // only move StreamSummary counters — never a report byte.
        let mitigated = FramingPolicy::new(PaddingPolicy::Buckets, 2);
        let (padded, padded_summary) = StudyReport::run(&spec(seed).framing(mitigated));
        assert_reports_identical(&padded, &baseline, seed);
        // The capture layer really ran and the mitigation layer really cost
        // bytes: bucketed frames carry strictly more overhead than bare ones,
        // and the identity snapshots performed real DNS-backed lookups.
        assert!(
            padded_summary.merged.wire_frames > 0,
            "seed {seed}: no wire frames captured"
        );
        assert!(
            padded_summary.merged.padding_overhead_bytes
                > unpadded_summary.merged.padding_overhead_bytes,
            "seed {seed}: buckets overhead {} not above bare {}",
            padded_summary.merged.padding_overhead_bytes,
            unpadded_summary.merged.padding_overhead_bytes,
        );
        assert!(
            padded_summary.merged.identity_lookups > 0,
            "seed {seed}: no identity lookups recorded"
        );
        assert_eq!(
            padded_summary.merged.observer_trace_drops, 0,
            "seed {seed}: observer dropped frames at test scale"
        );
        // And the mitigated wire composes with the 4×4 sharded engine: the
        // report stays byte-identical and the wire accounting merges to the
        // exact serial totals (frame boundaries derive from (DID, time), so
        // partitioning the population cannot move them).
        let (sharded, sharded_summary) = StudyReport::run(
            &spec(seed)
                .framing(mitigated)
                .shards(4)
                .jobs(4)
                .appview_shards(4),
        );
        assert_reports_identical(&sharded, &baseline, seed);
        assert_eq!(
            sharded_summary.merged.wire_frames, padded_summary.merged.wire_frames,
            "seed {seed}"
        );
        assert_eq!(
            sharded_summary.merged.padding_overhead_bytes,
            padded_summary.merged.padding_overhead_bytes,
            "seed {seed}"
        );
        assert_eq!(
            sharded_summary.merged.identity_lookups, padded_summary.merged.identity_lookups,
            "seed {seed}"
        );
    }
}

#[test]
fn observatory_is_byte_identical_across_store_backends() {
    use bluesky_repro::bsky_atproto::framing::{FramingPolicy, PaddingPolicy};
    let seed = 31u64;
    let mitigated = FramingPolicy::new(PaddingPolicy::Buckets, 2);
    // Mitigated wire over the in-memory store...
    let (mem, mem_summary) = StudyReport::run(&spec(seed).framing(mitigated));
    // ...and over the paged disk-spill store: where blocks live is invisible
    // to the wire, so the report and the wire accounting are identical.
    let paged_config = StoreConfig::paged().page_size(4096).resident_pages(2);
    let (paged, paged_summary) =
        StudyReport::run(&spec(seed).framing(mitigated).store(paged_config));
    assert_reports_identical(&paged, &mem, seed);
    assert_eq!(
        paged_summary.merged.wire_frames,
        mem_summary.merged.wire_frames
    );
    assert_eq!(
        paged_summary.merged.padding_overhead_bytes,
        mem_summary.merged.padding_overhead_bytes
    );
    assert!(
        paged_summary.merged.spilled_block_bytes > 0,
        "paged store never spilled"
    );
}

#[test]
fn pipelined_run_is_byte_identical_for_every_cell() {
    for seed in [31u64, 32] {
        let (baseline, _) = StudyReport::run_serial(&spec(seed));
        // Serial engine (1 shard) with the intra-shard pipeline on: a lone
        // worker folding all eight analyzer parts and a 3-way fan-out must
        // both reassemble the serial bytes exactly.
        for threads in [1usize, 3] {
            let (piped, summary) =
                StudyReport::run(&spec(seed).pipeline(true).analyzer_threads(threads));
            assert_reports_identical(&piped, &baseline, seed);
            assert!(
                summary.merged.pipeline_batches > 0,
                "seed {seed}: pipeline ({threads} threads) shipped no batches"
            );
        }
        // The pipeline composes with the 4×4 sharded engine (mem store):
        // (shards, jobs, analyzer_threads) = (4, 4, 2).
        let (sharded, sharded_summary) = StudyReport::run(
            &spec(seed)
                .shards(4)
                .jobs(4)
                .pipeline(true)
                .analyzer_threads(2),
        );
        assert_reports_identical(&sharded, &baseline, seed);
        assert!(
            sharded_summary.merged.pipeline_batches > 0,
            "seed {seed}: sharded pipeline shipped no batches"
        );
        // And with the paged disk-spill store, which really spilled — the
        // producer's store I/O is exactly what the pipeline overlaps with
        // analyzer CPU.
        let paged_config = StoreConfig::paged().page_size(4096).resident_pages(2);
        let (paged, paged_summary) = StudyReport::run(
            &spec(seed)
                .store(paged_config)
                .shards(4)
                .jobs(4)
                .pipeline(true)
                .analyzer_threads(2),
        );
        assert_reports_identical(&paged, &baseline, seed);
        assert!(
            paged_summary.merged.spilled_block_bytes > 0,
            "seed {seed}: pipelined paged run never spilled"
        );
        assert!(paged_summary.merged.pipeline_batches > 0, "seed {seed}");
    }
}

#[test]
fn pipelined_fault_scenario_is_byte_identical() {
    use bluesky_repro::bsky_study::faults::FaultSpec;
    // One fault scenario through the pipeline: injected faults derive from
    // (seed, key, day) on the producer side, so decoupling the analyzers
    // cannot move a byte of the report — impact section included.
    let seed = 31u64;
    let scenario = || {
        spec(seed)
            .faults(FaultSpec::scenario("label-storm").unwrap())
            .scenario("label-storm")
    };
    let (plain, plain_summary) = StudyReport::run(&scenario());
    let (piped, piped_summary) = StudyReport::run(
        &scenario()
            .shards(4)
            .jobs(4)
            .pipeline(true)
            .analyzer_threads(2),
    );
    assert_reports_identical(&piped, &plain, seed);
    assert!(
        piped.faults.is_some(),
        "scenario run lost its impact section"
    );
    assert!(
        plain_summary.merged.storm_labels_applied > 0,
        "label storm injected nothing"
    );
    assert_eq!(
        piped_summary.merged.storm_labels_applied, plain_summary.merged.storm_labels_applied,
        "fault accounting diverged under the pipeline"
    );
    assert!(piped_summary.merged.pipeline_batches > 0);
}

#[test]
fn owned_observation_round_trip_folds_identically() {
    use bluesky_repro::bsky_study::{
        Observation, ObservationBatch, ObservationSink, StudyAnalyzers, StudyCtx,
    };
    use std::collections::BTreeSet;

    fn kind(obs: &Observation<'_>) -> &'static str {
        match obs {
            Observation::WindowStart { .. } => "window-start",
            Observation::DayBoundary { .. } => "day-boundary",
            Observation::Firehose(_) => "firehose",
            Observation::UserIdentifier { .. } => "user-identifier",
            Observation::DidDocument { .. } => "did-document",
            Observation::Labeler(_) => "labeler",
            Observation::Labels { .. } => "labels",
            Observation::FeedGenerator(_) => "feed-generator",
            Observation::Repo(_) => "repo",
            Observation::WireTrace(_) => "wire-trace",
            Observation::WindowEnd { .. } => "window-end",
        }
    }

    /// Tees every producer observation into two analyzer sets: one folds
    /// the borrowed bus item directly, the other folds it after a round
    /// trip through its owned, sequence-numbered [`ObservationBatch`] form
    /// — the exact materialization the intra-shard pipeline ships across
    /// threads.
    #[derive(Default)]
    struct RoundTripTee {
        direct: StudyAnalyzers,
        rebuilt: StudyAnalyzers,
        kinds: BTreeSet<&'static str>,
        seq: u64,
    }

    impl ObservationSink for RoundTripTee {
        fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
            self.kinds.insert(kind(obs));
            self.direct.observe(obs, ctx);
            let batch = ObservationBatch {
                seq: self.seq,
                items: vec![obs.to_owned_observation()],
            };
            self.seq += 1;
            self.rebuilt.observe(&batch.items[0].as_observation(), ctx);
        }
    }

    for seed in [31u64, 32] {
        let config = small_config(seed);
        let mut world = World::new(config);
        let mut tee = RoundTripTee::default();
        let summary = Collector::new().stream(&mut world, &mut tee);
        assert!(summary.observations > 0, "seed {seed}");
        // The live stream exercised every bus variant, WireTrace included.
        let expected: BTreeSet<&'static str> = [
            "window-start",
            "day-boundary",
            "firehose",
            "user-identifier",
            "did-document",
            "labeler",
            "labels",
            "feed-generator",
            "repo",
            "wire-trace",
            "window-end",
        ]
        .into_iter()
        .collect();
        assert_eq!(tee.kinds, expected, "seed {seed}: variants not all seen");
        // Both folds finish to byte-identical reports.
        let direct = StudyReport::from_analyzers(config, tee.direct, &world);
        let rebuilt = StudyReport::from_analyzers(config, tee.rebuilt, &world);
        assert_reports_identical(&rebuilt, &direct, seed);
    }
}

#[test]
fn sharded_run_is_independent_of_worker_count() {
    let (jobs1, _) = StudyReport::run(&spec(34).shards(3).jobs(1));
    let (jobs3, _) = StudyReport::run(&spec(34).shards(3).jobs(3));
    assert_eq!(jobs1.render(), jobs3.render());
    assert_eq!(
        jobs1.to_json().to_string_pretty(),
        jobs3.to_json().to_string_pretty()
    );
}
