//! Golden obligations of the deterministic fault-injection layer:
//!
//! 1. **Quiet plan is byte-inert** — running through the faulted terminal
//!    with the default (all-quiet) `FaultSpec` produces a report
//!    byte-identical to the plain streaming path, serial and 4×4 sharded,
//!    for multiple seeds. The fault machinery must never consume workload
//!    randomness or perturb output when nothing is injected.
//! 2. **Scenarios shard and spill exactly** — for each pinned scenario
//!    (pds-migration, label-storm, cursor-gap) the serial in-memory run,
//!    the 4×4 sharded run, and the paged-store run all render
//!    byte-identical reports, because every injected decision is a pure
//!    function of `(seed, key, day)`.
//! 3. **Never silent** — every scenario run surfaces its injected faults
//!    through nonzero named counters; no scenario completes with zero
//!    recovery-path counters.
//! 4. **Retries never double-count** — a flaky run whose retry budget
//!    always outlasts the injected failure cap fetches exactly the bytes
//!    the clean run fetches, while still recording its retries.

use bluesky_repro::bsky_atproto::blockstore::StoreConfig;
use bluesky_repro::bsky_atproto::Datetime;
use bluesky_repro::bsky_simnet::faults::{FaultPlan, FaultSpec, RetryPolicy, TimeoutClass};
use bluesky_repro::bsky_study::{Collector, RunSpec, StudyAnalyzers, StudyReport};
use bluesky_repro::bsky_workload::{ScenarioConfig, World};
use std::sync::Arc;

fn small_config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::test_scale(seed);
    config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
    config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
    config.scale = 40_000;
    config
}

fn run_faulted(
    config: ScenarioConfig,
    shards: usize,
    jobs: usize,
    store: &StoreConfig,
    spec: &FaultSpec,
    scenario: Option<&str>,
) -> (StudyReport, bluesky_repro::bsky_study::ShardedSummary) {
    let mut run = RunSpec::new(config)
        .shards(shards)
        .jobs(jobs)
        .store(store.clone())
        .faults(spec.clone());
    if let Some(name) = scenario {
        run = run.scenario(name);
    }
    StudyReport::run(&run)
}

#[test]
fn quiet_fault_plan_is_byte_inert() {
    for seed in [31u64, 32] {
        let config = small_config(seed);
        let (baseline, _) = StudyReport::run_serial(&RunSpec::new(config));
        // Serial through the faulted terminal with the quiet spec.
        let (quiet, summary) = run_faulted(
            config,
            1,
            1,
            &StoreConfig::mem(),
            &FaultSpec::default(),
            None,
        );
        assert!(
            quiet.faults.is_none(),
            "seed {seed}: quiet run grew a fault section"
        );
        assert_eq!(quiet.render(), baseline.render(), "seed {seed}");
        assert_eq!(
            quiet.to_json().to_string_pretty(),
            baseline.to_json().to_string_pretty(),
            "seed {seed}"
        );
        // Quiet means quiet: no injected-fault counter moves.
        let merged = &summary.merged;
        assert_eq!(merged.retry_attempts, 0, "seed {seed}");
        assert_eq!(merged.fetch_retry_giveups, 0, "seed {seed}");
        assert_eq!(merged.dns_retry_giveups, 0, "seed {seed}");
        assert_eq!(merged.dns_servfails, 0, "seed {seed}");
        assert_eq!(merged.cursor_gap_drops, 0, "seed {seed}");
        assert_eq!(merged.cursor_rewind_replays, 0, "seed {seed}");
        assert_eq!(merged.outage_migrations, 0, "seed {seed}");
        assert_eq!(merged.spam_posts_injected, 0, "seed {seed}");
        assert_eq!(merged.storm_labels_applied, 0, "seed {seed}");
        assert_eq!(merged.storm_tombstones, 0, "seed {seed}");
        // And sharded: 4 shards on 4 workers through the faulted terminal.
        let (quiet_sharded, _) = run_faulted(
            config,
            4,
            4,
            &StoreConfig::mem(),
            &FaultSpec::default(),
            None,
        );
        assert_eq!(quiet_sharded.render(), baseline.render(), "seed {seed}");
        assert_eq!(
            quiet_sharded.to_json().to_string_pretty(),
            baseline.to_json().to_string_pretty(),
            "seed {seed}"
        );
    }
}

/// Every pinned scenario must (a) render byte-identically serial vs. 4×4
/// sharded and mem vs. paged, and (b) account for its injected faults with
/// the scenario's own nonzero counters.
#[test]
fn scenarios_are_shard_and_store_exact_and_never_silent() {
    let seed = 31u64;
    let config = small_config(seed);
    let paged = StoreConfig::paged().page_size(4096).resident_pages(2);
    for name in ["pds-migration", "label-storm", "cursor-gap"] {
        let spec = FaultSpec::scenario(name).expect("pinned scenario exists");
        let (serial, serial_summary) =
            run_faulted(config, 1, 1, &StoreConfig::mem(), &spec, Some(name));
        let (sharded, sharded_summary) =
            run_faulted(config, 4, 4, &StoreConfig::mem(), &spec, Some(name));
        let (paged_run, paged_summary) = run_faulted(config, 1, 1, &paged, &spec, Some(name));
        assert_eq!(
            serial.render(),
            sharded.render(),
            "{name}: sharded diverged"
        );
        assert_eq!(
            serial.to_json().to_string_pretty(),
            sharded.to_json().to_string_pretty(),
            "{name}: sharded JSON diverged"
        );
        assert_eq!(
            serial.render(),
            paged_run.render(),
            "{name}: paged diverged"
        );
        assert_eq!(
            serial.to_json().to_string_pretty(),
            paged_run.to_json().to_string_pretty(),
            "{name}: paged JSON diverged"
        );
        assert!(
            paged_summary.merged.spilled_block_bytes > 0,
            "{name}: paged run never spilled"
        );
        // The report carries the scenario-impact section.
        let impact = serial
            .faults
            .as_ref()
            .expect("scenario run has a fault section");
        assert_eq!(impact.scenario, name);
        assert!(serial.render().contains("Scenario impact"), "{name}");
        assert!(
            serial.to_json()["faults"]["scenario"].as_str().is_some(),
            "{name}: faults missing from JSON"
        );
        // Never silent: the scenario's injected faults land in its named
        // counters, and they merge exactly across shards and stores.
        let merged = &serial_summary.merged;
        match name {
            "pds-migration" => {
                assert!(merged.outage_migrations > 0, "{name}: no migrations");
                assert!(
                    merged.backfill_full_fetches > 0,
                    "{name}: no host-change backfills"
                );
            }
            "label-storm" => {
                assert!(merged.storm_labels_applied > 0, "{name}: no storm labels");
            }
            "cursor-gap" => {
                assert!(merged.cursor_gap_drops > 0, "{name}: no gap drops");
                assert!(
                    merged.cursor_rewind_replays > 0,
                    "{name}: no rewind replays"
                );
            }
            _ => unreachable!(),
        }
        for (label, other) in [
            ("sharded", &sharded_summary.merged),
            ("paged", &paged_summary.merged),
        ] {
            assert_eq!(
                merged.outage_migrations, other.outage_migrations,
                "{name}: {label} migrations diverged"
            );
            assert_eq!(
                merged.cursor_gap_drops, other.cursor_gap_drops,
                "{name}: {label} gap drops diverged"
            );
            assert_eq!(
                merged.storm_labels_applied, other.storm_labels_applied,
                "{name}: {label} storm labels diverged"
            );
            assert_eq!(
                merged.backfill_full_fetches, other.backfill_full_fetches,
                "{name}: {label} backfills diverged"
            );
        }
    }
}

/// A flaky-fetch run whose retry budget always outlasts the injected
/// failure cap must fetch exactly the bytes the clean run fetches — a
/// retried request is the *same* request, re-issued after simulated
/// backoff, never an extra accounted download.
#[test]
fn retries_never_double_count_fetched_bytes() {
    let config = small_config(31);
    let total_days = config.end.days_since(config.start).max(0) as usize;

    let clean = {
        let mut world = World::new(config);
        let mut analyzers = StudyAnalyzers::new();
        Collector::new().stream(&mut world, &mut analyzers)
    };

    // Injected failure runs are capped below 6 failures; 8 attempts can
    // always outlast them, so nothing ever gives up and every fetch
    // eventually happens exactly once.
    let patient = RetryPolicy {
        max_attempts: 8,
        base_delay_ms: 100,
        max_delay_ms: 1_000,
        timeout_ms: 5_000,
    };
    let spec = FaultSpec {
        flaky_fetch: 0.3,
        ..FaultSpec::default()
    };
    let plan = Arc::new(FaultPlan::build(config.seed, total_days, spec));
    let flaky = {
        let mut world = World::new(config);
        let mut analyzers = StudyAnalyzers::new();
        Collector::new()
            .faults(plan)
            .retry(TimeoutClass::RepoFetch, patient)
            .retry(TimeoutClass::DeltaFetch, patient)
            .stream(&mut world, &mut analyzers)
    };

    assert!(flaky.retry_attempts > 0, "flakiness never triggered");
    assert!(flaky.retry_backoff_ms > 0, "retries cost no simulated time");
    assert_eq!(flaky.fetch_retry_giveups, 0, "patient policy gave up");
    assert_eq!(
        flaky.snapshot_bytes_fetched, clean.snapshot_bytes_fetched,
        "retries double-counted fetched bytes"
    );
    assert_eq!(flaky.repo_full_fetches, clean.repo_full_fetches);
    assert_eq!(flaky.repo_delta_fetches, clean.repo_delta_fetches);
    assert_eq!(flaky.firehose_events, clean.firehose_events);
}
