//! Passive wire-level traffic observation.
//!
//! The §10 traffic observatory models an on-path adversary: someone who sees
//! *when* frames cross a connection and *how large* they are, but nothing of
//! their content. [`WireObserver`] is that tap — services that own a wire
//! (the relay's firehose, the identity-resolution client) record each
//! outbound frame's `(time, size)` pair into a per-connection trace, and the
//! study producer drains the tap at day boundaries.
//!
//! Traces are bounded: a connection records at most [`TRACE_CAPACITY`]
//! frames between drains; anything beyond is **counted** in
//! [`ConnTrace::dropped`], never silently discarded, so downstream analyzers
//! can surface the loss instead of mistaking a truncated trace for a quiet
//! connection.

use std::collections::BTreeMap;

/// Maximum `(time, size)` pairs retained per connection between drains.
/// Overflow is counted in [`ConnTrace::dropped`].
pub const TRACE_CAPACITY: usize = 4096;

/// The `(time, size)` sequence one connection produced since the last drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnTrace {
    /// Observed frames as `(unix seconds, wire bytes)`, in record order.
    pub frames: Vec<(i64, u64)>,
    /// Frames that arrived after the trace filled; counted, not kept.
    pub dropped: u64,
}

impl ConnTrace {
    /// Record one frame, counting instead of storing once full.
    pub fn record(&mut self, time: i64, bytes: u64) {
        if self.frames.len() < TRACE_CAPACITY {
            self.frames.push((time, bytes));
        } else {
            self.dropped += 1;
        }
    }

    /// Total wire bytes of the retained frames. Inter-relay link accounting
    /// sums this per `region->hub` connection; dropped frames are *not*
    /// included (their sizes were never stored), so pair it with
    /// [`ConnTrace::dropped`] when judging completeness.
    pub fn total_bytes(&self) -> u64 {
        self.frames.iter().map(|(_, bytes)| bytes).sum()
    }

    /// Number of retained frames (excludes counted-but-dropped overflow).
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }
}

/// A passive per-connection `(size, gap)` tap.
///
/// Connections are keyed by an opaque string chosen by the owning service
/// (the relay keys firehose traffic by the subject DID). Keys iterate in
/// `BTreeMap` order so draining is deterministic.
#[derive(Debug, Clone, Default)]
pub struct WireObserver {
    traces: BTreeMap<String, ConnTrace>,
}

impl WireObserver {
    /// An empty observer.
    pub fn new() -> WireObserver {
        WireObserver::default()
    }

    /// Record one frame on connection `conn`.
    pub fn record(&mut self, conn: &str, time: i64, bytes: u64) {
        if let Some(trace) = self.traces.get_mut(conn) {
            trace.record(time, bytes);
        } else {
            let mut trace = ConnTrace::default();
            trace.record(time, bytes);
            self.traces.insert(conn.to_string(), trace);
        }
    }

    /// Number of connections with a live trace.
    pub fn connections(&self) -> usize {
        self.traces.len()
    }

    /// Take every trace accumulated since the last drain, leaving the
    /// observer empty. Returned in deterministic (key-sorted) order.
    pub fn drain(&mut self) -> BTreeMap<String, ConnTrace> {
        std::mem::take(&mut self.traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_connection_in_order() {
        let mut tap = WireObserver::new();
        tap.record("did:plc:a", 10, 100);
        tap.record("did:plc:b", 11, 50);
        tap.record("did:plc:a", 12, 200);
        assert_eq!(tap.connections(), 2);
        let traces = tap.drain();
        assert_eq!(traces["did:plc:a"].frames, vec![(10, 100), (12, 200)]);
        assert_eq!(traces["did:plc:b"].frames, vec![(11, 50)]);
        assert_eq!(traces["did:plc:a"].dropped, 0);
    }

    #[test]
    fn drain_resets_the_tap() {
        let mut tap = WireObserver::new();
        tap.record("c", 1, 1);
        assert_eq!(tap.drain().len(), 1);
        assert_eq!(tap.connections(), 0);
        assert!(tap.drain().is_empty());
    }

    #[test]
    fn overflow_is_counted_never_silent() {
        let mut trace = ConnTrace::default();
        for i in 0..(TRACE_CAPACITY + 5) {
            trace.record(i as i64, 1);
        }
        assert_eq!(trace.frames.len(), TRACE_CAPACITY);
        assert_eq!(trace.dropped, 5);
        // Draining starts a fresh bounded window.
        let mut tap = WireObserver::new();
        for i in 0..(TRACE_CAPACITY + 1) {
            tap.record("c", i as i64, 1);
        }
        assert_eq!(tap.drain()["c"].dropped, 1);
        tap.record("c", 0, 1);
        assert_eq!(tap.drain()["c"].dropped, 0);
    }
}
