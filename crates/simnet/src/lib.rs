//! # bsky-simnet
//!
//! Deterministic simulation substrate for the Bluesky ecosystem reproduction.
//!
//! The measurement study ran against the live network; this crate provides
//! the pieces of "the Internet" the study interacted with, in a form that is
//! deterministic (seeded), fast, and inspectable:
//!
//! * [`clock::SimClock`] — simulated wall-clock time shared by every service.
//! * [`rng::SimRng`] — seeded, forkable random number generation so that a
//!   `(seed, scale)` pair fully determines a run.
//! * [`dns`] — an authoritative DNS zone store used for `_atproto.` TXT
//!   handle-ownership proofs.
//! * [`http`] — a miniature HTTPS document space used for
//!   `/.well-known/atproto-did` and `/.well-known/did.json` documents.
//! * [`net`] — endpoint address plan, hosting classification (cloud,
//!   residential, dead) and availability/fault modelling.
//! * [`event`] — a discrete-event scheduler for time-ordered simulation.
//! * [`faults`] — the deterministic fault-injection plan and the bounded
//!   [`faults::RetryPolicy`] used by study clients to recover from it.
//! * [`metrics`] — counters and streaming histograms used by services and by
//!   the measurement pipeline.
//! * [`observer`] — a passive per-connection `(size, gap)` wire tap for the
//!   §10 traffic observatory.
//!
//! Everything is synchronous and poll-driven (the smoltcp idiom): the
//! workload driver advances [`clock::SimClock`] and services react.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod dns;
pub mod event;
pub mod faults;
pub mod http;
pub mod metrics;
pub mod net;
pub mod observer;
pub mod rng;

pub use clock::SimClock;
pub use rng::SimRng;
