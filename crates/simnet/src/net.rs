//! Endpoint address plan and hosting classification.
//!
//! §6.1 of the paper classifies Labeler endpoints by the kind of address they
//! resolve to: cloud-hosted / reverse-proxied (65 %), ISP-assigned
//! residential (10 %) and dead endpoints (26 %). This module provides the
//! synthetic address plan that the study's active measurements classify, plus
//! a simple latency model for the reaction-time analyses.

use crate::rng::SimRng;
use std::fmt;

/// Coarse hosting class of an endpoint address (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HostingClass {
    /// Cloud provider or reverse proxy (e.g. a CDN in front of the origin).
    Cloud,
    /// ISP-assigned residential address.
    Residential,
    /// No functional endpoint could be determined.
    Dead,
}

impl HostingClass {
    /// Display name used in the §6.1 summary.
    pub fn display_name(&self) -> &'static str {
        match self {
            HostingClass::Cloud => "cloud / reverse-proxied",
            HostingClass::Residential => "residential",
            HostingClass::Dead => "not functional",
        }
    }
}

/// An IPv4 address in the simulated address plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimAddr(pub [u8; 4]);

impl fmt::Display for SimAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// The address-space prefixes used by the plan. `10.0.0.0/8` stands in for
/// cloud ranges and `192.168.0.0/16` for residential ranges; the *mapping*
/// from prefix to class is what the study's classifier uses, so the concrete
/// numbers only need to be consistent.
#[derive(Debug, Clone)]
pub struct AddressPlan {
    next_cloud: u32,
    next_residential: u32,
}

impl Default for AddressPlan {
    fn default() -> Self {
        AddressPlan {
            next_cloud: 1,
            next_residential: 1,
        }
    }
}

impl AddressPlan {
    /// Create an empty plan.
    pub fn new() -> AddressPlan {
        AddressPlan::default()
    }

    /// Allocate an address of the requested class. Dead endpoints have no
    /// address, so this returns `None` for [`HostingClass::Dead`].
    pub fn allocate(&mut self, class: HostingClass) -> Option<SimAddr> {
        match class {
            HostingClass::Cloud => {
                let n = self.next_cloud;
                self.next_cloud += 1;
                Some(SimAddr([10, (n >> 16) as u8, (n >> 8) as u8, n as u8]))
            }
            HostingClass::Residential => {
                let n = self.next_residential;
                self.next_residential += 1;
                Some(SimAddr([192, 168, (n >> 8) as u8, n as u8]))
            }
            HostingClass::Dead => None,
        }
    }

    /// Classify an address back into its hosting class (what the study's
    /// "analysis of the IP addresses" does).
    pub fn classify(addr: &SimAddr) -> HostingClass {
        match addr.0[0] {
            10 => HostingClass::Cloud,
            192 if addr.0[1] == 168 => HostingClass::Residential,
            _ => HostingClass::Dead,
        }
    }
}

/// A simple latency model: a per-link base latency plus log-normal jitter.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    base_ms: f64,
    jitter_sigma: f64,
}

impl LatencyModel {
    /// Create a model with a base latency (milliseconds) and jitter sigma.
    pub fn new(base_ms: f64, jitter_sigma: f64) -> LatencyModel {
        LatencyModel {
            base_ms: base_ms.max(0.1),
            jitter_sigma: jitter_sigma.max(0.0),
        }
    }

    /// Typical intra-cloud latency.
    pub fn cloud() -> LatencyModel {
        LatencyModel::new(15.0, 0.3)
    }

    /// Typical residential last-mile latency.
    pub fn residential() -> LatencyModel {
        LatencyModel::new(45.0, 0.6)
    }

    /// Sample a one-way latency in milliseconds.
    pub fn sample_ms(&self, rng: &mut SimRng) -> f64 {
        if self.jitter_sigma == 0.0 {
            return self.base_ms;
        }
        rng.log_normal(self.base_ms, self.jitter_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_classification_are_consistent() {
        let mut plan = AddressPlan::new();
        for _ in 0..300 {
            let cloud = plan.allocate(HostingClass::Cloud).unwrap();
            assert_eq!(AddressPlan::classify(&cloud), HostingClass::Cloud);
            let res = plan.allocate(HostingClass::Residential).unwrap();
            assert_eq!(AddressPlan::classify(&res), HostingClass::Residential);
        }
        assert!(plan.allocate(HostingClass::Dead).is_none());
    }

    #[test]
    fn addresses_are_unique() {
        let mut plan = AddressPlan::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(plan.allocate(HostingClass::Cloud).unwrap()));
            assert!(seen.insert(plan.allocate(HostingClass::Residential).unwrap()));
        }
    }

    #[test]
    fn display_and_names() {
        let addr = SimAddr([10, 0, 1, 2]);
        assert_eq!(addr.to_string(), "10.0.1.2");
        assert_eq!(
            HostingClass::Cloud.display_name(),
            "cloud / reverse-proxied"
        );
        assert_eq!(HostingClass::Residential.display_name(), "residential");
        assert_eq!(HostingClass::Dead.display_name(), "not functional");
    }

    #[test]
    fn latency_model_samples_near_base() {
        let mut rng = SimRng::new(5);
        let model = LatencyModel::cloud();
        let mut samples: Vec<f64> = (0..5_001).map(|_| model.sample_ms(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((10.0..25.0).contains(&median), "median {median}");
        let fixed = LatencyModel::new(5.0, 0.0);
        assert_eq!(fixed.sample_ms(&mut rng), 5.0);
        let res = LatencyModel::residential();
        assert!(res.sample_ms(&mut rng) > 0.0);
    }
}
