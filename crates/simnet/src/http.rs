//! Simulated HTTPS document space.
//!
//! Several ATProto mechanisms are "fetch a small document over HTTPS":
//! `/.well-known/atproto-did` handle proofs, `/.well-known/did.json` for
//! `did:web`, feed-generator `describeFeedGenerator` metadata, and labeler
//! endpoints. This module stores such documents keyed by URL and models
//! unavailability.

use std::collections::BTreeMap;

/// Outcome of an HTTPS GET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpResponse {
    /// 200 with a body.
    Ok(String),
    /// 404 — the document does not exist.
    NotFound,
    /// Connection failure / timeout (host down, DNS broken, ...).
    Unreachable,
}

impl HttpResponse {
    /// The body, if the request succeeded.
    pub fn body(&self) -> Option<&str> {
        match self {
            HttpResponse::Ok(b) => Some(b),
            _ => None,
        }
    }
}

/// A miniature web: URL → document, plus per-host outage marks.
#[derive(Debug, Clone, Default)]
pub struct WebSpace {
    documents: BTreeMap<String, String>,
    down_hosts: BTreeMap<String, ()>,
    requests: std::cell::Cell<u64>,
}

fn host_of(url: &str) -> Option<&str> {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))?;
    Some(rest.split('/').next().unwrap_or(rest))
}

impl WebSpace {
    /// Create an empty web.
    pub fn new() -> WebSpace {
        WebSpace::default()
    }

    /// Publish a document at a URL.
    pub fn publish(&mut self, url: &str, body: impl Into<String>) {
        self.documents.insert(url.to_string(), body.into());
    }

    /// Remove a document.
    pub fn unpublish(&mut self, url: &str) {
        self.documents.remove(url);
    }

    /// Mark an entire host as unreachable.
    pub fn take_host_down(&mut self, host: &str) {
        self.down_hosts.insert(host.to_ascii_lowercase(), ());
    }

    /// Bring a host back.
    pub fn bring_host_up(&mut self, host: &str) {
        self.down_hosts.remove(&host.to_ascii_lowercase());
    }

    /// Perform a GET.
    pub fn get(&self, url: &str) -> HttpResponse {
        self.requests.set(self.requests.get() + 1);
        if let Some(host) = host_of(url) {
            if self.down_hosts.contains_key(&host.to_ascii_lowercase()) {
                return HttpResponse::Unreachable;
            }
        } else {
            return HttpResponse::Unreachable;
        }
        match self.documents.get(url) {
            Some(body) => HttpResponse::Ok(body.clone()),
            None => HttpResponse::NotFound,
        }
    }

    /// Number of documents published.
    pub fn document_count(&self) -> usize {
        self.documents.len()
    }

    /// Total requests served.
    pub fn requests_served(&self) -> u64 {
        self.requests.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_get_unpublish() {
        let mut web = WebSpace::new();
        web.publish("https://example.com/.well-known/atproto-did", "did:plc:abc");
        assert_eq!(
            web.get("https://example.com/.well-known/atproto-did"),
            HttpResponse::Ok("did:plc:abc".into())
        );
        assert_eq!(web.get("https://example.com/other"), HttpResponse::NotFound);
        web.unpublish("https://example.com/.well-known/atproto-did");
        assert_eq!(
            web.get("https://example.com/.well-known/atproto-did"),
            HttpResponse::NotFound
        );
        assert_eq!(web.document_count(), 0);
        assert!(web.requests_served() >= 3);
    }

    #[test]
    fn host_outages() {
        let mut web = WebSpace::new();
        web.publish("https://labeler.example/xrpc/labels", "[]");
        web.take_host_down("labeler.example");
        assert_eq!(
            web.get("https://labeler.example/xrpc/labels"),
            HttpResponse::Unreachable
        );
        web.bring_host_up("labeler.example");
        assert_eq!(
            web.get("https://labeler.example/xrpc/labels"),
            HttpResponse::Ok("[]".into())
        );
    }

    #[test]
    fn malformed_urls_are_unreachable() {
        let web = WebSpace::new();
        assert_eq!(web.get("not a url"), HttpResponse::Unreachable);
        assert_eq!(HttpResponse::NotFound.body(), None);
        assert_eq!(HttpResponse::Ok("x".into()).body(), Some("x"));
    }

    #[test]
    fn host_extraction() {
        assert_eq!(
            host_of("https://a.example.com/path/x"),
            Some("a.example.com")
        );
        assert_eq!(host_of("http://b.example"), Some("b.example"));
        assert_eq!(host_of("ftp://c.example"), None);
    }
}
