//! Simulated wall-clock time.

use std::sync::{Arc, RwLock};

/// Seconds since the Unix epoch — mirrors `bsky_atproto::Datetime` without
/// introducing a dependency cycle; conversion is a plain integer copy.
pub type UnixSeconds = i64;

/// A shareable simulated clock.
///
/// All services hold a clone of the clock; the workload driver advances it.
/// Reads are cheap (an `RwLock` read), writes only happen from the driver.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Arc<RwLock<UnixSeconds>>,
}

impl SimClock {
    /// Create a clock starting at the given time.
    pub fn starting_at(start: UnixSeconds) -> SimClock {
        SimClock {
            now: Arc::new(RwLock::new(start)),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> UnixSeconds {
        *self.now.read().expect("clock lock poisoned")
    }

    /// Advance the clock by `seconds` (panics if negative).
    pub fn advance(&self, seconds: i64) {
        assert!(seconds >= 0, "clock cannot move backwards");
        *self.now.write().expect("clock lock poisoned") += seconds;
    }

    /// Jump the clock to an absolute time (must not move backwards).
    pub fn set(&self, to: UnixSeconds) {
        let mut now = self.now.write().expect("clock lock poisoned");
        assert!(to >= *now, "clock cannot move backwards");
        *now = to;
    }

    /// Elapsed seconds since `earlier`.
    pub fn seconds_since(&self, earlier: UnixSeconds) -> i64 {
        self.now() - earlier
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::starting_at(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let clock = SimClock::starting_at(100);
        let clone = clock.clone();
        clock.advance(50);
        assert_eq!(clone.now(), 150);
        clone.set(200);
        assert_eq!(clock.now(), 200);
        assert_eq!(clock.seconds_since(120), 80);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn cannot_move_backwards() {
        let clock = SimClock::starting_at(100);
        clock.set(50);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn cannot_advance_negative() {
        let clock = SimClock::starting_at(100);
        clock.advance(-1);
    }
}
