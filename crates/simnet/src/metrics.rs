//! Counters and streaming histograms.
//!
//! Services use these to account for load (requests served, bytes shipped on
//! the firehose) and the measurement pipeline uses them for the quantile
//! summaries the paper reports (e.g. Table 6's median / IQD reaction times).

use std::collections::BTreeMap;

/// A named set of monotonically increasing counters.
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    counters: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Create an empty set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Increment a counter by 1.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `amount`.
    pub fn add(&mut self, name: &str, amount: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += amount;
    }

    /// Read a counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterate all counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.counters.values().sum()
    }
}

/// A histogram that keeps all samples (fine at simulation scale) and offers
/// exact quantiles.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record a sample (non-finite samples are ignored).
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether the histogram has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum() / self.samples.len() as f64)
        }
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
    }

    /// Exact quantile in `[0, 1]` using nearest-rank interpolation.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.sort();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// The median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Interquartile distance (Q3 − Q1), the dispersion measure Table 6 uses.
    pub fn iqd(&mut self) -> Option<f64> {
        Some(self.quantile(0.75)? - self.quantile(0.25)?)
    }

    /// Minimum sample.
    pub fn min(&mut self) -> Option<f64> {
        self.sort();
        self.samples.first().copied()
    }

    /// Maximum sample.
    pub fn max(&mut self) -> Option<f64> {
        self.sort();
        self.samples.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = CounterSet::new();
        c.incr("posts");
        c.add("posts", 9);
        c.add("likes", 5);
        assert_eq!(c.get("posts"), 10);
        assert_eq!(c.get("likes"), 5);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.total(), 15);
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["likes", "posts"]);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.median().unwrap() - 50.5).abs() < 1e-9);
        assert!((h.quantile(0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((h.quantile(1.0).unwrap() - 100.0).abs() < 1e-9);
        let iqd = h.iqd().unwrap();
        assert!((iqd - 49.5).abs() < 1.0, "iqd {iqd}");
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(100.0));
        assert!((h.mean().unwrap() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_degenerate_histograms() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.median(), None);
        assert_eq!(h.iqd(), None);
        assert_eq!(h.mean(), None);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
        h.record(7.0);
        assert_eq!(h.median(), Some(7.0));
        assert_eq!(h.iqd(), Some(0.0));
    }

    #[test]
    fn interleaved_record_and_quantile() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.median(), Some(10.0));
        h.record(20.0);
        h.record(30.0);
        assert_eq!(h.median(), Some(20.0));
        assert_eq!(h.quantile(2.0), Some(30.0)); // clamped
    }
}
