//! Simulated DNS.
//!
//! The study's identity analyses (§5) hinge on DNS: `_atproto.<handle>` TXT
//! records prove handle ownership, and WHOIS data maps registered domains to
//! registrars. This module provides the authoritative zone store the
//! simulated resolvers query. Lookups can be made to fail for a configurable
//! fraction of zones to model broken delegations.

use std::collections::BTreeMap;

/// Outcome of a DNS TXT lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxtLookup {
    /// The name exists and has TXT records.
    Found(Vec<String>),
    /// The name does not exist (NXDOMAIN).
    NxDomain,
    /// The query timed out / the delegation is broken.
    ServFail,
}

impl TxtLookup {
    /// The records, if the lookup succeeded.
    pub fn records(&self) -> Option<&[String]> {
        match self {
            TxtLookup::Found(r) => Some(r),
            _ => None,
        }
    }
}

/// Outcome of an `_atproto.` handle-ownership resolution, with every
/// failure mode kept distinct so callers can count them separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtprotoResolution {
    /// A valid `did=` proof was found.
    Did(String),
    /// The name exists but carries no `did=` proof.
    NoProof,
    /// The name does not exist.
    NxDomain,
    /// The name is marked failed (broken delegation / timeout).
    ServFail,
}

/// An authoritative store of TXT records plus per-name failure marks.
#[derive(Debug, Clone, Default)]
pub struct DnsZoneStore {
    txt: BTreeMap<String, Vec<String>>,
    broken: BTreeMap<String, ()>,
    queries: std::cell::Cell<u64>,
}

impl DnsZoneStore {
    /// Create an empty store.
    pub fn new() -> DnsZoneStore {
        DnsZoneStore::default()
    }

    /// Publish (append) a TXT record at a name.
    pub fn add_txt(&mut self, name: &str, value: impl Into<String>) {
        self.txt
            .entry(name.to_ascii_lowercase())
            .or_default()
            .push(value.into());
    }

    /// Replace all TXT records at a name.
    pub fn set_txt(&mut self, name: &str, values: Vec<String>) {
        self.txt.insert(name.to_ascii_lowercase(), values);
    }

    /// Remove all records at a name.
    pub fn remove(&mut self, name: &str) {
        self.txt.remove(&name.to_ascii_lowercase());
        self.broken.remove(&name.to_ascii_lowercase());
    }

    /// Mark a name as failing (SERVFAIL) regardless of stored records.
    pub fn mark_broken(&mut self, name: &str) {
        self.broken.insert(name.to_ascii_lowercase(), ());
    }

    /// Perform a TXT lookup.
    pub fn lookup_txt(&self, name: &str) -> TxtLookup {
        self.queries.set(self.queries.get() + 1);
        let name = name.to_ascii_lowercase();
        if self.broken.contains_key(&name) {
            return TxtLookup::ServFail;
        }
        match self.txt.get(&name) {
            Some(records) => TxtLookup::Found(records.clone()),
            None => TxtLookup::NxDomain,
        }
    }

    /// Convenience: the `did=` payload of an `_atproto.` TXT proof, if any.
    pub fn lookup_atproto_did(&self, handle: &str) -> Option<String> {
        let name = format!("_atproto.{}", handle.to_ascii_lowercase());
        self.lookup_txt(&name)
            .records()?
            .iter()
            .find_map(|r| r.strip_prefix("did=").map(str::to_string))
    }

    /// Outcome-preserving `_atproto.` resolution: like
    /// [`lookup_atproto_did`](DnsZoneStore::lookup_atproto_did) but a name
    /// marked failed surfaces as a distinct [`AtprotoResolution::ServFail`]
    /// instead of folding into generic lookup failure, so identity-path
    /// callers can count it separately.
    pub fn resolve_atproto(&self, handle: &str) -> AtprotoResolution {
        let name = format!("_atproto.{}", handle.to_ascii_lowercase());
        match self.lookup_txt(&name) {
            TxtLookup::ServFail => AtprotoResolution::ServFail,
            TxtLookup::NxDomain => AtprotoResolution::NxDomain,
            TxtLookup::Found(records) => records
                .iter()
                .find_map(|r| r.strip_prefix("did=").map(str::to_string))
                .map(AtprotoResolution::Did)
                .unwrap_or(AtprotoResolution::NoProof),
        }
    }

    /// Number of names with at least one TXT record.
    pub fn zone_count(&self) -> usize {
        self.txt.len()
    }

    /// Total queries served (measurement of crawler load).
    pub fn queries_served(&self) -> u64 {
        self.queries.get()
    }

    /// Iterate all `(name, records)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.txt.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txt_publish_and_lookup() {
        let mut dns = DnsZoneStore::new();
        dns.add_txt("_atproto.example.com", "did=did:plc:abc");
        dns.add_txt("_atproto.example.com", "unrelated");
        match dns.lookup_txt("_atproto.EXAMPLE.com") {
            TxtLookup::Found(records) => assert_eq!(records.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            dns.lookup_atproto_did("example.com"),
            Some("did:plc:abc".to_string())
        );
        assert_eq!(dns.lookup_txt("missing.example"), TxtLookup::NxDomain);
        assert_eq!(dns.zone_count(), 1);
        assert!(dns.queries_served() >= 3);
    }

    #[test]
    fn broken_names_servfail() {
        let mut dns = DnsZoneStore::new();
        dns.add_txt("_atproto.broken.example", "did=did:plc:abc");
        dns.mark_broken("_atproto.broken.example");
        assert_eq!(
            dns.lookup_txt("_atproto.broken.example"),
            TxtLookup::ServFail
        );
        assert_eq!(dns.lookup_atproto_did("broken.example"), None);
        // The outcome-preserving resolver keeps the failure mode distinct.
        assert_eq!(
            dns.resolve_atproto("broken.example"),
            AtprotoResolution::ServFail
        );
        assert_eq!(
            dns.resolve_atproto("missing.example"),
            AtprotoResolution::NxDomain
        );
        dns.remove("_atproto.broken.example");
        assert_eq!(
            dns.lookup_txt("_atproto.broken.example"),
            TxtLookup::NxDomain
        );
    }

    #[test]
    fn set_replaces_records() {
        let mut dns = DnsZoneStore::new();
        dns.add_txt("name.example", "one");
        dns.set_txt("name.example", vec!["two".into()]);
        assert_eq!(
            dns.lookup_txt("name.example").records().unwrap(),
            &["two".to_string()]
        );
        assert_eq!(dns.iter().count(), 1);
    }

    #[test]
    fn missing_did_prefix_is_ignored() {
        let mut dns = DnsZoneStore::new();
        dns.add_txt("_atproto.nodid.example", "verification=xyz");
        assert_eq!(dns.lookup_atproto_did("nodid.example"), None);
        assert_eq!(
            dns.resolve_atproto("nodid.example"),
            AtprotoResolution::NoProof
        );
        dns.add_txt("_atproto.good.example", "did=did:plc:ok");
        assert_eq!(
            dns.resolve_atproto("good.example"),
            AtprotoResolution::Did("did:plc:ok".into())
        );
    }
}
