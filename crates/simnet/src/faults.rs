//! Deterministic fault injection: the [`FaultPlan`] and the client-side
//! [`RetryPolicy`].
//!
//! Two invariants govern everything in this module:
//!
//! * **Determinism by derivation.** Every injected failure is a pure
//!   function of `(seed, key, day)` — exactly like the population plan.
//!   Each decision draws from a dedicated fork rooted at
//!   `SimRng::new(seed).fork("faults")`, so fault injection consumes *zero*
//!   randomness from the content/churn streams: a quiet plan leaves a run
//!   byte-identical to one with no fault machinery at all, and a faulted
//!   run is byte-identical serial vs. sharded because every predicate can
//!   be re-derived independently on any shard that owns the key.
//! * **Never silent.** Every retry, timeout, fallback-to-full-fetch and
//!   permanent give-up that a fault provokes is surfaced as a named
//!   counter (`StreamSummary` on the collector side, [`FaultCounters`] on
//!   the workload side). A scenario that completes with zero recovery-path
//!   counters is a bug, and the golden tests pin that.
//!
//! The plan covers the scenario pack end to end: a PDS host outage with
//! mass re-homing (the day a fleet host dies its accounts migrate and the
//! mirror backfills them with full fetches), flaky/timed-out
//! `getRepo`/`getRepoSince` responses, DNS SERVFAILs on the identity path,
//! firehose cursor gaps and rewinds, spam/bot posting waves, label storms,
//! and tombstone storms. Host outages last one day: the host "revives"
//! afterwards and later plan-derived signups may land on it again, which
//! keeps signup placement a pure function of the population plan.

use crate::rng::SimRng;
use std::collections::BTreeMap;

/// Cap on consecutive injected failures for one `(key, day)` request
/// sequence. Keeps give-up decisions stable for any policy with
/// `max_attempts` above the cap: such a policy never gives up, so its
/// runs fetch exactly what a clean run fetches.
pub const MAX_INJECTED_FAILURES: u32 = 6;

/// How many days back a label storm reaches when flagging posts.
pub const LABEL_STORM_LOOKBACK_DAYS: usize = 14;

/// Which faults are active and how strongly. `Default` is quiet (no
/// faults); scenario presets are available via [`FaultSpec::scenario`] and
/// ad-hoc specs parse from `key=value` lists via [`FaultSpec::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Day (as a fraction of the run, `0.0..=1.0`) a default-fleet PDS
    /// host dies and its accounts mass-migrate. `None` = no outage.
    pub outage_day: Option<f64>,
    /// Index into the default-fleet host list of the host that dies.
    pub outage_host: usize,
    /// Probability that a `(DID, day)` repo fetch sequence is flaky.
    pub flaky_fetch: f64,
    /// Probability that a `(handle, day)` DNS resolution SERVFAILs.
    pub dns_flap: f64,
    /// Probability that a `(DID, day)` commit falls into a cursor gap.
    pub cursor_gap: f64,
    /// Probability that a day ends with a firehose cursor rewind (the
    /// consumer re-reads the day's events).
    pub cursor_rewind: f64,
    /// Fraction of accounts conscripted into the spam/bot wave.
    pub spam_fraction: f64,
    /// Extra spam posts each conscripted account adds per active day.
    pub spam_rate: u32,
    /// Day (fraction of the run) a labeler flags a storm of posts.
    pub label_storm_day: Option<f64>,
    /// Per-post flag probability on the storm day.
    pub label_storm_prob: f64,
    /// Day (fraction of the run) of the account-deletion storm.
    pub tombstone_day: Option<f64>,
    /// Per-account deletion probability on the storm day.
    pub tombstone_prob: f64,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec {
            outage_day: None,
            outage_host: 0,
            flaky_fetch: 0.0,
            dns_flap: 0.0,
            cursor_gap: 0.0,
            cursor_rewind: 0.0,
            spam_fraction: 0.0,
            spam_rate: 0,
            label_storm_day: None,
            label_storm_prob: 0.0,
            tombstone_day: None,
            tombstone_prob: 0.0,
        }
    }
}

/// Names accepted by [`FaultSpec::scenario`], for CLI help and errors.
pub const SCENARIO_NAMES: &[&str] = &[
    "pds-migration",
    "flaky-fetch",
    "dns-flap",
    "cursor-gap",
    "spam-wave",
    "label-storm",
    "tombstone-storm",
];

impl FaultSpec {
    /// A named scenario preset, or `None` for an unknown name.
    pub fn scenario(name: &str) -> Option<FaultSpec> {
        let mut spec = FaultSpec::default();
        match name {
            "pds-migration" => {
                spec.outage_day = Some(0.5);
                spec.outage_host = 0;
            }
            "flaky-fetch" => spec.flaky_fetch = 0.3,
            "dns-flap" => spec.dns_flap = 0.3,
            "cursor-gap" => {
                spec.cursor_gap = 0.05;
                spec.cursor_rewind = 0.25;
            }
            "spam-wave" => {
                spec.spam_fraction = 0.05;
                spec.spam_rate = 25;
            }
            "label-storm" => {
                spec.label_storm_day = Some(0.6);
                spec.label_storm_prob = 0.5;
            }
            "tombstone-storm" => {
                spec.tombstone_day = Some(0.75);
                spec.tombstone_prob = 0.02;
            }
            _ => return None,
        }
        Some(spec)
    }

    /// Parse an ad-hoc `key=value,key=value` spec. Keys: `outage` /
    /// `outage-host`, `flaky`, `dns`, `gap`, `rewind`, `spam` /
    /// `spam-rate`, `label-storm` / `label-prob`, `tombstone` /
    /// `tombstone-prob`. Day keys take run fractions in `0..=1`;
    /// probability keys take `0..=1`; count keys take non-negative
    /// integers. Unknown keys and out-of-range values are errors.
    pub fn parse(input: &str) -> Result<FaultSpec, String> {
        FaultSpec::parse_onto(FaultSpec::default(), input)
    }

    /// Parse a `key=value` spec *on top of* an existing base spec — the
    /// composition path behind `--scenario X --faults Y`: the scenario
    /// preset is the base and each spec key overrides it, leaving the
    /// preset's other knobs intact. A key given twice with *different*
    /// values is contradictory and errors; an identical repeat is
    /// harmless.
    pub fn parse_onto(base: FaultSpec, input: &str) -> Result<FaultSpec, String> {
        let mut spec = base;
        let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
        for part in input.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry '{part}' is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            if let Some(prev) = seen.insert(key, value) {
                if prev != value {
                    return Err(format!(
                        "contradictory fault spec: '{key}' given as both '{prev}' and '{value}'"
                    ));
                }
                continue;
            }
            let fraction = || -> Result<f64, String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("fault spec '{key}' value '{value}' is not a number"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("fault spec '{key}' value {value} not in 0..=1"));
                }
                Ok(v)
            };
            let count = || -> Result<u64, String> {
                value
                    .parse()
                    .map_err(|_| format!("fault spec '{key}' value '{value}' is not an integer"))
            };
            match key {
                "outage" => spec.outage_day = Some(fraction()?),
                "outage-host" => spec.outage_host = count()? as usize,
                "flaky" => spec.flaky_fetch = fraction()?,
                "dns" => spec.dns_flap = fraction()?,
                "gap" => spec.cursor_gap = fraction()?,
                "rewind" => spec.cursor_rewind = fraction()?,
                "spam" => {
                    spec.spam_fraction = fraction()?;
                    if spec.spam_rate == 0 {
                        spec.spam_rate = 10;
                    }
                }
                "spam-rate" => spec.spam_rate = count()? as u32,
                "label-storm" => {
                    spec.label_storm_day = Some(fraction()?);
                    if spec.label_storm_prob == 0.0 {
                        spec.label_storm_prob = 0.5;
                    }
                }
                "label-prob" => spec.label_storm_prob = fraction()?,
                "tombstone" => {
                    spec.tombstone_day = Some(fraction()?);
                    if spec.tombstone_prob == 0.0 {
                        spec.tombstone_prob = 0.02;
                    }
                }
                "tombstone-prob" => spec.tombstone_prob = fraction()?,
                _ => return Err(format!("unknown fault spec key '{key}'")),
            }
        }
        Ok(spec)
    }

    /// True when no fault kind is enabled.
    pub fn is_quiet(&self) -> bool {
        self.outage_day.is_none()
            && self.flaky_fetch == 0.0
            && self.dns_flap == 0.0
            && self.cursor_gap == 0.0
            && self.cursor_rewind == 0.0
            && (self.spam_fraction == 0.0 || self.spam_rate == 0)
            && self.label_storm_day.is_none()
            && self.tombstone_day.is_none()
    }
}

/// The resolved fault schedule for one run: the spec plus every
/// fraction-of-run day pinned to a concrete day index. All predicates are
/// pure functions of `(seed, key, day)`; see the module docs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    outage_day: Option<usize>,
    label_storm_day: Option<usize>,
    tombstone_day: Option<usize>,
}

impl FaultPlan {
    /// Resolve a spec against a run of `total_days` days seeded `seed`.
    pub fn build(seed: u64, total_days: usize, spec: FaultSpec) -> FaultPlan {
        let pin = |fraction: Option<f64>| -> Option<usize> {
            let f = fraction?;
            if total_days == 0 {
                return None;
            }
            let day = (f * total_days as f64).floor() as usize;
            Some(day.min(total_days - 1))
        };
        FaultPlan {
            seed,
            outage_day: pin(spec.outage_day),
            label_storm_day: pin(spec.label_storm_day),
            tombstone_day: pin(spec.tombstone_day),
            spec,
        }
    }

    /// A plan that injects nothing. Runs built with it are byte-identical
    /// to runs with no fault machinery at all.
    pub fn quiet() -> FaultPlan {
        FaultPlan::build(0, 0, FaultSpec::default())
    }

    /// True when this plan injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.spec.is_quiet()
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The dedicated fork for one `(kind, key, day)` decision.
    fn fork(&self, kind: &str, key: &str, day: u64) -> SimRng {
        SimRng::new(self.seed)
            .fork("faults")
            .fork(kind)
            .fork(key)
            .fork_u64(day)
    }

    /// The outage event, if any: `(day index, default-host index)`.
    pub fn outage(&self) -> Option<(usize, usize)> {
        self.outage_day.map(|day| (day, self.spec.outage_host))
    }

    /// Deterministic re-home draw for a DID displaced by the outage. The
    /// caller maps it onto the list of surviving hosts.
    pub fn rehome_slot(&self, did: &str) -> u64 {
        self.fork("rehome", did, 0).next_u64()
    }

    /// How many consecutive injected failures the `(key, day)` request
    /// sequence of operation class `op` suffers before it would succeed.
    /// `0` for most sequences; geometric tail capped at
    /// [`MAX_INJECTED_FAILURES`]. Distinct `op` labels (e.g. delta vs.
    /// full fetch) draw independently.
    pub fn fetch_failures(&self, op: &str, key: &str, day: u64) -> u32 {
        if self.spec.flaky_fetch <= 0.0 {
            return 0;
        }
        let mut rng = self.fork("flaky", key, day).fork(op);
        if !rng.chance(self.spec.flaky_fetch) {
            return 0;
        }
        let mut failures = 1;
        while failures < MAX_INJECTED_FAILURES && rng.chance(0.4) {
            failures += 1;
        }
        failures
    }

    /// How many consecutive SERVFAILs a `(handle, day)` DNS resolution
    /// suffers before it would succeed.
    pub fn dns_failures(&self, handle: &str, day: u64) -> u32 {
        if self.spec.dns_flap <= 0.0 {
            return 0;
        }
        let mut rng = self.fork("dns-flap", handle, day);
        if !rng.chance(self.spec.dns_flap) {
            return 0;
        }
        let mut failures = 1;
        while failures < MAX_INJECTED_FAILURES && rng.chance(0.4) {
            failures += 1;
        }
        failures
    }

    /// The fork retries for one `(op, key, day)` sequence draw backoff
    /// jitter from. Separate from the failure draw so policy changes never
    /// shift which requests fail.
    pub fn retry_rng(&self, op: &str, key: &str, day: u64) -> SimRng {
        self.fork("retry", key, day).fork(op)
    }

    /// Whether the `(DID, day)` commit stream falls into a cursor gap (the
    /// slow consumer misses that producer's commits for the day).
    pub fn drops_commit(&self, did: &str, day: u64) -> bool {
        self.spec.cursor_gap > 0.0 && self.fork("gap", did, day).chance(self.spec.cursor_gap)
    }

    /// Whether the consumer's cursor rewinds at the end of `day` (it
    /// re-reads the day's events from the day-start cursor).
    pub fn rewinds_cursor(&self, day: u64) -> bool {
        self.spec.cursor_rewind > 0.0
            && self.fork("rewind", "", day).chance(self.spec.cursor_rewind)
    }

    /// Extra spam posts the account writes on `day_idx` (0 unless the DID
    /// is conscripted into the wave).
    pub fn spam_posts(&self, did: &str, day_idx: usize) -> u32 {
        if self.spec.spam_fraction <= 0.0 || self.spec.spam_rate == 0 {
            return 0;
        }
        if !self
            .fork("spam-conscript", did, 0)
            .chance(self.spec.spam_fraction)
        {
            return 0;
        }
        let mut rng = self.fork("spam-volume", did, day_idx as u64);
        let jitter = rng.range(0..(u64::from(self.spec.spam_rate) / 2 + 1)) as u32;
        self.spec.spam_rate + jitter
    }

    /// The label-storm day index, if any.
    pub fn label_storm_day(&self) -> Option<usize> {
        self.label_storm_day
    }

    /// Whether the storm flags this post URI.
    pub fn storm_label(&self, uri: &str) -> bool {
        self.spec.label_storm_prob > 0.0
            && self
                .fork("label-storm", uri, 0)
                .chance(self.spec.label_storm_prob)
    }

    /// The tombstone-storm day index, if any.
    pub fn tombstone_day(&self) -> Option<usize> {
        self.tombstone_day
    }

    /// Whether the storm deletes this account.
    pub fn storm_tombstone(&self, did: &str) -> bool {
        self.spec.tombstone_prob > 0.0
            && self
                .fork("tombstone", did, 0)
                .chance(self.spec.tombstone_prob)
    }
}

/// Per-request timeout classes: each class carries its own bounded-retry
/// policy defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutClass {
    /// Full `getRepo` CAR fetch.
    RepoFetch,
    /// Incremental `getRepoSince` delta fetch.
    DeltaFetch,
    /// `_atproto.` TXT resolution on the identity path.
    DnsLookup,
}

/// Bounded retries with deterministic exponential backoff under the
/// simulated clock. `max_attempts` counts the first try: a request that
/// fails `max_attempts` times is a permanent give-up, which callers must
/// surface as a named counter (never silently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries) before giving up.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated milliseconds.
    pub base_delay_ms: u64,
    /// Backoff ceiling, in simulated milliseconds.
    pub max_delay_ms: u64,
    /// Per-attempt timeout charged for each failed attempt.
    pub timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::for_class(TimeoutClass::RepoFetch)
    }
}

impl RetryPolicy {
    /// The default policy for a timeout class.
    pub fn for_class(class: TimeoutClass) -> RetryPolicy {
        match class {
            TimeoutClass::RepoFetch => RetryPolicy {
                max_attempts: 4,
                base_delay_ms: 500,
                max_delay_ms: 8_000,
                timeout_ms: 30_000,
            },
            TimeoutClass::DeltaFetch => RetryPolicy {
                max_attempts: 3,
                base_delay_ms: 250,
                max_delay_ms: 4_000,
                timeout_ms: 10_000,
            },
            TimeoutClass::DnsLookup => RetryPolicy {
                max_attempts: 5,
                base_delay_ms: 100,
                max_delay_ms: 2_000,
                timeout_ms: 5_000,
            },
        }
    }

    /// Backoff before 0-based retry `retry`: exponential in the base
    /// delay, capped at the ceiling, with ±25% jitter drawn from the
    /// caller's dedicated fork.
    pub fn backoff_ms(&self, retry: u32, rng: &mut SimRng) -> u64 {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.min(20))
            .min(self.max_delay_ms);
        let jitter = exp / 4;
        if jitter == 0 {
            exp
        } else {
            exp - jitter + rng.range(0..(2 * jitter))
        }
    }

    /// Resolve a request sequence that would fail `failures` consecutive
    /// times: how many retries run, the total simulated wait (timeouts +
    /// backoff), and whether the sequence is a permanent give-up. When it
    /// gives up the caller must not issue the real request at all, so
    /// fetched-byte accounting can never double-count.
    pub fn outcome(&self, failures: u32, rng: &mut SimRng) -> RetryOutcome {
        let gave_up = failures >= self.max_attempts;
        let retries = if gave_up {
            self.max_attempts.saturating_sub(1)
        } else {
            failures
        };
        let mut backoff_ms = 0u64;
        for retry in 0..retries {
            backoff_ms += self.timeout_ms + self.backoff_ms(retry, rng);
        }
        if gave_up {
            // The final attempt also times out before the give-up.
            backoff_ms += self.timeout_ms;
        }
        RetryOutcome {
            retries,
            backoff_ms,
            gave_up,
        }
    }
}

/// The resolved result of one retried request sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Retries actually issued (beyond the first attempt).
    pub retries: u32,
    /// Total simulated wait: per-attempt timeouts plus backoff.
    pub backoff_ms: u64,
    /// True when every attempt failed and the request was abandoned.
    pub gave_up: bool,
}

/// Workload-side fault accounting, drained by the collector into the run
/// summary so injected faults are never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Accounts re-homed by the PDS host outage.
    pub outage_migrations: u64,
    /// Spam-wave posts injected on top of planned content.
    pub spam_posts_injected: u64,
    /// Posts flagged by the label storm.
    pub storm_labels_applied: u64,
    /// Accounts deleted by the tombstone storm.
    pub storm_tombstones: u64,
}

impl FaultCounters {
    /// Memberwise add (shard merge).
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.outage_migrations += other.outage_migrations;
        self.spam_posts_injected += other.spam_posts_injected;
        self.storm_labels_applied += other.storm_labels_applied;
        self.storm_tombstones += other.storm_tombstones;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_quiet_and_quiet_plan_injects_nothing() {
        let spec = FaultSpec::default();
        assert!(spec.is_quiet());
        let plan = FaultPlan::quiet();
        assert!(plan.is_quiet());
        assert_eq!(plan.outage(), None);
        assert_eq!(plan.label_storm_day(), None);
        assert_eq!(plan.tombstone_day(), None);
        for day in 0..64 {
            assert_eq!(plan.fetch_failures("full", "did:plc:abc", day), 0);
            assert_eq!(plan.dns_failures("alice.bsky.social", day), 0);
            assert!(!plan.drops_commit("did:plc:abc", day));
            assert!(!plan.rewinds_cursor(day));
            assert_eq!(plan.spam_posts("did:plc:abc", day as usize), 0);
        }
        assert!(!plan.storm_label("at://did:plc:abc/app.bsky.feed.post/p1"));
        assert!(!plan.storm_tombstone("did:plc:abc"));
    }

    #[test]
    fn every_scenario_name_resolves_and_is_not_quiet() {
        for name in SCENARIO_NAMES {
            let spec = FaultSpec::scenario(name).expect("known scenario");
            assert!(!spec.is_quiet(), "scenario {name} must enable something");
        }
        assert_eq!(FaultSpec::scenario("no-such-thing"), None);
    }

    #[test]
    fn spec_parse_round_trips_and_validates() {
        let spec = FaultSpec::parse("flaky=0.25,dns=0.1,gap=0.05,rewind=0.5").unwrap();
        assert_eq!(spec.flaky_fetch, 0.25);
        assert_eq!(spec.dns_flap, 0.1);
        assert_eq!(spec.cursor_gap, 0.05);
        assert_eq!(spec.cursor_rewind, 0.5);
        let spec = FaultSpec::parse("outage=0.5,outage-host=2,spam=0.1,spam-rate=7").unwrap();
        assert_eq!(spec.outage_day, Some(0.5));
        assert_eq!(spec.outage_host, 2);
        assert_eq!(spec.spam_fraction, 0.1);
        assert_eq!(spec.spam_rate, 7);
        let spec = FaultSpec::parse("label-storm=0.6,tombstone=0.75").unwrap();
        assert_eq!(spec.label_storm_day, Some(0.6));
        assert!(spec.label_storm_prob > 0.0, "default storm probability");
        assert!(spec.tombstone_prob > 0.0, "default storm probability");
        assert!(FaultSpec::parse("").unwrap().is_quiet());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("flaky=1.5").is_err());
        assert!(FaultSpec::parse("flaky").is_err());
        assert!(FaultSpec::parse("flaky=x").is_err());
    }

    #[test]
    fn parse_onto_composes_scenario_presets_with_spec_overrides() {
        // Spec keys override the preset; untouched preset knobs survive.
        let base = FaultSpec::scenario("flaky-fetch").unwrap();
        let spec = FaultSpec::parse_onto(base.clone(), "flaky=0.1,dns=0.2").unwrap();
        assert_eq!(spec.flaky_fetch, 0.1, "spec overrides the preset");
        assert_eq!(spec.dns_flap, 0.2, "spec adds on top of the preset");
        // A preset knob the spec does not mention is kept as-is.
        let base = FaultSpec::scenario("spam-wave").unwrap();
        let spec = FaultSpec::parse_onto(base.clone(), "spam=0.1").unwrap();
        assert_eq!(spec.spam_fraction, 0.1);
        assert_eq!(spec.spam_rate, base.spam_rate, "preset rate survives");
        // An empty spec leaves the preset untouched.
        assert_eq!(FaultSpec::parse_onto(base.clone(), "").unwrap(), base);
        // Contradictory keys (same key, different values) are errors;
        // identical repeats are harmless.
        let err = FaultSpec::parse_onto(FaultSpec::default(), "flaky=0.1,flaky=0.2").unwrap_err();
        assert!(err.contains("contradictory"), "{err}");
        let spec = FaultSpec::parse_onto(FaultSpec::default(), "flaky=0.1,flaky=0.1").unwrap();
        assert_eq!(spec.flaky_fetch, 0.1);
        // `parse` is `parse_onto` from a quiet base.
        assert_eq!(
            FaultSpec::parse("dns=0.3").unwrap(),
            FaultSpec::parse_onto(FaultSpec::default(), "dns=0.3").unwrap()
        );
    }

    #[test]
    fn plan_days_pin_inside_the_run() {
        let spec = FaultSpec::scenario("pds-migration").unwrap();
        let plan = FaultPlan::build(7, 50, spec);
        assert_eq!(plan.outage(), Some((25, 0)));
        let spec = FaultSpec::parse("label-storm=1.0,tombstone=0.0").unwrap();
        let plan = FaultPlan::build(7, 50, spec);
        assert_eq!(plan.label_storm_day(), Some(49), "clamped to last day");
        assert_eq!(plan.tombstone_day(), Some(0));
        // Zero-length runs pin nothing.
        let spec = FaultSpec::scenario("pds-migration").unwrap();
        assert_eq!(FaultPlan::build(7, 0, spec).outage(), None);
    }

    #[test]
    fn predicates_are_pure_functions_of_seed_key_day() {
        let spec =
            FaultSpec::parse("flaky=0.4,dns=0.4,gap=0.2,rewind=0.3,spam=0.3,spam-rate=5").unwrap();
        let a = FaultPlan::build(99, 60, spec.clone());
        let b = FaultPlan::build(99, 60, spec.clone());
        for day in 0..60u64 {
            for key in ["did:plc:aaa", "did:plc:bbb", "h.example"] {
                assert_eq!(
                    a.fetch_failures("full", key, day),
                    b.fetch_failures("full", key, day)
                );
                assert_eq!(a.dns_failures(key, day), b.dns_failures(key, day));
                assert_eq!(a.drops_commit(key, day), b.drops_commit(key, day));
                assert_eq!(
                    a.spam_posts(key, day as usize),
                    b.spam_posts(key, day as usize)
                );
            }
            assert_eq!(a.rewinds_cursor(day), b.rewinds_cursor(day));
        }
        // A different seed produces a different schedule somewhere.
        let c = FaultPlan::build(100, 60, spec);
        let differs = (0..60u64).any(|day| {
            a.fetch_failures("full", "did:plc:aaa", day)
                != c.fetch_failures("full", "did:plc:aaa", day)
        });
        assert!(differs, "seed must matter");
    }

    #[test]
    fn operation_classes_draw_independently() {
        let spec = FaultSpec::parse("flaky=0.5").unwrap();
        let plan = FaultPlan::build(11, 60, spec);
        let differs = (0..200u64).any(|day| {
            plan.fetch_failures("delta", "did:plc:x", day)
                != plan.fetch_failures("full", "did:plc:x", day)
        });
        assert!(
            differs,
            "delta and full fetch flakiness must be independent"
        );
    }

    #[test]
    fn failure_runs_are_capped() {
        let spec = FaultSpec::parse("flaky=1.0,dns=1.0").unwrap();
        let plan = FaultPlan::build(3, 30, spec);
        for day in 0..200u64 {
            assert!(plan.fetch_failures("full", "did:plc:x", day) <= MAX_INJECTED_FAILURES);
            assert!(plan.dns_failures("x.example", day) <= MAX_INJECTED_FAILURES);
            assert!(plan.fetch_failures("full", "did:plc:x", day) >= 1);
        }
    }

    #[test]
    fn retry_backoff_schedule_is_deterministic_under_forks() {
        let plan = FaultPlan::build(42, 30, FaultSpec::parse("flaky=0.5").unwrap());
        let policy = RetryPolicy::for_class(TimeoutClass::DeltaFetch);
        for day in 0..30u64 {
            for did in ["did:plc:aaa", "did:plc:bbb"] {
                let failures = plan.fetch_failures("delta", did, day);
                let first = policy.outcome(failures, &mut plan.retry_rng("delta", did, day));
                let second = policy.outcome(failures, &mut plan.retry_rng("delta", did, day));
                assert_eq!(first, second, "same (seed, DID, day) fork, same schedule");
            }
        }
    }

    #[test]
    fn retry_outcome_respects_bounds() {
        let policy = RetryPolicy::for_class(TimeoutClass::RepoFetch);
        let mut rng = SimRng::new(1).fork("test");
        let ok = policy.outcome(0, &mut rng);
        assert_eq!((ok.retries, ok.backoff_ms, ok.gave_up), (0, 0, false));
        let retried = policy.outcome(2, &mut rng);
        assert_eq!(retried.retries, 2);
        assert!(!retried.gave_up);
        assert!(retried.backoff_ms >= 2 * policy.timeout_ms);
        let abandoned = policy.outcome(policy.max_attempts, &mut rng);
        assert!(abandoned.gave_up);
        assert_eq!(abandoned.retries, policy.max_attempts - 1);
        let way_past = policy.outcome(policy.max_attempts + 10, &mut rng);
        assert!(way_past.gave_up);
        assert_eq!(way_past.retries, policy.max_attempts - 1);
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 100,
            max_delay_ms: 1_000,
            timeout_ms: 0,
        };
        let mut rng = SimRng::new(5).fork("backoff");
        for retry in 0..10 {
            let exp = 100u64.saturating_mul(1 << retry).min(1_000);
            let got = policy.backoff_ms(retry, &mut rng);
            assert!(
                got >= exp - exp / 4 && got < exp + exp / 4,
                "retry {retry}: {got} vs {exp}"
            );
        }
    }

    #[test]
    fn spam_conscription_hits_roughly_the_requested_fraction() {
        let spec = FaultSpec::parse("spam=0.2,spam-rate=10").unwrap();
        let plan = FaultPlan::build(17, 30, spec);
        let conscripted = (0..1000)
            .filter(|i| plan.spam_posts(&format!("did:plc:user{i}"), 5) > 0)
            .count();
        assert!(
            (100..=320).contains(&conscripted),
            "~20% of 1000, got {conscripted}"
        );
        // A conscripted account spams every day; a clean one never does.
        let spammer = (0..1000)
            .map(|i| format!("did:plc:user{i}"))
            .find(|d| plan.spam_posts(d, 5) > 0)
            .unwrap();
        assert!(plan.spam_posts(&spammer, 6) >= 10);
    }

    #[test]
    fn fault_counters_absorb_adds() {
        let mut a = FaultCounters {
            outage_migrations: 1,
            spam_posts_injected: 2,
            storm_labels_applied: 3,
            storm_tombstones: 4,
        };
        let b = FaultCounters {
            outage_migrations: 10,
            spam_posts_injected: 20,
            storm_labels_applied: 30,
            storm_tombstones: 40,
        };
        a.absorb(&b);
        assert_eq!(a.outage_migrations, 11);
        assert_eq!(a.spam_posts_injected, 22);
        assert_eq!(a.storm_labels_applied, 33);
        assert_eq!(a.storm_tombstones, 44);
    }
}
