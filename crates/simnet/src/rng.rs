//! Seeded, forkable random number generation.
//!
//! Every stochastic decision in the workload generator flows through a
//! [`SimRng`], so a single 64-bit seed plus the scale factor determines a run
//! exactly. Forking by label lets independent subsystems (e.g. the follow
//! graph and the labeler ecosystem) consume randomness without perturbing
//! each other when one of them changes.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Distribution, LogNormal, Poisson, Zipf};

/// A deterministic random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent generator for a named subsystem. The derived
    /// seed depends only on the parent seed and the label.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut derived = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for byte in label.bytes() {
            derived = derived.wrapping_mul(0x100_0000_01b3).wrapping_add(byte as u64);
            derived ^= derived >> 29;
        }
        SimRng::new(derived)
    }

    /// Uniform sample from a range.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen_bool(p)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Poisson sample with the given mean (returns 0 for non-positive means).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        // Guard against numerically extreme means.
        let mean = mean.min(1e7);
        Poisson::new(mean)
            .map(|d| d.sample(&mut self.inner) as u64)
            .unwrap_or(0)
    }

    /// Log-normal sample parameterised by the *median* and sigma of the
    /// underlying normal. Used for reaction-time and activity-level models.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        let mu = median.max(1e-9).ln();
        LogNormal::new(mu, sigma.max(1e-9))
            .map(|d| d.sample(&mut self.inner))
            .unwrap_or(median)
    }

    /// Zipf-distributed rank sample in `[1, n]` with exponent `s`.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        if n <= 1 {
            return 1;
        }
        Zipf::new(n, s.max(1e-6))
            .map(|d| d.sample(&mut self.inner) as u64)
            .unwrap_or(1)
    }

    /// Pick one element of a slice (panics on empty slices).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.inner.gen_range(0..items.len())]
    }

    /// Pick an index according to a weight vector. Returns `None` when the
    /// total weight is not positive.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.inner.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        Some(weights.len() - 1)
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Raw 64-bit output (for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let root = SimRng::new(7);
        let mut f1 = root.fork("labelers");
        let mut f1_again = root.fork("labelers");
        let mut f2 = root.fork("feedgens");
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(2.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn zipf_is_heavy_tailed() {
        let mut rng = SimRng::new(11);
        let samples: Vec<u64> = (0..20_000).map(|_| rng.zipf(1_000, 1.1)).collect();
        let ones = samples.iter().filter(|&&v| v == 1).count();
        let big = samples.iter().filter(|&&v| v > 500).count();
        assert!(ones > big, "rank 1 ({ones}) should dominate the tail ({big})");
        assert!(samples.iter().all(|&v| (1..=1_000).contains(&v)));
        assert_eq!(rng.zipf(1, 1.1), 1);
        assert_eq!(rng.zipf(0, 1.1), 1);
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.poisson(3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((2.8..3.2).contains(&mean), "mean {mean}");
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-1.0), 0);
    }

    #[test]
    fn log_normal_median_is_respected() {
        let mut rng = SimRng::new(17);
        let mut samples: Vec<f64> = (0..10_001).map(|_| rng.log_normal(10.0, 1.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((7.0..14.0).contains(&median), "median {median}");
        assert!(samples.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn weighted_pick_follows_weights() {
        let mut rng = SimRng::new(19);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
        assert!(rng.pick_weighted(&[]).is_none());
        assert!(rng.pick_weighted(&[0.0, 0.0]).is_none());
        assert!(rng.pick_weighted(&[f64::NAN, 1.0]).is_some());
    }

    #[test]
    fn pick_and_shuffle() {
        let mut rng = SimRng::new(23);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
        let mut shuffled = items;
        rng.shuffle(&mut shuffled);
        let mut sorted = shuffled;
        sorted.sort();
        assert_eq!(sorted, items);
    }
}
