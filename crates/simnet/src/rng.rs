//! Seeded, forkable random number generation.
//!
//! Every stochastic decision in the workload generator flows through a
//! [`SimRng`], so a single 64-bit seed plus the scale factor determines a run
//! exactly. Forking by label lets independent subsystems (e.g. the follow
//! graph and the labeler ecosystem) consume randomness without perturbing
//! each other when one of them changes.
//!
//! The generator is fully self-contained: the core stream is xoshiro256++
//! (seeded through SplitMix64), and the Poisson / log-normal / Zipf samplers
//! are implemented directly (Knuth + normal approximation, Box–Muller, and
//! rejection-inversion respectively), so the crate has no external
//! dependencies and the streams are stable across toolchains.

/// Types that can be drawn uniformly from a half-open `lo..hi` range.
pub trait UniformSample: Copy {
    /// Draw a uniform sample in `[lo, hi)`. Panics if the range is empty.
    fn sample_uniform(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformSample for $ty {
            fn sample_uniform(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let value = rng.next_bounded(span as u64) as i128;
                (lo as i128 + value) as $ty
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl UniformSample for f64 {
    fn sample_uniform(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range");
        // The product can round up to exactly `hi` for narrow ranges; clamp
        // to keep the documented half-open [lo, hi) contract.
        (lo + rng.unit() * (hi - lo)).min(hi.next_down())
    }
}

/// A deterministic random number generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state, seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent generator for a named subsystem. The derived
    /// seed depends only on the parent seed and the label.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut derived = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for byte in label.bytes() {
            derived = derived
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(byte as u64);
            derived ^= derived >> 29;
        }
        SimRng::new(derived)
    }

    /// Derive an independent generator from a numeric label. Equivalent in
    /// spirit to [`SimRng::fork`] but allocation-free, for hot paths that
    /// derive one stream per (entity, day, purpose) tuple.
    pub fn fork_u64(&self, label: u64) -> SimRng {
        let mut mix = self.seed ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Two splitmix rounds decorrelate adjacent labels.
        let a = splitmix64(&mut mix);
        let b = splitmix64(&mut mix);
        SimRng::new(a ^ b.rotate_left(32))
    }

    /// Raw 64-bit output (for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform integer in `[0, bound)` via rejection sampling (unbiased).
    fn next_bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Accept only draws below the largest multiple of `bound` that fits
        // in 64 bits, so the modulo is unbiased.
        let overhang = (u64::MAX % bound + 1) % bound;
        loop {
            let value = self.next_u64();
            if overhang == 0 || value <= u64::MAX - overhang {
                return value % bound;
            }
        }
    }

    /// Uniform sample from a half-open range `lo..hi`.
    pub fn range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_uniform(self, range.start, range.end)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A standard normal sample (Box–Muller; the spare value is discarded to
    /// keep the stream a pure function of the draw count).
    fn standard_normal(&mut self) -> f64 {
        loop {
            let u1 = self.unit();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.unit();
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }

    /// Poisson sample with the given mean (returns 0 for non-positive means).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        // Guard against numerically extreme means.
        let mean = mean.min(1e7);
        if mean < 30.0 {
            // Knuth's product-of-uniforms method (exact for small means).
            let limit = (-mean).exp();
            let mut product = 1.0;
            let mut count = 0u64;
            loop {
                product *= self.unit();
                if product <= limit {
                    return count;
                }
                count += 1;
            }
        }
        // Normal approximation for large means.
        let sample = mean + mean.sqrt() * self.standard_normal();
        sample.round().max(0.0) as u64
    }

    /// Log-normal sample parameterised by the *median* and sigma of the
    /// underlying normal. Used for reaction-time and activity-level models.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        let mu = median.max(1e-9).ln();
        (mu + sigma.max(1e-9) * self.standard_normal()).exp()
    }

    /// Zipf-distributed rank sample in `[1, n]` with exponent `s`, via
    /// rejection-inversion (Hörmann & Derflinger).
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        if n <= 1 {
            return 1;
        }
        let a = s.max(1e-6);
        let h_integral = |x: f64| -> f64 {
            let log_x = x.ln();
            if (a - 1.0).abs() < 1e-12 {
                log_x
            } else {
                ((1.0 - a) * log_x).exp_m1() / (1.0 - a)
            }
        };
        let h_integral_inverse = |x: f64| -> f64 {
            if (a - 1.0).abs() < 1e-12 {
                x.exp()
            } else {
                let t = (x * (1.0 - a)).max(-1.0);
                (t.ln_1p() / (1.0 - a)).exp()
            }
        };
        let h = |x: f64| -> f64 { (-a * x.ln()).exp() };
        let h_x1 = h_integral(1.5) - 1.0;
        let h_n = h_integral(n as f64 + 0.5);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
        loop {
            let u = h_n + self.unit() * (h_x1 - h_n);
            let x = h_integral_inverse(u);
            let k = x.round().clamp(1.0, n as f64);
            if k - x <= threshold || u >= h_integral(k + 0.5) - h(k) {
                return k as u64;
            }
        }
    }

    /// Pick one element of a slice (panics on empty slices).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.next_bounded(items.len() as u64) as usize]
    }

    /// Pick an index according to a weight vector. Returns `None` when the
    /// total weight is not positive.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        Some(weights.len() - 1)
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let root = SimRng::new(7);
        let mut f1 = root.fork("labelers");
        let mut f1_again = root.fork("labelers");
        let mut f2 = root.fork("feedgens");
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn numeric_forks_are_deterministic_and_decorrelated() {
        let root = SimRng::new(7);
        let mut a = root.fork_u64(42);
        let mut a_again = root.fork_u64(42);
        assert_eq!(a.next_u64(), a_again.next_u64());
        // Adjacent labels produce different streams, and the numeric fork
        // space does not collide with the string fork space in practice.
        let mut b = root.fork_u64(43);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
        // Different parents give different children for the same label.
        let mut c = SimRng::new(8).fork_u64(42);
        let mut d = SimRng::new(7).fork_u64(42);
        let same = (0..64).filter(|_| c.next_u64() == d.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(2.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn range_covers_and_stays_in_bounds() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
        let f = rng.range(0.25..0.75f64);
        assert!((0.25..0.75).contains(&f));
    }

    #[test]
    fn zipf_is_heavy_tailed() {
        let mut rng = SimRng::new(11);
        let samples: Vec<u64> = (0..20_000).map(|_| rng.zipf(1_000, 1.1)).collect();
        let ones = samples.iter().filter(|&&v| v == 1).count();
        let big = samples.iter().filter(|&&v| v > 500).count();
        assert!(
            ones > big,
            "rank 1 ({ones}) should dominate the tail ({big})"
        );
        assert!(samples.iter().all(|&v| (1..=1_000).contains(&v)));
        assert_eq!(rng.zipf(1, 1.1), 1);
        assert_eq!(rng.zipf(0, 1.1), 1);
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.poisson(3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((2.8..3.2).contains(&mean), "mean {mean}");
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-1.0), 0);
        // The large-mean path stays near its mean too.
        let total: f64 = (0..2_000).map(|_| rng.poisson(400.0) as f64).sum();
        let mean = total / 2_000.0;
        assert!((390.0..410.0).contains(&mean), "large mean {mean}");
    }

    #[test]
    fn log_normal_median_is_respected() {
        let mut rng = SimRng::new(17);
        let mut samples: Vec<f64> = (0..10_001).map(|_| rng.log_normal(10.0, 1.0)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((7.0..14.0).contains(&median), "median {median}");
        assert!(samples.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn weighted_pick_follows_weights() {
        let mut rng = SimRng::new(19);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
        assert!(rng.pick_weighted(&[]).is_none());
        assert!(rng.pick_weighted(&[0.0, 0.0]).is_none());
        assert!(rng.pick_weighted(&[f64::NAN, 1.0]).is_some());
    }

    #[test]
    fn pick_and_shuffle() {
        let mut rng = SimRng::new(23);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
        let mut shuffled = items;
        rng.shuffle(&mut shuffled);
        let mut sorted = shuffled;
        sorted.sort();
        assert_eq!(sorted, items);
    }
}
