//! Discrete-event scheduler.
//!
//! The workload driver schedules future actions (a user posting, a labeler
//! reacting after its modelled delay, a crawler's next weekly snapshot) on a
//! priority queue keyed by simulated time. Ties are broken by insertion
//! order, so runs are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds since the Unix epoch.
pub type SimTime = i64;

#[derive(Debug)]
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    processed: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            processed: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue::default()
    }

    /// Schedule a payload at an absolute simulated time.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// The time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the next event (earliest time, then earliest insertion).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let s = self.heap.pop()?;
        self.processed += 1;
        Some((s.time, s.payload))
    }

    /// Pop every event scheduled at or before `time`, in order.
    pub fn pop_until(&mut self, time: SimTime) -> Vec<(SimTime, T)> {
        let mut out = Vec::new();
        while matches!(self.peek_time(), Some(t) if t <= time) {
            out.push(self.pop().expect("peeked"));
        }
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_stable_ties() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a1");
        q.schedule(10, "a2");
        q.schedule(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a1"), (10, "a2"), (20, "b"), (30, "c")]);
        assert_eq!(q.processed(), 4);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut q = EventQueue::new();
        for t in [5, 1, 9, 3, 7] {
            q.schedule(t, t);
        }
        let batch = q.pop_until(5);
        assert_eq!(
            batch.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(7));
        assert!(q.pop_until(0).is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule(5, 2);
        q.schedule(15, 3);
        assert_eq!(q.pop(), Some((5, 2)));
        q.schedule(1, 4); // scheduling "in the past" is allowed; pops first
        assert_eq!(q.pop(), Some((1, 4)));
        assert_eq!(q.pop(), Some((15, 3)));
        assert_eq!(q.pop(), None);
    }
}
