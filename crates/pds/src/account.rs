//! Accounts and (non-public) user preferences.
//!
//! A PDS stores, next to each hosted repository, the account's private
//! settings. The study deliberately does not crawl these (§6: "the user
//! preferences are not publicly visible and we make no attempt to reveal
//! them"), but the AppView needs them to apply moderation, so the simulation
//! models them faithfully and simply never exports them through sync APIs.

use bsky_atproto::{Datetime, Did, Handle};
use std::collections::BTreeMap;

/// How a client should react to a label (§2, "User Preferences").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabelAction {
    /// Show the content untouched.
    Ignore,
    /// Show the content behind a warning.
    Warn,
    /// Hide the content entirely.
    Hide,
}

/// Per-user moderation preferences.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModerationPreferences {
    /// Labelers the user subscribes to, beyond the mandatory Bluesky one.
    pub subscribed_labelers: Vec<Did>,
    /// Reaction overrides per label value.
    pub label_actions: BTreeMap<String, LabelAction>,
    /// Whether adult content is enabled (age-gated labels).
    pub adult_content_enabled: bool,
}

impl ModerationPreferences {
    /// The action for a label value, falling back to `Warn` for unknown
    /// values and `Hide` for reserved values.
    pub fn action_for(&self, value: &str) -> LabelAction {
        if let Some(action) = self.label_actions.get(value) {
            return *action;
        }
        if bsky_atproto::label::is_reserved_value(value) {
            LabelAction::Hide
        } else {
            LabelAction::Warn
        }
    }

    /// Subscribe to a labeler (idempotent).
    pub fn subscribe(&mut self, labeler: Did) {
        if !self.subscribed_labelers.contains(&labeler) {
            self.subscribed_labelers.push(labeler);
        }
    }
}

/// Account status on its PDS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountStatus {
    /// Active account.
    Active,
    /// Deactivated (kept but not serving).
    Deactivated,
    /// Deleted (tombstoned network-wide).
    Deleted,
}

/// An account hosted on a PDS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Account {
    /// The account's immutable DID.
    pub did: Did,
    /// The current handle.
    pub handle: Handle,
    /// When the account was created.
    pub created_at: Datetime,
    /// Account status.
    pub status: AccountStatus,
    /// Private moderation preferences.
    pub preferences: ModerationPreferences,
}

impl Account {
    /// Create an active account.
    pub fn new(did: Did, handle: Handle, created_at: Datetime) -> Account {
        Account {
            did,
            handle,
            created_at,
            status: AccountStatus::Active,
            preferences: ModerationPreferences::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_defaults() {
        let prefs = ModerationPreferences::default();
        assert_eq!(prefs.action_for("porn"), LabelAction::Warn);
        assert_eq!(prefs.action_for("!takedown"), LabelAction::Hide);
        assert!(!prefs.adult_content_enabled);
    }

    #[test]
    fn preference_overrides() {
        let mut prefs = ModerationPreferences::default();
        prefs
            .label_actions
            .insert("spoiler".into(), LabelAction::Hide);
        prefs
            .label_actions
            .insert("porn".into(), LabelAction::Ignore);
        assert_eq!(prefs.action_for("spoiler"), LabelAction::Hide);
        assert_eq!(prefs.action_for("porn"), LabelAction::Ignore);
        assert_eq!(prefs.action_for("other"), LabelAction::Warn);
    }

    #[test]
    fn subscription_is_idempotent() {
        let mut prefs = ModerationPreferences::default();
        let labeler = Did::plc_from_seed(b"labeler");
        prefs.subscribe(labeler.clone());
        prefs.subscribe(labeler.clone());
        assert_eq!(prefs.subscribed_labelers, vec![labeler]);
    }

    #[test]
    fn account_construction() {
        let account = Account::new(
            Did::plc_from_seed(b"alice"),
            Handle::parse("alice.bsky.social").unwrap(),
            Datetime::from_ymd(2023, 5, 1).unwrap(),
        );
        assert_eq!(account.status, AccountStatus::Active);
        assert!(account.preferences.subscribed_labelers.is_empty());
    }
}
