//! The Personal Data Server.
//!
//! A PDS hosts the repositories of the accounts registered with it and
//! exposes the `com.atproto.sync.*` endpoints the Relay crawls: `listRepos`
//! (paginated DID + latest revision), `getRepo` (CAR export, with a
//! `since=rev` delta variant serving only the blocks created after a known
//! revision) and an event outbox that stands in for `subscribeRepos` at the
//! PDS level (§2, §3).

use crate::account::{Account, AccountStatus};
use bsky_atproto::blockstore::{StoreConfig, StoreStats};
use bsky_atproto::error::{AtError, Result};
use bsky_atproto::record::Record;
use bsky_atproto::repo::{CommitResult, CompactionStats, DeltaScope, Repository, Write};
use bsky_atproto::{Datetime, Did, Handle, Nsid, Tid};
use std::collections::BTreeMap;

/// Who operates a PDS (§2: Bluesky PBC runs the defaults, self-hosting is
/// possible since federation opened).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PdsOperator {
    /// One of the default `*.host.bsky.network` servers run by Bluesky PBC.
    BlueskyPbc,
    /// A community / self-hosted server.
    SelfHosted,
}

/// An event produced by a PDS, to be picked up by the Relay crawler.
#[derive(Debug, Clone, PartialEq)]
pub struct PdsEvent {
    /// When the PDS registered the event.
    pub at: Datetime,
    /// The account concerned.
    pub did: Did,
    /// What happened.
    pub detail: PdsEventDetail,
}

/// Event payloads a PDS can emit.
#[derive(Debug, Clone, PartialEq)]
pub enum PdsEventDetail {
    /// A repository commit (new records, updates, deletions).
    Commit(CommitResult),
    /// The account's handle changed.
    HandleChange(Handle),
    /// The account's DID document changed (PDS migration, key rotation, ...).
    IdentityUpdate,
    /// The account was deleted.
    AccountDelete,
}

/// A Personal Data Server instance.
#[derive(Debug, Clone)]
pub struct Pds {
    hostname: String,
    operator: PdsOperator,
    accounts: BTreeMap<String, Account>,
    repos: BTreeMap<String, Repository>,
    outbox: Vec<PdsEvent>,
    sync_requests: u64,
    /// Block-store backend every hosted repository is created over.
    store_config: StoreConfig,
}

impl Pds {
    /// Create a PDS with a hostname like `pds001.host.bsky.network`, backed
    /// by the default in-memory block store.
    pub fn new(hostname: impl Into<String>, operator: PdsOperator) -> Pds {
        Pds::with_store(hostname, operator, StoreConfig::default())
    }

    /// Create a PDS whose hosted repositories use an explicit block-store
    /// backend (e.g. the paged disk-spill store).
    pub fn with_store(
        hostname: impl Into<String>,
        operator: PdsOperator,
        store_config: StoreConfig,
    ) -> Pds {
        Pds {
            hostname: hostname.into(),
            operator,
            accounts: BTreeMap::new(),
            repos: BTreeMap::new(),
            outbox: Vec::new(),
            sync_requests: 0,
            store_config,
        }
    }

    /// The PDS hostname.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The service endpoint URL placed in DID documents.
    pub fn endpoint(&self) -> String {
        format!("https://{}", self.hostname)
    }

    /// Who operates this PDS.
    pub fn operator(&self) -> PdsOperator {
        self.operator
    }

    /// Number of hosted accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Create an account and its empty repository.
    pub fn create_account(&mut self, did: Did, handle: Handle, at: Datetime) -> Result<()> {
        let key = did.to_string();
        if self.accounts.contains_key(&key) {
            return Err(AtError::RepoError(format!("{key} already hosted here")));
        }
        self.accounts
            .insert(key.clone(), Account::new(did.clone(), handle, at));
        self.repos.insert(
            key.clone(),
            Repository::with_store(
                did.clone(),
                self.hostname.as_bytes(),
                self.store_config.build(),
            ),
        );
        self.outbox.push(PdsEvent {
            at,
            did,
            detail: PdsEventDetail::IdentityUpdate,
        });
        Ok(())
    }

    /// Access an account.
    pub fn account(&self, did: &Did) -> Option<&Account> {
        self.accounts.get(&did.to_string())
    }

    /// Mutable access to an account (e.g. to edit preferences).
    pub fn account_mut(&mut self, did: &Did) -> Option<&mut Account> {
        self.accounts.get_mut(&did.to_string())
    }

    /// Access a hosted repository.
    pub fn repo(&self, did: &Did) -> Option<&Repository> {
        self.repos.get(&did.to_string())
    }

    /// Whether the given DID is hosted here.
    pub fn hosts(&self, did: &Did) -> bool {
        self.repos.contains_key(&did.to_string())
    }

    /// Apply a batch of writes to a hosted repository, emitting a commit
    /// event for the Relay.
    pub fn apply_writes(
        &mut self,
        did: &Did,
        writes: &[Write],
        at: Datetime,
    ) -> Result<CommitResult> {
        let key = did.to_string();
        match self.accounts.get(&key) {
            Some(a) if a.status == AccountStatus::Active => {}
            Some(_) => return Err(AtError::RepoError(format!("{key} is not active"))),
            None => return Err(AtError::RepoError(format!("{key} not hosted here"))),
        }
        let repo = self
            .repos
            .get_mut(&key)
            .ok_or_else(|| AtError::RepoError(format!("{key} has no repo")))?;
        let result = repo.apply_writes(writes, at)?;
        self.outbox.push(PdsEvent {
            at,
            did: did.clone(),
            detail: PdsEventDetail::Commit(result.clone()),
        });
        Ok(result)
    }

    /// Convenience: create a single record keyed by a fresh TID.
    pub fn create_record(
        &mut self,
        did: &Did,
        collection: Nsid,
        record: Record,
        at: Datetime,
    ) -> Result<(String, CommitResult)> {
        let key = did.to_string();
        match self.accounts.get(&key) {
            Some(a) if a.status == AccountStatus::Active => {}
            _ => return Err(AtError::RepoError(format!("{key} is not active"))),
        }
        let repo = self
            .repos
            .get_mut(&key)
            .ok_or_else(|| AtError::RepoError(format!("{key} not hosted here")))?;
        let (rkey, result) = repo.create_record(collection, record, at)?;
        self.outbox.push(PdsEvent {
            at,
            did: did.clone(),
            detail: PdsEventDetail::Commit(result.clone()),
        });
        Ok((rkey, result))
    }

    /// Change an account's handle, emitting a handle-change event.
    pub fn change_handle(&mut self, did: &Did, new_handle: Handle, at: Datetime) -> Result<()> {
        let account = self
            .accounts
            .get_mut(&did.to_string())
            .ok_or_else(|| AtError::RepoError(format!("{did} not hosted here")))?;
        account.handle = new_handle.clone();
        self.outbox.push(PdsEvent {
            at,
            did: did.clone(),
            detail: PdsEventDetail::HandleChange(new_handle),
        });
        Ok(())
    }

    /// Delete an account, emitting a tombstone event. The repository is
    /// dropped from this PDS.
    pub fn delete_account(&mut self, did: &Did, at: Datetime) -> Result<()> {
        let key = did.to_string();
        let account = self
            .accounts
            .get_mut(&key)
            .ok_or_else(|| AtError::RepoError(format!("{key} not hosted here")))?;
        account.status = AccountStatus::Deleted;
        self.repos.remove(&key);
        self.outbox.push(PdsEvent {
            at,
            did: did.clone(),
            detail: PdsEventDetail::AccountDelete,
        });
        Ok(())
    }

    /// Remove a repository as part of a migration to another PDS, returning
    /// it so the destination can import it. The account entry stays as a
    /// deactivated stub.
    pub fn migrate_out(&mut self, did: &Did, at: Datetime) -> Result<Repository> {
        let key = did.to_string();
        let repo = self
            .repos
            .remove(&key)
            .ok_or_else(|| AtError::RepoError(format!("{key} not hosted here")))?;
        if let Some(account) = self.accounts.get_mut(&key) {
            account.status = AccountStatus::Deactivated;
        }
        self.outbox.push(PdsEvent {
            at,
            did: did.clone(),
            detail: PdsEventDetail::IdentityUpdate,
        });
        Ok(repo)
    }

    /// Import a repository migrated from another PDS.
    pub fn migrate_in(&mut self, repo: Repository, handle: Handle, at: Datetime) -> Result<()> {
        let did = repo.did().clone();
        let key = did.to_string();
        if self.repos.contains_key(&key) {
            return Err(AtError::RepoError(format!("{key} already hosted here")));
        }
        self.repos.insert(key.clone(), repo);
        self.accounts
            .entry(key)
            .and_modify(|a| a.status = AccountStatus::Active)
            .or_insert_with(|| Account::new(did.clone(), handle.clone(), at));
        self.outbox.push(PdsEvent {
            at,
            did,
            detail: PdsEventDetail::IdentityUpdate,
        });
        Ok(())
    }

    // ----- com.atproto.sync.* -----

    /// `sync.listRepos`: page of `(did, latest revision)` pairs in DID order.
    pub fn list_repos(
        &mut self,
        cursor: Option<&str>,
        limit: usize,
    ) -> (Vec<(Did, Option<String>)>, Option<String>) {
        self.sync_requests += 1;
        let limit = limit.max(1);
        let iter: Box<dyn Iterator<Item = (&String, &Repository)>> = match cursor {
            Some(c) => Box::new(self.repos.range::<String, _>((
                std::ops::Bound::Excluded(c.to_string()),
                std::ops::Bound::Unbounded,
            ))),
            None => Box::new(self.repos.iter()),
        };
        let page: Vec<(Did, Option<String>)> = iter
            .take(limit)
            .map(|(_, r)| (r.did().clone(), r.rev().map(|t| t.to_string())))
            .collect();
        let next = if page.len() == limit {
            page.last().map(|(did, _)| did.to_string())
        } else {
            None
        };
        (page, next)
    }

    /// `sync.getRepo`: CAR export of a hosted repository.
    pub fn get_repo(&mut self, did: &Did) -> Result<Vec<u8>> {
        self.sync_requests += 1;
        self.repos
            .get(&did.to_string())
            .map(Repository::export_car)
            .ok_or_else(|| AtError::RepoError(format!("{did} not hosted here")))
    }

    /// `sync.getRepo` with `since`: a delta CAR carrying only the blocks
    /// created after the given revision, at the requested [`DeltaScope`]
    /// (full block fidelity for mirrors, records-only for dataset
    /// consumers). Errors when the DID is not hosted here or the revision
    /// is unknown (rewound / replaced repo), in which case the caller must
    /// fall back to a full [`Pds::get_repo`].
    pub fn get_repo_since(&mut self, did: &Did, since: &Tid, scope: DeltaScope) -> Result<Vec<u8>> {
        self.sync_requests += 1;
        self.repos
            .get(&did.to_string())
            .ok_or_else(|| AtError::RepoError(format!("{did} not hosted here")))?
            .export_car_since(since, scope)
    }

    /// Events recorded at or after the given outbox index (the Relay's
    /// per-PDS crawl cursor). Returns the slice and the next cursor.
    pub fn events_since(&self, cursor: usize) -> (&[PdsEvent], usize) {
        let start = cursor.min(self.outbox.len());
        (&self.outbox[start..], self.outbox.len())
    }

    /// Number of sync API requests served (crawler-load accounting).
    pub fn sync_requests(&self) -> u64 {
        self.sync_requests
    }

    /// Run the compaction pass over every hosted repository: blocks that
    /// aged out of the delta-serving window ending at `cutoff` are
    /// reclaimed (see [`Repository::compact_before`]).
    pub fn compact_repos(&mut self, cutoff: &Tid) -> CompactionStats {
        let mut stats = CompactionStats::default();
        for repo in self.repos.values_mut() {
            stats.absorb(&repo.compact_before(cutoff));
        }
        stats
    }

    /// Aggregate block-store statistics over every hosted repository.
    pub fn store_stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for repo in self.repos.values() {
            stats.absorb(&repo.store_stats());
        }
        stats
    }

    /// All hosted DIDs.
    pub fn hosted_dids(&self) -> Vec<Did> {
        self.repos.values().map(|r| r.did().clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::PostRecord;

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 1, 8, 0, 0).unwrap()
    }

    fn post(text: &str) -> Record {
        Record::Post(PostRecord::simple(text, "en", now()))
    }

    fn pds_with_alice() -> (Pds, Did) {
        let mut pds = Pds::new("pds001.host.bsky.network", PdsOperator::BlueskyPbc);
        let did = Did::plc_from_seed(b"alice");
        pds.create_account(
            did.clone(),
            Handle::parse("alice.bsky.social").unwrap(),
            now(),
        )
        .unwrap();
        (pds, did)
    }

    #[test]
    fn account_lifecycle_and_events() {
        let (mut pds, did) = pds_with_alice();
        assert_eq!(pds.account_count(), 1);
        assert!(pds.hosts(&did));
        assert_eq!(pds.endpoint(), "https://pds001.host.bsky.network");

        let (_, result) = pds
            .create_record(
                &did,
                Nsid::parse(known::POST).unwrap(),
                post("hello"),
                now(),
            )
            .unwrap();
        assert_eq!(result.ops.len(), 1);

        pds.change_handle(&did, Handle::parse("alice.example.com").unwrap(), now())
            .unwrap();
        assert_eq!(
            pds.account(&did).unwrap().handle.as_str(),
            "alice.example.com"
        );

        let (events, next) = pds.events_since(0);
        // identity (create), commit, handle change
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0].detail, PdsEventDetail::IdentityUpdate));
        assert!(matches!(events[1].detail, PdsEventDetail::Commit(_)));
        assert!(matches!(events[2].detail, PdsEventDetail::HandleChange(_)));
        // Cursor semantics.
        let (later, _) = pds.events_since(next);
        assert!(later.is_empty());

        pds.delete_account(&did, now()).unwrap();
        assert!(!pds.hosts(&did));
        assert!(pds
            .create_record(&did, Nsid::parse(known::POST).unwrap(), post("x"), now())
            .is_err());
        let (events, _) = pds.events_since(next);
        assert!(matches!(events[0].detail, PdsEventDetail::AccountDelete));
    }

    #[test]
    fn duplicate_account_rejected() {
        let (mut pds, did) = pds_with_alice();
        assert!(pds
            .create_account(did, Handle::parse("alice2.bsky.social").unwrap(), now())
            .is_err());
    }

    #[test]
    fn writes_only_for_hosted_active_accounts() {
        let (mut pds, _) = pds_with_alice();
        let stranger = Did::plc_from_seed(b"stranger");
        assert!(pds
            .apply_writes(
                &stranger,
                &[Write::Create {
                    collection: Nsid::parse(known::POST).unwrap(),
                    rkey: "abc".into(),
                    record: post("x"),
                }],
                now()
            )
            .is_err());
        assert!(pds.get_repo(&stranger).is_err());
    }

    #[test]
    fn list_repos_pagination() {
        let mut pds = Pds::new("pds002.host.bsky.network", PdsOperator::BlueskyPbc);
        for i in 0..25 {
            let did = Did::plc_from_seed(format!("user{i}").as_bytes());
            pds.create_account(
                did.clone(),
                Handle::parse(&format!("user{i}.bsky.social")).unwrap(),
                now(),
            )
            .unwrap();
            pds.create_record(&did, Nsid::parse(known::POST).unwrap(), post("hi"), now())
                .unwrap();
        }
        let mut seen = 0;
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = pds.list_repos(cursor.as_deref(), 10);
            seen += page.len();
            assert!(page.iter().all(|(_, rev)| rev.is_some()));
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(seen, 25);
        assert!(pds.sync_requests() >= 3);
    }

    #[test]
    fn car_export_via_sync() {
        let (mut pds, did) = pds_with_alice();
        pds.create_record(
            &did,
            Nsid::parse(known::POST).unwrap(),
            post("hello"),
            now(),
        )
        .unwrap();
        let car = pds.get_repo(&did).unwrap();
        let (roots, blocks) = Repository::parse_car(&car).unwrap();
        assert_eq!(roots.len(), 1);
        assert!(!blocks.is_empty());
    }

    #[test]
    fn delta_export_via_sync() {
        let (mut pds, did) = pds_with_alice();
        pds.create_record(&did, Nsid::parse(known::POST).unwrap(), post("v1"), now())
            .unwrap();
        let since = pds.repo(&did).unwrap().rev().unwrap();
        let base = pds.get_repo(&did).unwrap();
        pds.create_record(&did, Nsid::parse(known::POST).unwrap(), post("v2"), now())
            .unwrap();
        let delta = pds.get_repo_since(&did, &since, DeltaScope::Full).unwrap();
        let records_delta = pds
            .get_repo_since(&did, &since, DeltaScope::Records)
            .unwrap();
        assert!(records_delta.len() < delta.len());
        assert!(delta.len() < pds.get_repo(&did).unwrap().len());
        let merged = Repository::apply_delta(&base, &delta).unwrap();
        let (roots, _) = Repository::parse_car(&merged).unwrap();
        assert_eq!(roots, vec![pds.repo(&did).unwrap().head().unwrap().cid()]);
        // Unknown revisions and unknown DIDs error (full-fetch fallback).
        assert!(pds
            .get_repo_since(
                &did,
                &bsky_atproto::Tid::from_micros(7, 7),
                DeltaScope::Full
            )
            .is_err());
        assert!(pds
            .get_repo_since(&Did::plc_from_seed(b"stranger"), &since, DeltaScope::Full)
            .is_err());
        assert!(pds.sync_requests() >= 4);
    }

    #[test]
    fn migration_between_pdses() {
        let (mut origin, did) = pds_with_alice();
        origin
            .create_record(
                &did,
                Nsid::parse(known::POST).unwrap(),
                post("pre-move"),
                now(),
            )
            .unwrap();
        let mut destination = Pds::new("self-hosted.example", PdsOperator::SelfHosted);

        let repo = origin.migrate_out(&did, now()).unwrap();
        destination
            .migrate_in(repo, Handle::parse("alice.example.com").unwrap(), now())
            .unwrap();

        assert!(!origin.hosts(&did));
        assert!(destination.hosts(&did));
        // Content survives the move.
        let posts = destination
            .repo(&did)
            .unwrap()
            .list_collection(&Nsid::parse(known::POST).unwrap());
        assert_eq!(posts.len(), 1);
        // Writes continue at the destination.
        destination
            .create_record(
                &did,
                Nsid::parse(known::POST).unwrap(),
                post("post-move"),
                now(),
            )
            .unwrap();
        assert_eq!(
            destination
                .repo(&did)
                .unwrap()
                .list_collection(&Nsid::parse(known::POST).unwrap())
                .len(),
            2
        );
        // Importing twice fails.
        let repo_again = Repository::new(did.clone(), b"x");
        assert!(destination
            .migrate_in(
                repo_again,
                Handle::parse("alice.example.com").unwrap(),
                now()
            )
            .is_err());
        // The origin cannot migrate out what it no longer has.
        assert!(origin.migrate_out(&did, now()).is_err());
    }
}
