//! # bsky-pds
//!
//! Personal Data Servers for the simulated Bluesky network (§2 of the paper).
//!
//! * [`account`] — hosted accounts and their private moderation preferences.
//! * [`server`] — a single PDS: repository hosting, the `com.atproto.sync.*`
//!   endpoints the Relay crawls, handle changes, deletions and migrations.
//! * [`fleet`] — the fleet of default Bluesky-operated PDSes plus self-hosted
//!   servers, with the DID → PDS routing table and account migration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod fleet;
pub mod server;

pub use account::{Account, AccountStatus, LabelAction, ModerationPreferences};
pub use fleet::PdsFleet;
pub use server::{Pds, PdsEvent, PdsEventDetail, PdsOperator};
