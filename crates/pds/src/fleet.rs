//! The PDS fleet.
//!
//! Bluesky PBC operates the default PDSes (the `*.host.bsky.network`
//! "mushroom" servers users are sharded onto at signup); since federation
//! opened, anyone can run a self-hosted PDS and users can migrate onto it
//! while keeping their social graph (§2). The fleet tracks which PDS hosts
//! which account — the piece of state a Relay crawler walks.

use crate::server::{Pds, PdsOperator};
use bsky_atproto::blockstore::{StoreConfig, StoreStats};
use bsky_atproto::error::{AtError, Result};
use bsky_atproto::repo::CompactionStats;
use bsky_atproto::{Datetime, Did, Handle, Tid};
use std::collections::BTreeMap;

/// A collection of PDS instances plus the DID → PDS routing table.
#[derive(Debug, Clone, Default)]
pub struct PdsFleet {
    servers: BTreeMap<String, Pds>,
    routing: BTreeMap<String, String>,
}

impl PdsFleet {
    /// Create an empty fleet.
    pub fn new() -> PdsFleet {
        PdsFleet::default()
    }

    /// Create a fleet with `n` default Bluesky-operated PDSes over the
    /// default in-memory block store.
    pub fn with_default_servers(n: usize) -> PdsFleet {
        PdsFleet::with_default_servers_store(n, &StoreConfig::default())
    }

    /// Create a fleet with `n` default Bluesky-operated PDSes whose
    /// repositories use an explicit block-store backend.
    pub fn with_default_servers_store(n: usize, store: &StoreConfig) -> PdsFleet {
        let mut fleet = PdsFleet::new();
        for i in 0..n.max(1) {
            fleet.add_server(Pds::with_store(
                format!("pds{:03}.host.bsky.network", i + 1),
                PdsOperator::BlueskyPbc,
                store.clone(),
            ));
        }
        fleet
    }

    /// Add a server (default or self-hosted).
    pub fn add_server(&mut self, pds: Pds) {
        self.servers.insert(pds.hostname().to_string(), pds);
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Iterate servers (hostname order).
    pub fn servers(&self) -> impl Iterator<Item = &Pds> {
        self.servers.values()
    }

    /// Mutable iteration over servers.
    pub fn servers_mut(&mut self) -> impl Iterator<Item = &mut Pds> {
        self.servers.values_mut()
    }

    /// Access a server by hostname.
    pub fn server(&self, hostname: &str) -> Option<&Pds> {
        self.servers.get(hostname)
    }

    /// Mutable access to a server by hostname.
    pub fn server_mut(&mut self, hostname: &str) -> Option<&mut Pds> {
        self.servers.get_mut(hostname)
    }

    /// Hostnames of Bluesky-operated default servers.
    pub fn default_hostnames(&self) -> Vec<String> {
        self.servers
            .values()
            .filter(|p| p.operator() == PdsOperator::BlueskyPbc)
            .map(|p| p.hostname().to_string())
            .collect()
    }

    /// The hostname of the PDS hosting a DID.
    pub fn locate(&self, did: &Did) -> Option<&str> {
        self.routing.get(&did.to_string()).map(String::as_str)
    }

    /// The PDS hosting a DID.
    pub fn pds_for(&self, did: &Did) -> Option<&Pds> {
        self.locate(did).and_then(|h| self.servers.get(h))
    }

    /// Mutable access to the PDS hosting a DID.
    pub fn pds_for_mut(&mut self, did: &Did) -> Option<&mut Pds> {
        let host = self.routing.get(&did.to_string())?.clone();
        self.servers.get_mut(&host)
    }

    /// Create an account on a specific server.
    pub fn create_account_on(
        &mut self,
        hostname: &str,
        did: Did,
        handle: Handle,
        at: Datetime,
    ) -> Result<()> {
        let server = self
            .servers
            .get_mut(hostname)
            .ok_or_else(|| AtError::RepoError(format!("no PDS named {hostname}")))?;
        server.create_account(did.clone(), handle, at)?;
        self.routing.insert(did.to_string(), hostname.to_string());
        Ok(())
    }

    /// Migrate an account from its current PDS to another server, keeping all
    /// repository content. Returns the destination endpoint (the new value
    /// for the DID document).
    pub fn migrate_account(
        &mut self,
        did: &Did,
        destination: &str,
        new_handle: Handle,
        at: Datetime,
    ) -> Result<String> {
        let origin_host = self
            .locate(did)
            .ok_or_else(|| AtError::RepoError(format!("{did} not hosted anywhere")))?
            .to_string();
        if origin_host == destination {
            return Err(AtError::RepoError(
                "already hosted on the destination".into(),
            ));
        }
        if !self.servers.contains_key(destination) {
            return Err(AtError::RepoError(format!("no PDS named {destination}")));
        }
        let repo = self
            .servers
            .get_mut(&origin_host)
            .expect("origin exists")
            .migrate_out(did, at)?;
        let dest = self.servers.get_mut(destination).expect("checked above");
        dest.migrate_in(repo, new_handle, at)?;
        self.routing
            .insert(did.to_string(), destination.to_string());
        Ok(dest.endpoint())
    }

    /// Total number of hosted accounts across all servers.
    pub fn total_accounts(&self) -> usize {
        self.routing.len()
    }

    /// Run the repository compaction pass on every server (the study
    /// pipeline calls this on its weekly snapshot cadence).
    pub fn compact_all(&mut self, cutoff: &Tid) -> CompactionStats {
        let mut stats = CompactionStats::default();
        for server in self.servers.values_mut() {
            stats.absorb(&server.compact_repos(cutoff));
        }
        stats
    }

    /// Aggregate block-store statistics across every server's repositories.
    pub fn store_stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for server in self.servers.values() {
            stats.absorb(&server.store_stats());
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{PostRecord, Record};
    use bsky_atproto::Nsid;

    fn now() -> Datetime {
        Datetime::from_ymd(2024, 2, 10).unwrap()
    }

    #[test]
    fn default_fleet_layout() {
        let fleet = PdsFleet::with_default_servers(10);
        assert_eq!(fleet.server_count(), 10);
        assert_eq!(fleet.default_hostnames().len(), 10);
        assert!(fleet.server("pds001.host.bsky.network").is_some());
        assert!(fleet.server("missing").is_none());
        assert_eq!(fleet.total_accounts(), 0);
    }

    #[test]
    fn account_creation_and_routing() {
        let mut fleet = PdsFleet::with_default_servers(2);
        let did = Did::plc_from_seed(b"alice");
        fleet
            .create_account_on(
                "pds002.host.bsky.network",
                did.clone(),
                Handle::parse("alice.bsky.social").unwrap(),
                now(),
            )
            .unwrap();
        assert_eq!(fleet.locate(&did), Some("pds002.host.bsky.network"));
        assert!(fleet.pds_for(&did).unwrap().hosts(&did));
        assert_eq!(fleet.total_accounts(), 1);
        assert!(fleet
            .create_account_on(
                "missing",
                Did::plc_from_seed(b"bob"),
                Handle::parse("b.bsky.social").unwrap(),
                now()
            )
            .is_err());
    }

    #[test]
    fn migration_moves_routing_and_content() {
        let mut fleet = PdsFleet::with_default_servers(1);
        fleet.add_server(Pds::new("self.example", PdsOperator::SelfHosted));
        let did = Did::plc_from_seed(b"carol");
        fleet
            .create_account_on(
                "pds001.host.bsky.network",
                did.clone(),
                Handle::parse("carol.bsky.social").unwrap(),
                now(),
            )
            .unwrap();
        fleet
            .pds_for_mut(&did)
            .unwrap()
            .create_record(
                &did,
                Nsid::parse(known::POST).unwrap(),
                Record::Post(PostRecord::simple("hello", "en", now())),
                now(),
            )
            .unwrap();

        let endpoint = fleet
            .migrate_account(
                &did,
                "self.example",
                Handle::parse("carol.example.com").unwrap(),
                now(),
            )
            .unwrap();
        assert_eq!(endpoint, "https://self.example");
        assert_eq!(fleet.locate(&did), Some("self.example"));
        let posts = fleet
            .pds_for(&did)
            .unwrap()
            .repo(&did)
            .unwrap()
            .list_collection(&Nsid::parse(known::POST).unwrap());
        assert_eq!(posts.len(), 1);
        // Errors: unknown destination, migrating to the same host, unknown DID.
        assert!(fleet
            .migrate_account(
                &did,
                "nowhere.example",
                Handle::parse("c.example.com").unwrap(),
                now()
            )
            .is_err());
        assert!(fleet
            .migrate_account(
                &did,
                "self.example",
                Handle::parse("c.example.com").unwrap(),
                now()
            )
            .is_err());
        assert!(fleet
            .migrate_account(
                &Did::plc_from_seed(b"nobody"),
                "self.example",
                Handle::parse("n.example.com").unwrap(),
                now()
            )
            .is_err());
    }
}
