//! A minimal JSON value tree, serialiser and parser, replacing the external
//! `serde_json` dependency for the report's headline-number export.
//!
//! Only what the study tooling needs: object/array/number/string/bool/null,
//! pretty printing with stable key order (insertion order), convenient
//! indexing (`value["section"]["field"].as_u64()`), and [`Json::parse`] so
//! the bench-compare tool can read back `BENCH_streaming.json` exports.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any floating-point number (integral values print without a dot).
    Num(f64),
    /// An unsigned integer, preserved exactly (f64 would round above 2^53).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Builder-style key removal; absent keys and non-objects are left
    /// untouched (tests use this to shape stale/partial exports).
    pub fn without(mut self, key: &str) -> Json {
        if let Json::Obj(entries) = &mut self {
            entries.retain(|(k, _)| k != key);
        }
        self
    }

    /// Member lookup; returns `Json::Null` for missing keys / non-objects.
    pub fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            // `u64::MAX as f64` rounds up to 2^64, so the bound must be
            // exclusive or the saturating cast would fabricate u64::MAX.
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a JSON document. Strings support the escapes the serialiser
    /// emits (plus `\/`, `\b`, `\f` and `\uXXXX`); numbers parse as
    /// [`Json::UInt`] when they are non-negative integers without exponent
    /// (preserving values above 2^53 exactly) and as [`Json::Num`]
    /// otherwise. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Serialise with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&format!("{v}")),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push_str(&pad_inner);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by the
                        // serialiser; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?}"))
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        self.get(key)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_index_and_serialise() {
        let value = Json::object()
            .with("seed", 42u64)
            .with("share_pct", 99.25)
            .with("name", "repro")
            .with("missing", Json::Null)
            .with("flag", true)
            .with("rows", Json::Arr(vec![Json::object().with("count", 3u64)]));
        assert_eq!(value["seed"].as_u64(), Some(42));
        assert_eq!(value["share_pct"].as_f64(), Some(99.25));
        assert_eq!(value["name"].as_str(), Some("repro"));
        assert_eq!(value["nope"], Json::Null);
        assert_eq!(value["nope"]["deeper"].as_u64(), None);
        let text = value.to_string_pretty();
        assert!(text.contains("\"seed\": 42"));
        assert!(text.contains("\"share_pct\": 99.25"));
        assert!(text.contains("\"flag\": true"));
        assert!(text.contains("\"count\": 3"));
    }

    #[test]
    fn large_u64_values_are_exact() {
        let value = Json::object()
            .with("seed", u64::MAX)
            .with("above_2_53", (1u64 << 53) + 1);
        assert_eq!(value["seed"].as_u64(), Some(u64::MAX));
        let text = value.to_string_pretty();
        assert!(text.contains("18446744073709551615"));
        assert!(text.contains("9007199254740993"));
    }

    #[test]
    fn strings_are_escaped() {
        let value = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(value.to_string_pretty(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parse_roundtrips_serialised_documents() {
        let value = Json::object()
            .with("seed", 42u64)
            .with("share_pct", 99.25)
            .with("negative", -3.5)
            .with("big", u64::MAX)
            .with("name", "repro \"quoted\"\nline")
            .with("missing", Json::Null)
            .with("flag", true)
            .with(
                "rows",
                Json::Arr(vec![Json::object().with("count", 3u64), Json::Arr(vec![])]),
            );
        let text = value.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, value);
        // And a compact document parses too.
        let compact = Json::parse("{\"a\":[1,2.5,null,false],\"b\":{}}").unwrap();
        assert_eq!(compact["a"].as_array().map(|a| a.len()), Some(4));
        assert_eq!(compact["b"], Json::Obj(vec![]));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"k\" 1}").is_err());
        assert!(Json::parse("1 trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut value = Json::object().with("k", 1u64);
        value.set("k", 2u64);
        assert_eq!(value["k"].as_u64(), Some(2));
    }
}
