//! A minimal JSON value tree and serialiser, replacing the external
//! `serde_json` dependency for the report's headline-number export.
//!
//! Only what the study report needs: object/array/number/string/bool/null,
//! pretty printing with stable key order (insertion order), and convenient
//! indexing (`value["section"]["field"].as_u64()`).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any floating-point number (integral values print without a dot).
    Num(f64),
    /// An unsigned integer, preserved exactly (f64 would round above 2^53).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Member lookup; returns `Json::Null` for missing keys / non-objects.
    pub fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            // `u64::MAX as f64` rounds up to 2^64, so the bound must be
            // exclusive or the saturating cast would fabricate u64::MAX.
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialise with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&format!("{v}")),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push_str(&pad_inner);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        self.get(key)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_index_and_serialise() {
        let value = Json::object()
            .with("seed", 42u64)
            .with("share_pct", 99.25)
            .with("name", "repro")
            .with("missing", Json::Null)
            .with("flag", true)
            .with("rows", Json::Arr(vec![Json::object().with("count", 3u64)]));
        assert_eq!(value["seed"].as_u64(), Some(42));
        assert_eq!(value["share_pct"].as_f64(), Some(99.25));
        assert_eq!(value["name"].as_str(), Some("repro"));
        assert_eq!(value["nope"], Json::Null);
        assert_eq!(value["nope"]["deeper"].as_u64(), None);
        let text = value.to_string_pretty();
        assert!(text.contains("\"seed\": 42"));
        assert!(text.contains("\"share_pct\": 99.25"));
        assert!(text.contains("\"flag\": true"));
        assert!(text.contains("\"count\": 3"));
    }

    #[test]
    fn large_u64_values_are_exact() {
        let value = Json::object()
            .with("seed", u64::MAX)
            .with("above_2_53", (1u64 << 53) + 1);
        assert_eq!(value["seed"].as_u64(), Some(u64::MAX));
        let text = value.to_string_pretty();
        assert!(text.contains("18446744073709551615"));
        assert!(text.contains("9007199254740993"));
    }

    #[test]
    fn strings_are_escaped() {
        let value = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(value.to_string_pretty(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut value = Json::object().with("k", 1u64);
        value.set("k", 2u64);
        assert_eq!(value["k"].as_u64(), Some(2));
    }
}
