//! The sharded study engine: partition the population by DID hash, run one
//! producer + analyzer set per shard on worker threads, and merge the
//! per-shard analyzer states into one report.
//!
//! The correctness contract is exact: because every stochastic decision in
//! the [`World`] derives from `(seed, DID, day)` and every analyzer
//! implements the merge law (see [`crate::pipeline`]), the merged report is
//! **byte-identical** to the serial run's for any shard count — pinned by
//! the golden test in `tests/pipeline_equivalence.rs`. Shards are merged in
//! shard-index order on the coordinating thread, so thread scheduling never
//! influences the result; `jobs` only bounds how many shards are in flight
//! at once.

use crate::analysis::{
    ActivityAnalyzer, FirehoseVolumeAnalyzer, IdentityAnalyzer, ModerationAnalyzer,
    RecommendationAnalyzer, Section4Analyzer, Table1Analyzer,
};
use crate::datasets::{Collector, SnapshotMode};
use crate::observatory::ObservatoryAnalyzer;
use crate::pipeline::{Analyzer, Observation, ObservationSink, StreamSummary, StudyCtx};
use bsky_atproto::blockstore::StoreConfig;
use bsky_atproto::framing::FramingPolicy;
use bsky_simnet::faults::FaultPlan;
use bsky_workload::{PopulationPlan, ScenarioConfig, ShardSpec, World};
use std::sync::{Arc, Mutex};

/// The report's eight analyzers as one concrete, mergeable set.
#[derive(Debug, Default)]
pub struct StudyAnalyzers {
    /// Table 1.
    pub table1: Table1Analyzer,
    /// Figures 1–2, §4 totals.
    pub activity: ActivityAnalyzer,
    /// §4 popularity.
    pub section4: Section4Analyzer,
    /// §5 identity.
    pub identity: IdentityAnalyzer,
    /// §6 moderation.
    pub moderation: ModerationAnalyzer,
    /// §7 recommendation.
    pub recommendation: RecommendationAnalyzer,
    /// §9 firehose volume.
    pub volume: FirehoseVolumeAnalyzer,
    /// §10 wire-traffic observatory.
    pub observatory: ObservatoryAnalyzer,
}

impl StudyAnalyzers {
    /// A fresh set.
    pub fn new() -> StudyAnalyzers {
        StudyAnalyzers::default()
    }

    /// Merge another set's state into this one (memberwise).
    pub fn merge(&mut self, other: StudyAnalyzers) {
        self.table1.merge(other.table1);
        self.activity.merge(other.activity);
        self.section4.merge(other.section4);
        self.identity.merge(other.identity);
        self.moderation.merge(other.moderation);
        self.recommendation.merge(other.recommendation);
        self.volume.merge(other.volume);
        self.observatory.merge(other.observatory);
    }
}

impl ObservationSink for StudyAnalyzers {
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        self.table1.observe(obs, ctx);
        self.activity.observe(obs, ctx);
        self.section4.observe(obs, ctx);
        self.identity.observe(obs, ctx);
        self.moderation.observe(obs, ctx);
        self.recommendation.observe(obs, ctx);
        self.volume.observe(obs, ctx);
        self.observatory.observe(obs, ctx);
    }
}

/// Result of one shard's collection pass.
struct ShardResult {
    analyzers: StudyAnalyzers,
    summary: StreamSummary,
    /// Only shard 0 returns its world (the finish context).
    world: Option<World>,
}

/// Summary of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedSummary {
    /// Number of population shards.
    pub shards: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Per-shard producer summaries, in shard order.
    pub per_shard: Vec<StreamSummary>,
    /// The merged summary (counters added, peaks maxed).
    pub merged: StreamSummary,
}

impl ShardedSummary {
    /// Render a multi-line summary for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "sharded run: {} shards on {} worker thread(s)\n",
            self.shards, self.jobs
        );
        for (index, summary) in self.per_shard.iter().enumerate() {
            out.push_str(&format!("  shard {index}: {}\n", summary.render()));
        }
        out.push_str(&format!("  merged:  {}\n", self.merged.render()));
        out
    }
}

/// Run one shard: build its world, stream it through a fresh analyzer set,
/// and hand back the state.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    config: ScenarioConfig,
    plan: Arc<PopulationPlan>,
    index: usize,
    shards: usize,
    mode: SnapshotMode,
    store: &StoreConfig,
    appview_shards: usize,
    framing: FramingPolicy,
    faults: Arc<FaultPlan>,
) -> ShardResult {
    let mut world = World::with_plan_store_appview_faults(
        config,
        plan,
        ShardSpec {
            index,
            count: shards,
        },
        store.clone(),
        appview_shards,
        faults.clone(),
    );
    let mut analyzers = StudyAnalyzers::new();
    let summary = Collector::new()
        .snapshot_mode(mode)
        .store(store.clone())
        .framing(framing)
        .faults(faults)
        .stream(&mut world, &mut analyzers);
    ShardResult {
        analyzers,
        summary,
        world: (index == 0).then_some(world),
    }
}

/// Run the full collection over `shards` population shards with at most
/// `jobs` worker threads, merge the per-shard analyzer states in shard
/// order, and return the merged set plus the finish-context world (shard 0)
/// and the run summary.
///
/// Panics if `jobs` is zero or exceeds `shards` (the CLI validates first).
pub fn collect_sharded(
    config: ScenarioConfig,
    shards: usize,
    jobs: usize,
) -> (StudyAnalyzers, World, ShardedSummary) {
    collect_sharded_with(config, shards, jobs, SnapshotMode::default())
}

/// [`collect_sharded`] with an explicit repository [`SnapshotMode`]. The
/// mode changes only how much repository data each shard's producer fetches
/// — the emitted snapshots, and therefore the merged report, are identical.
pub fn collect_sharded_with(
    config: ScenarioConfig,
    shards: usize,
    jobs: usize,
    mode: SnapshotMode,
) -> (StudyAnalyzers, World, ShardedSummary) {
    collect_sharded_store(config, shards, jobs, mode, &StoreConfig::default())
}

/// [`collect_sharded_with`] with an explicit block-store backend for every
/// shard's world (repositories + relay mirror) and producer mirror. The
/// backend changes only *where* blocks reside — memory vs paged disk spill
/// — never a byte of the merged report.
pub fn collect_sharded_store(
    config: ScenarioConfig,
    shards: usize,
    jobs: usize,
    mode: SnapshotMode,
    store: &StoreConfig,
) -> (StudyAnalyzers, World, ShardedSummary) {
    collect_sharded_appview(config, shards, jobs, mode, store, 1)
}

/// [`collect_sharded_store`] with an explicit AppView entity-shard count
/// for every engine shard's world (repro `--appview-shards N`). Entity
/// sharding changes only where AppView state resides — queries, and
/// therefore the merged report, are byte-identical for any count.
pub fn collect_sharded_appview(
    config: ScenarioConfig,
    shards: usize,
    jobs: usize,
    mode: SnapshotMode,
    store: &StoreConfig,
    appview_shards: usize,
) -> (StudyAnalyzers, World, ShardedSummary) {
    collect_sharded_framed(
        config,
        shards,
        jobs,
        mode,
        store,
        appview_shards,
        FramingPolicy::default(),
    )
}

/// [`collect_sharded_appview`] with an explicit wire [`FramingPolicy`] for
/// every shard's producer (repro `--padding` / `--batch-window`). Framing
/// changes only the summary's wire accounting — the §10 observatory sweeps
/// every mitigation cell counterfactually from the raw captures, so the
/// merged report is byte-identical for any policy.
#[allow(clippy::too_many_arguments)]
pub fn collect_sharded_framed(
    config: ScenarioConfig,
    shards: usize,
    jobs: usize,
    mode: SnapshotMode,
    store: &StoreConfig,
    appview_shards: usize,
    framing: FramingPolicy,
) -> (StudyAnalyzers, World, ShardedSummary) {
    collect_sharded_faulted(
        config,
        shards,
        jobs,
        mode,
        store,
        appview_shards,
        framing,
        &Arc::new(FaultPlan::quiet()),
    )
}

/// [`collect_sharded_framed`] with an explicit injected [`FaultPlan`]
/// shared by every shard's world and producer (repro `--scenario` /
/// `--faults`). Every injected decision is a pure function of
/// `(seed, DID, day)`, so fault placement is identical across shard
/// counts and the merged report stays byte-identical serial vs. sharded
/// for *any* plan; the quiet plan additionally leaves the report
/// byte-identical to a run without fault machinery at all. Pinned by
/// `tests/fault_scenarios.rs`.
#[allow(clippy::too_many_arguments)]
pub fn collect_sharded_faulted(
    config: ScenarioConfig,
    shards: usize,
    jobs: usize,
    mode: SnapshotMode,
    store: &StoreConfig,
    appview_shards: usize,
    framing: FramingPolicy,
    faults: &Arc<FaultPlan>,
) -> (StudyAnalyzers, World, ShardedSummary) {
    assert!(shards >= 1, "shard count must be at least 1");
    assert!(
        (1..=shards).contains(&jobs),
        "jobs must be in 1..=shards (got {jobs} for {shards} shards)"
    );
    let plan = Arc::new(PopulationPlan::build(&config));

    let mut results: Vec<Option<ShardResult>> = Vec::new();
    if jobs == 1 {
        // Serial path: no threads, same code.
        for index in 0..shards {
            results.push(Some(run_shard(
                config,
                plan.clone(),
                index,
                shards,
                mode,
                store,
                appview_shards,
                framing,
                faults.clone(),
            )));
        }
    } else {
        let slots: Arc<Mutex<Vec<Option<ShardResult>>>> =
            Arc::new(Mutex::new((0..shards).map(|_| None).collect()));
        let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let plan = plan.clone();
                let slots = slots.clone();
                let next = next.clone();
                let store = store.clone();
                let faults = faults.clone();
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if index >= shards {
                        break;
                    }
                    let result = run_shard(
                        config,
                        plan.clone(),
                        index,
                        shards,
                        mode,
                        &store,
                        appview_shards,
                        framing,
                        faults.clone(),
                    );
                    slots.lock().expect("shard result lock")[index] = Some(result);
                });
            }
        });
        results = Arc::try_unwrap(slots)
            .unwrap_or_else(|_| panic!("all workers joined"))
            .into_inner()
            .expect("shard result lock");
    }

    // Deterministic reduction: merge strictly in shard-index order.
    let mut merged_analyzers: Option<StudyAnalyzers> = None;
    let mut world0: Option<World> = None;
    let mut per_shard = Vec::with_capacity(shards);
    let mut merged_summary = StreamSummary::default();
    for result in results.into_iter() {
        let result = result.expect("every shard produced a result");
        per_shard.push(result.summary);
        merged_summary.absorb(&result.summary);
        if let Some(world) = result.world {
            world0 = Some(world);
        }
        merged_analyzers = Some(match merged_analyzers {
            None => result.analyzers,
            Some(mut acc) => {
                acc.merge(result.analyzers);
                acc
            }
        });
    }
    (
        merged_analyzers.expect("at least one shard"),
        world0.expect("shard 0 returns its world"),
        ShardedSummary {
            shards,
            jobs,
            per_shard,
            merged: merged_summary,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::Datetime;

    fn small_config(seed: u64) -> ScenarioConfig {
        let mut config = ScenarioConfig::test_scale(seed);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 10).unwrap();
        config.scale = 40_000;
        config
    }

    #[test]
    fn sharded_collection_merges_summaries() {
        let (analyzers, world, summary) = collect_sharded(small_config(51), 3, 2);
        assert_eq!(summary.shards, 3);
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.per_shard.len(), 3);
        assert!(summary.merged.firehose_events > 0);
        assert_eq!(
            summary.merged.firehose_events,
            summary.per_shard.iter().map(|s| s.firehose_events).sum()
        );
        assert!(summary.render().contains("shard 0"));
        // The finish world is shard 0's.
        assert_eq!(world.shard.index, 0);
        let ctx = StudyCtx::new(&world);
        let table1 = analyzers.table1.finish(&ctx);
        assert!(table1.total > 0);
    }

    #[test]
    #[should_panic(expected = "jobs must be in 1..=shards")]
    fn rejects_more_jobs_than_shards() {
        let _ = collect_sharded(small_config(51), 2, 3);
    }
}
