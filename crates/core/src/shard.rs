//! The sharded study engine: partition the population by DID hash, run one
//! producer + sink per shard on worker threads, and merge the per-shard
//! sink states into one result.
//!
//! The correctness contract is exact: because every stochastic decision in
//! the [`World`] derives from `(seed, DID, day)` and every sink implements
//! the merge law (see [`crate::pipeline`]), the merged result is
//! **byte-identical** to the serial run's for any shard count — pinned by
//! the golden test in `tests/pipeline_equivalence.rs`. Shards are merged in
//! shard-index order on the coordinating thread, so thread scheduling never
//! influences the result; [`RunSpec::jobs`] only bounds how many shards are
//! in flight at once.
//!
//! Every run knob rides in on the [`RunSpec`]: snapshot mode changes only
//! how much repository data each producer fetches, the store backend only
//! where blocks reside, AppView entity shards and the write-back cache only
//! where hot counters live, framing only the wire accounting, and fault
//! plans inject identically across shard counts — none of them moves a byte
//! of the merged report.

use crate::analysis::{
    ActivityAnalyzer, FirehoseVolumeAnalyzer, IdentityAnalyzer, ModerationAnalyzer,
    RecommendationAnalyzer, Section4Analyzer, Table1Analyzer,
};
use crate::datasets::Collector;
use crate::observatory::ObservatoryAnalyzer;
use crate::pipeline::{Analyzer, Observation, ObservationSink, StreamSummary, StudyCtx};
use crate::spec::RunSpec;
use bsky_simnet::faults::FaultPlan;
use bsky_workload::{PopulationPlan, ShardSpec, World, WorldSpec};
use std::sync::{Arc, Mutex};

/// An observation sink that can run sharded: each shard folds observations
/// into a fresh [`Default`] instance on its worker thread, and the
/// coordinating thread absorbs the per-shard states in shard-index order.
///
/// `absorb` must be associative and agree with serial observation order —
/// the same merge law every [`Analyzer`] obeys — so that the sharded result
/// is byte-identical to the serial one.
pub trait ShardSink: ObservationSink + Default + Send {
    /// Fold another instance's state into this one.
    fn absorb(&mut self, other: Self);
}

/// The report's eight analyzers as one concrete, mergeable set.
#[derive(Debug, Default)]
pub struct StudyAnalyzers {
    /// Table 1.
    pub table1: Table1Analyzer,
    /// Figures 1–2, §4 totals.
    pub activity: ActivityAnalyzer,
    /// §4 popularity.
    pub section4: Section4Analyzer,
    /// §5 identity.
    pub identity: IdentityAnalyzer,
    /// §6 moderation.
    pub moderation: ModerationAnalyzer,
    /// §7 recommendation.
    pub recommendation: RecommendationAnalyzer,
    /// §9 firehose volume.
    pub volume: FirehoseVolumeAnalyzer,
    /// §10 wire-traffic observatory.
    pub observatory: ObservatoryAnalyzer,
}

impl StudyAnalyzers {
    /// A fresh set.
    pub fn new() -> StudyAnalyzers {
        StudyAnalyzers::default()
    }

    /// Merge another set's state into this one (memberwise).
    pub fn merge(&mut self, other: StudyAnalyzers) {
        self.table1.merge(other.table1);
        self.activity.merge(other.activity);
        self.section4.merge(other.section4);
        self.identity.merge(other.identity);
        self.moderation.merge(other.moderation);
        self.recommendation.merge(other.recommendation);
        self.volume.merge(other.volume);
        self.observatory.merge(other.observatory);
    }
}

impl ObservationSink for StudyAnalyzers {
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        self.table1.observe(obs, ctx);
        self.activity.observe(obs, ctx);
        self.section4.observe(obs, ctx);
        self.identity.observe(obs, ctx);
        self.moderation.observe(obs, ctx);
        self.recommendation.observe(obs, ctx);
        self.volume.observe(obs, ctx);
        self.observatory.observe(obs, ctx);
    }
}

impl ShardSink for StudyAnalyzers {
    fn absorb(&mut self, other: Self) {
        self.merge(other);
    }
}

/// Result of one shard's collection pass.
struct ShardResult<S> {
    sink: S,
    summary: StreamSummary,
    /// Only shard 0 returns its world (the finish context).
    world: Option<World>,
}

/// Summary of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedSummary {
    /// Number of population shards.
    pub shards: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Per-shard producer summaries, in shard order.
    pub per_shard: Vec<StreamSummary>,
    /// The merged summary (counters added, peaks maxed).
    pub merged: StreamSummary,
}

impl ShardedSummary {
    /// Render a multi-line summary for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "sharded run: {} shards on {} worker thread(s)\n",
            self.shards, self.jobs
        );
        for (index, summary) in self.per_shard.iter().enumerate() {
            out.push_str(&format!("  shard {index}: {}\n", summary.render()));
        }
        out.push_str(&format!("  merged:  {}\n", self.merged.render()));
        out
    }
}

/// Run one shard: build its world from the spec, stream it through a fresh
/// sink, and hand back the state.
fn run_shard<S: ShardSink>(
    spec: &RunSpec,
    plan: Arc<PopulationPlan>,
    index: usize,
    faults: Arc<FaultPlan>,
) -> ShardResult<S> {
    let mut world = World::from_spec(
        WorldSpec::new(spec.config)
            .plan(plan)
            .shard(ShardSpec {
                index,
                count: spec.shards,
            })
            .store(spec.store.clone())
            .appview_shards(spec.appview_shards)
            .write_back(spec.write_back)
            .faults(faults.clone()),
    );
    let mut sink = S::default();
    let mut collector = Collector::new()
        .snapshot_mode(spec.snapshots)
        .store(spec.store.clone())
        .framing(spec.framing)
        .faults(faults);
    for (class, policy) in &spec.retries {
        collector = collector.retry(*class, *policy);
    }
    let summary = collector.stream(&mut world, &mut sink);
    ShardResult {
        sink,
        summary,
        world: (index == 0).then_some(world),
    }
}

/// Run the full collection described by `spec` — [`RunSpec::shards`]
/// population shards on at most [`RunSpec::jobs`] worker threads — folding
/// each shard's observations into a fresh sink and absorbing the per-shard
/// states into `sink` in shard-index order. Returns the merged sink, the
/// finish-context world (shard 0), and the run summary.
///
/// The fault plan is resolved here from [`RunSpec::faults`] over the
/// config's day window and shared by every shard's world and producer.
///
/// Panics on an invalid spec (see [`RunSpec::validate`]) or a grid spec
/// (expand grids via [`RunSpec::grid_configs`] and run each cell).
pub fn collect_sharded<S: ShardSink>(spec: &RunSpec, mut sink: S) -> (S, World, ShardedSummary) {
    if let Err(err) = spec.validate() {
        panic!("invalid RunSpec: {err}");
    }
    assert!(
        !spec.is_grid(),
        "collect_sharded runs a single cell; expand grids via RunSpec::grid_configs"
    );
    let config = spec.config;
    let shards = spec.shards;
    let jobs = spec.jobs;
    let total_days = config.end.days_since(config.start).max(0) as usize;
    let faults = Arc::new(FaultPlan::build(
        config.seed,
        total_days,
        spec.faults.clone(),
    ));
    let plan = Arc::new(PopulationPlan::build(&config));

    let mut results: Vec<Option<ShardResult<S>>> = Vec::new();
    if jobs == 1 {
        // Serial path: no threads, same code.
        for index in 0..shards {
            results.push(Some(run_shard(spec, plan.clone(), index, faults.clone())));
        }
    } else {
        let slots: Arc<Mutex<Vec<Option<ShardResult<S>>>>> =
            Arc::new(Mutex::new((0..shards).map(|_| None).collect()));
        let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let plan = plan.clone();
                let slots = slots.clone();
                let next = next.clone();
                let faults = faults.clone();
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if index >= shards {
                        break;
                    }
                    let result = run_shard(spec, plan.clone(), index, faults.clone());
                    slots.lock().expect("shard result lock")[index] = Some(result);
                });
            }
        });
        results = Arc::try_unwrap(slots)
            .unwrap_or_else(|_| panic!("all workers joined"))
            .into_inner()
            .expect("shard result lock");
    }

    // Deterministic reduction: absorb strictly in shard-index order.
    let mut world0: Option<World> = None;
    let mut per_shard = Vec::with_capacity(shards);
    let mut merged_summary = StreamSummary::default();
    for result in results.into_iter() {
        let result = result.expect("every shard produced a result");
        per_shard.push(result.summary);
        merged_summary.absorb(&result.summary);
        if let Some(world) = result.world {
            world0 = Some(world);
        }
        sink.absorb(result.sink);
    }
    (
        sink,
        world0.expect("shard 0 returns its world"),
        ShardedSummary {
            shards,
            jobs,
            per_shard,
            merged: merged_summary,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::Datetime;
    use bsky_workload::ScenarioConfig;

    fn small_config(seed: u64) -> ScenarioConfig {
        let mut config = ScenarioConfig::test_scale(seed);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 10).unwrap();
        config.scale = 40_000;
        config
    }

    #[test]
    fn sharded_collection_merges_summaries() {
        let spec = RunSpec::new(small_config(51)).shards(3).jobs(2);
        let (analyzers, world, summary) = collect_sharded(&spec, StudyAnalyzers::new());
        assert_eq!(summary.shards, 3);
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.per_shard.len(), 3);
        assert!(summary.merged.firehose_events > 0);
        assert_eq!(
            summary.merged.firehose_events,
            summary.per_shard.iter().map(|s| s.firehose_events).sum()
        );
        assert!(summary.render().contains("shard 0"));
        // The finish world is shard 0's.
        assert_eq!(world.shard.index, 0);
        let ctx = StudyCtx::new(&world);
        let table1 = analyzers.table1.finish(&ctx);
        assert!(table1.total > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the shard count")]
    fn rejects_more_jobs_than_shards() {
        let spec = RunSpec::new(small_config(51)).shards(2).jobs(3);
        let _ = collect_sharded(&spec, StudyAnalyzers::new());
    }
}
