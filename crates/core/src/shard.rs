//! The sharded study engine: partition the population by DID hash, run one
//! producer + sink per shard on worker threads, and merge the per-shard
//! sink states into one result.
//!
//! The correctness contract is exact: because every stochastic decision in
//! the [`World`] derives from `(seed, DID, day)` and every sink implements
//! the merge law (see [`crate::pipeline`]), the merged result is
//! **byte-identical** to the serial run's for any shard count — pinned by
//! the golden test in `tests/pipeline_equivalence.rs`. Shards are merged in
//! shard-index order on the coordinating thread, so thread scheduling never
//! influences the result; [`RunSpec::jobs`] only bounds how many shards are
//! in flight at once.
//!
//! ## The intra-shard pipeline
//!
//! Sharding parallelizes *across* shards; [`PipelinedSink`]
//! ([`RunSpec::pipeline`], repro `--pipeline`) parallelizes *inside* one:
//! the producer materializes its borrowed bus items into sequence-numbered
//! [`ObservationBatch`]es and ships them over bounded channels to
//! [`RunSpec::analyzer_threads`] workers, each of which owns a disjoint
//! subset of the sink's [`ShardSink::fan_out_parts`] (the eight study
//! analyzers). Backpressure on the bounded channel preserves today's
//! memory bound; workers assert contiguous sequence order, so every part
//! folds the exact serial stream; and at shard end the parts are absorbed
//! back together in part order — exact by the merge law, because merging
//! a folded part into a default-state peer is the identity. Observations
//! that need the live world at observe time
//! ([`Observation::requires_world_ctx`], the end-of-window DID documents
//! whose analyzer runs active measurements) drain the workers and fold
//! inline on the producer thread. The result is byte-identical for any
//! `(shards, jobs, analyzer_threads)` — pinned by the golden tests.
//!
//! Every run knob rides in on the [`RunSpec`]: snapshot mode changes only
//! how much repository data each producer fetches, the store backend only
//! where blocks reside, AppView entity shards and the write-back cache only
//! where hot counters live, framing only the wire accounting, and fault
//! plans inject identically across shard counts — none of them moves a byte
//! of the merged report.

use crate::analysis::{
    ActivityAnalyzer, FirehoseVolumeAnalyzer, IdentityAnalyzer, ModerationAnalyzer,
    RecommendationAnalyzer, Section4Analyzer, Table1Analyzer,
};
use crate::datasets::Collector;
use crate::observatory::ObservatoryAnalyzer;
use crate::pipeline::{
    Analyzer, Observation, ObservationBatch, ObservationSink, OwnedObservation, StreamSummary,
    StudyCtx,
};
use crate::spec::RunSpec;
use bsky_simnet::faults::FaultPlan;
use bsky_workload::{PopulationPlan, ShardSpec, World, WorldSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// An observation sink that can run sharded: each shard folds observations
/// into a fresh [`Default`] instance on its worker thread, and the
/// coordinating thread absorbs the per-shard states in shard-index order.
///
/// `absorb` must be associative and agree with serial observation order —
/// the same merge law every [`Analyzer`] obeys — so that the sharded result
/// is byte-identical to the serial one. (`'static` because shard workers
/// and the intra-shard pipeline move sink instances across threads.)
pub trait ShardSink: ObservationSink + Default + Send + 'static {
    /// Fold another instance's state into this one.
    fn absorb(&mut self, other: Self);

    /// How many independently foldable parts this sink splits into for
    /// analyzer fan-out ([`PipelinedSink`]). Each part must fold
    /// observations without reading any other part's state, so that a
    /// fresh instance folding only part `p` of the stream, absorbed into
    /// peers that folded the other parts, reassembles the serial fold
    /// exactly (the merge law, partwise). Sinks without internal structure
    /// keep the default single part.
    fn fan_out_parts() -> usize {
        1
    }

    /// Fold one observation into part `part` only (`0..fan_out_parts()`).
    /// The default forwards to [`ObservationSink::observe`], which is only
    /// correct for single-part sinks.
    fn observe_part(&mut self, part: usize, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        debug_assert_eq!(part, 0, "multi-part sinks must override observe_part");
        self.observe(obs, ctx);
    }
}

/// The report's eight analyzers as one concrete, mergeable set.
#[derive(Debug, Default)]
pub struct StudyAnalyzers {
    /// Table 1.
    pub table1: Table1Analyzer,
    /// Figures 1–2, §4 totals.
    pub activity: ActivityAnalyzer,
    /// §4 popularity.
    pub section4: Section4Analyzer,
    /// §5 identity.
    pub identity: IdentityAnalyzer,
    /// §6 moderation.
    pub moderation: ModerationAnalyzer,
    /// §7 recommendation.
    pub recommendation: RecommendationAnalyzer,
    /// §9 firehose volume.
    pub volume: FirehoseVolumeAnalyzer,
    /// §10 wire-traffic observatory.
    pub observatory: ObservatoryAnalyzer,
}

impl StudyAnalyzers {
    /// A fresh set.
    pub fn new() -> StudyAnalyzers {
        StudyAnalyzers::default()
    }

    /// Merge another set's state into this one (memberwise).
    pub fn merge(&mut self, other: StudyAnalyzers) {
        self.table1.merge(other.table1);
        self.activity.merge(other.activity);
        self.section4.merge(other.section4);
        self.identity.merge(other.identity);
        self.moderation.merge(other.moderation);
        self.recommendation.merge(other.recommendation);
        self.volume.merge(other.volume);
        self.observatory.merge(other.observatory);
    }
}

impl ObservationSink for StudyAnalyzers {
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        self.table1.observe(obs, ctx);
        self.activity.observe(obs, ctx);
        self.section4.observe(obs, ctx);
        self.identity.observe(obs, ctx);
        self.moderation.observe(obs, ctx);
        self.recommendation.observe(obs, ctx);
        self.volume.observe(obs, ctx);
        self.observatory.observe(obs, ctx);
    }
}

impl ShardSink for StudyAnalyzers {
    fn absorb(&mut self, other: Self) {
        self.merge(other);
    }

    fn fan_out_parts() -> usize {
        8
    }

    fn observe_part(&mut self, part: usize, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        match part {
            0 => self.table1.observe(obs, ctx),
            1 => self.activity.observe(obs, ctx),
            2 => self.section4.observe(obs, ctx),
            3 => self.identity.observe(obs, ctx),
            4 => self.moderation.observe(obs, ctx),
            5 => self.recommendation.observe(obs, ctx),
            6 => self.volume.observe(obs, ctx),
            7 => self.observatory.observe(obs, ctx),
            _ => panic!("StudyAnalyzers has 8 fan-out parts, got part {part}"),
        }
    }
}

/// Capacity of one [`ObservationBatch`] before the producer flushes it to
/// the analyzer workers — one relay day-chunk's worth
/// ([`crate::datasets::DEFAULT_CHUNK_EVENTS`]), so pipelining changes the
/// shipping granularity, not the producer's chunked cadence.
const PIPELINE_BATCH_ITEMS: usize = crate::datasets::DEFAULT_CHUNK_EVENTS;

/// Bounded depth (in batches) of each analyzer worker's channel. The
/// producer blocks once a worker falls this far behind, so peak pipelined
/// memory is `workers × PIPELINE_CHANNEL_BATCHES` shared batches — the
/// same order as the serial path's one-chunk bound.
const PIPELINE_CHANNEL_BATCHES: usize = 4;

struct AnalyzerWorker<S> {
    tx: SyncSender<Arc<ObservationBatch>>,
    handle: JoinHandle<S>,
}

/// The intra-shard pipeline: an [`ObservationSink`] that materializes the
/// producer's borrowed bus items into sequence-numbered owned batches and
/// fans them out over bounded channels to analyzer worker threads, each
/// folding a disjoint subset of the inner sink's
/// [`ShardSink::fan_out_parts`].
///
/// Workers fold with a detached [`StudyCtx`]; the first observation that
/// [`Observation::requires_world_ctx`] (the end-of-window DID documents)
/// drains the workers, reassembles the sink, and folds everything from
/// there inline with the producer's live context. [`PipelinedSink::finish`]
/// returns a sink state byte-identical to a plain serial fold — pinned by
/// the golden tests in `tests/pipeline_equivalence.rs`.
pub struct PipelinedSink<S: ShardSink> {
    workers: Vec<AnalyzerWorker<S>>,
    pending: Vec<OwnedObservation>,
    next_seq: u64,
    batches_sent: u64,
    /// Set once the pipeline has drained (world-context observation or
    /// zero-worker construction); all further folds happen here, inline.
    inline: Option<S>,
}

impl<S: ShardSink> PipelinedSink<S> {
    /// Spawn up to `analyzer_threads` workers (clamped to the sink's part
    /// count); worker `w` owns every part `p` with `p % workers == w`.
    pub fn new(analyzer_threads: usize) -> PipelinedSink<S> {
        let total_parts = S::fan_out_parts();
        let workers = analyzer_threads.min(total_parts);
        if workers <= 1 && total_parts <= 1 {
            // Nothing to fan out: skip the channel hop entirely.
            return PipelinedSink {
                workers: Vec::new(),
                pending: Vec::new(),
                next_seq: 0,
                batches_sent: 0,
                inline: Some(S::default()),
            };
        }
        let workers = workers.max(1);
        let spawned = (0..workers)
            .map(|worker| {
                let (tx, rx): (_, Receiver<Arc<ObservationBatch>>) =
                    mpsc::sync_channel(PIPELINE_CHANNEL_BATCHES);
                let parts: Vec<usize> = (worker..total_parts).step_by(workers).collect();
                let handle = std::thread::spawn(move || {
                    let mut sink = S::default();
                    let ctx = StudyCtx::detached();
                    let mut expected_seq = 0u64;
                    while let Ok(batch) = rx.recv() {
                        assert_eq!(
                            batch.seq, expected_seq,
                            "pipeline batches must arrive in sequence order"
                        );
                        expected_seq += 1;
                        for item in &batch.items {
                            let obs = item.as_observation();
                            for &part in &parts {
                                sink.observe_part(part, &obs, &ctx);
                            }
                        }
                    }
                    sink
                });
                AnalyzerWorker { tx, handle }
            })
            .collect();
        PipelinedSink {
            workers: spawned,
            pending: Vec::with_capacity(PIPELINE_BATCH_ITEMS),
            next_seq: 0,
            batches_sent: 0,
            inline: None,
        }
    }

    /// Batches shipped to the workers so far (a [`StreamSummary`]
    /// diagnostic; zero once drained-inline folding takes over).
    pub fn batches_sent(&self) -> u64 {
        self.batches_sent
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = Arc::new(ObservationBatch {
            seq: self.next_seq,
            items: std::mem::take(&mut self.pending),
        });
        self.next_seq += 1;
        self.batches_sent += 1;
        self.pending = Vec::with_capacity(PIPELINE_BATCH_ITEMS);
        for worker in &self.workers {
            if worker.tx.send(batch.clone()).is_err() {
                // The worker is gone; join below surfaces its panic.
                break;
            }
        }
    }

    /// Flush, close the channels, join every worker, and reassemble the
    /// full sink by absorbing the per-part states in worker order (exact:
    /// each worker folded only its own parts of the identical stream, and
    /// absorbing into untouched peer parts is the identity).
    fn drain(&mut self) -> S {
        self.flush();
        let mut merged = S::default();
        for worker in self.workers.drain(..) {
            let AnalyzerWorker { tx, handle } = worker;
            drop(tx);
            let part_sink = handle.join().expect("analyzer worker panicked");
            merged.absorb(part_sink);
        }
        merged
    }

    /// Close the pipeline and hand back the fully folded sink.
    pub fn finish(mut self) -> S {
        match self.inline.take() {
            Some(sink) => sink,
            None => self.drain(),
        }
    }
}

impl<S: ShardSink> ObservationSink for PipelinedSink<S> {
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        if let Some(inline) = self.inline.as_mut() {
            inline.observe(obs, ctx);
            return;
        }
        if obs.requires_world_ctx() {
            // This observation's analyzers need the live world; from here
            // on (the end-of-window snapshot tail) fold inline.
            let mut sink = self.drain();
            sink.observe(obs, ctx);
            self.inline = Some(sink);
            return;
        }
        self.pending.push(obs.to_owned_observation());
        if self.pending.len() >= PIPELINE_BATCH_ITEMS {
            self.flush();
        }
    }
}

/// Result of one shard's collection pass.
struct ShardResult<S> {
    sink: S,
    summary: StreamSummary,
    /// Only shard 0 returns its world (the finish context).
    world: Option<World>,
}

/// One single-use result channel per shard (send and receive halves).
type ResultChannels<S> = (
    Vec<SyncSender<ShardResult<S>>>,
    Vec<Receiver<ShardResult<S>>>,
);

/// Summary of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedSummary {
    /// Number of population shards.
    pub shards: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Per-shard producer summaries, in shard order.
    pub per_shard: Vec<StreamSummary>,
    /// The merged summary (counters added, peaks maxed).
    pub merged: StreamSummary,
}

impl ShardedSummary {
    /// Render a multi-line summary for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "sharded run: {} shards on {} worker thread(s)\n",
            self.shards, self.jobs
        );
        for (index, summary) in self.per_shard.iter().enumerate() {
            out.push_str(&format!("  shard {index}: {}\n", summary.render()));
        }
        out.push_str(&format!("  merged:  {}\n", self.merged.render()));
        out
    }
}

/// Run one shard: build its world from the spec, stream it through a fresh
/// sink, and hand back the state.
fn run_shard<S: ShardSink>(
    spec: &RunSpec,
    plan: Arc<PopulationPlan>,
    index: usize,
    faults: Arc<FaultPlan>,
) -> ShardResult<S> {
    let mut world = World::from_spec(
        WorldSpec::new(spec.config)
            .plan(plan)
            .shard(ShardSpec {
                index,
                count: spec.shards,
            })
            .store(spec.store.clone())
            .appview_shards(spec.appview_shards)
            .write_back(spec.write_back)
            .relays(spec.relays)
            .faults(faults.clone()),
    );
    let mut collector = Collector::new()
        .snapshot_mode(spec.snapshots)
        .store(spec.store.clone())
        .framing(spec.framing)
        .faults(faults);
    for (class, policy) in &spec.retries {
        collector = collector.retry(*class, *policy);
    }
    let (sink, summary) = if spec.pipeline {
        let mut pipelined = PipelinedSink::<S>::new(spec.analyzer_threads);
        let mut summary = collector.stream(&mut world, &mut pipelined);
        summary.pipeline_batches = pipelined.batches_sent();
        (pipelined.finish(), summary)
    } else {
        let mut sink = S::default();
        let summary = collector.stream(&mut world, &mut sink);
        (sink, summary)
    };
    ShardResult {
        sink,
        summary,
        world: (index == 0).then_some(world),
    }
}

/// Run the full collection described by `spec` — [`RunSpec::shards`]
/// population shards on at most [`RunSpec::jobs`] worker threads — folding
/// each shard's observations into a fresh sink and absorbing the per-shard
/// states into `sink` in shard-index order. Returns the merged sink, the
/// finish-context world (shard 0), and the run summary.
///
/// The fault plan is resolved here from [`RunSpec::faults`] over the
/// config's day window and shared by every shard's world and producer.
///
/// Panics on an invalid spec (see [`RunSpec::validate`]) or a grid spec
/// (expand grids via [`RunSpec::grid_configs`] and run each cell).
pub fn collect_sharded<S: ShardSink>(spec: &RunSpec, mut sink: S) -> (S, World, ShardedSummary) {
    if let Err(err) = spec.validate() {
        panic!("invalid RunSpec: {err}");
    }
    assert!(
        !spec.is_grid(),
        "collect_sharded runs a single cell; expand grids via RunSpec::grid_configs"
    );
    let config = spec.config;
    let shards = spec.shards;
    let jobs = spec.effective_jobs();
    let total_days = config.end.days_since(config.start).max(0) as usize;
    let faults = Arc::new(FaultPlan::build(
        config.seed,
        total_days,
        spec.faults.clone(),
    ));
    let plan = Arc::new(PopulationPlan::build(&config));

    // Deterministic reduction: absorb strictly in shard-index order.
    let mut world0: Option<World> = None;
    let mut per_shard = Vec::with_capacity(shards);
    let mut merged_summary = StreamSummary::default();
    let mut absorb_result = |result: ShardResult<S>, sink: &mut S| {
        merged_summary.absorb(&result.summary);
        per_shard.push(result.summary);
        if let Some(world) = result.world {
            world0 = Some(world);
        }
        sink.absorb(result.sink);
    };
    if jobs == 1 {
        // Serial path: no threads, same code.
        for index in 0..shards {
            absorb_result(
                run_shard(spec, plan.clone(), index, faults.clone()),
                &mut sink,
            );
        }
    } else {
        // One single-use result channel per shard: workers claim shard
        // indices from a shared counter (Relaxed is enough — the channel
        // send/recv pair orders the result handoff) and send each finished
        // shard into that shard's own channel. The coordinator receives
        // shard 0, 1, 2, … so the reduction stays in shard-index order
        // while overlapping with still-running shards — no result-slot
        // lock on the worker hot path.
        let (txs, rxs): ResultChannels<S> = (0..shards).map(|_| mpsc::sync_channel(1)).unzip();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let plan = plan.clone();
                let txs = txs.clone();
                let next = &next;
                let faults = faults.clone();
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= shards {
                        break;
                    }
                    let result = run_shard(spec, plan.clone(), index, faults.clone());
                    txs[index]
                        .send(result)
                        .expect("coordinator outlives the shard workers");
                });
            }
            drop(txs);
            for rx in &rxs {
                let result = rx.recv().expect("every shard produces a result");
                absorb_result(result, &mut sink);
            }
        });
    }
    (
        sink,
        world0.expect("shard 0 returns its world"),
        ShardedSummary {
            shards,
            jobs,
            per_shard,
            merged: merged_summary,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::Datetime;
    use bsky_workload::ScenarioConfig;

    fn small_config(seed: u64) -> ScenarioConfig {
        let mut config = ScenarioConfig::test_scale(seed);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 10).unwrap();
        config.scale = 40_000;
        config
    }

    #[test]
    fn sharded_collection_merges_summaries() {
        let spec = RunSpec::new(small_config(51)).shards(3).jobs(2);
        let (analyzers, world, summary) = collect_sharded(&spec, StudyAnalyzers::new());
        assert_eq!(summary.shards, 3);
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.per_shard.len(), 3);
        assert!(summary.merged.firehose_events > 0);
        assert_eq!(
            summary.merged.firehose_events,
            summary.per_shard.iter().map(|s| s.firehose_events).sum()
        );
        assert!(summary.render().contains("shard 0"));
        // The finish world is shard 0's.
        assert_eq!(world.shard.index, 0);
        let ctx = StudyCtx::new(&world);
        let table1 = analyzers.table1.finish(&ctx);
        assert!(table1.total > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the shard count")]
    fn rejects_more_jobs_than_shards() {
        let spec = RunSpec::new(small_config(51)).shards(2).jobs(3);
        let _ = collect_sharded(&spec, StudyAnalyzers::new());
    }

    /// A two-part sink: part 0 counts marker observations, part 1 counts
    /// everything else. Exercises the fan-out dispatch without a world.
    #[derive(Debug, Default, PartialEq, Eq)]
    struct PartCounts {
        markers: u64,
        others: u64,
    }

    impl ObservationSink for PartCounts {
        fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
            self.observe_part(0, obs, ctx);
            self.observe_part(1, obs, ctx);
        }
    }

    impl ShardSink for PartCounts {
        fn absorb(&mut self, other: Self) {
            self.markers += other.markers;
            self.others += other.others;
        }

        fn fan_out_parts() -> usize {
            2
        }

        fn observe_part(&mut self, part: usize, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
            let is_marker = matches!(
                obs,
                Observation::WindowStart { .. }
                    | Observation::DayBoundary { .. }
                    | Observation::WindowEnd { .. }
            );
            match part {
                0 if is_marker => self.markers += 1,
                1 if !is_marker => self.others += 1,
                0 | 1 => {}
                _ => panic!("PartCounts has 2 parts"),
            }
        }
    }

    #[test]
    fn pipelined_sink_folds_identically_to_serial() {
        let ctx = StudyCtx::detached();
        let day = Datetime::from_ymd(2024, 3, 6).unwrap();
        let did = bsky_atproto::Did::plc_from_seed(b"pipeline-test");
        // Enough observations to force several batch flushes plus a
        // sub-capacity tail flushed by finish().
        let total = super::PIPELINE_BATCH_ITEMS * 3 + 17;
        let mut serial = PartCounts::default();
        let mut pipelined = super::PipelinedSink::<PartCounts>::new(2);
        for i in 0..total {
            let obs = if i % 3 == 0 {
                Observation::DayBoundary {
                    day: day.plus_days((i / 3) as i64),
                }
            } else {
                Observation::UserIdentifier {
                    did: &did,
                    rev: None,
                }
            };
            serial.observe(&obs, &ctx);
            pipelined.observe(&obs, &ctx);
        }
        assert!(pipelined.batches_sent() >= 3);
        let folded = pipelined.finish();
        assert_eq!(folded, serial);
        assert_eq!(folded.markers + folded.others, total as u64);
    }

    #[test]
    fn pipelined_sink_drains_inline_on_world_ctx_observations() {
        // A single-part sink pipelined over one worker, hit with a
        // world-requiring observation mid-stream: everything after the
        // drain must fold inline, and batches stop flowing to workers.
        let ctx = StudyCtx::detached();
        let day = Datetime::from_ymd(2024, 3, 6).unwrap();
        let mut serial = PartCounts::default();
        let mut pipelined = super::PipelinedSink::<PartCounts>::new(2);
        let doc = bsky_identity::DidDocument::new(
            bsky_atproto::Did::plc_from_seed(b"drain-test"),
            bsky_atproto::Handle::parse("drain.test").unwrap(),
            "zKey".to_string(),
            "https://pds.example".to_string(),
        );
        for i in 0..10 {
            let obs = if i == 5 {
                Observation::DidDocument {
                    doc: &doc,
                    via_web: false,
                }
            } else {
                Observation::DayBoundary {
                    day: day.plus_days(i),
                }
            };
            assert_eq!(obs.requires_world_ctx(), i == 5);
            serial.observe(&obs, &ctx);
            pipelined.observe(&obs, &ctx);
        }
        assert_eq!(pipelined.finish(), serial);
    }

    #[test]
    fn pipelined_sharded_collection_matches_plain() {
        let base = RunSpec::new(small_config(52)).shards(2).jobs(2);
        let (plain, _, plain_summary) = collect_sharded(&base, StudyAnalyzers::new());
        let spec = base.pipeline(true).analyzer_threads(3);
        let (piped, world, summary) = collect_sharded(&spec, StudyAnalyzers::new());
        assert!(summary.merged.pipeline_batches > 0);
        assert_eq!(plain_summary.merged.pipeline_batches, 0);
        assert_eq!(
            summary.merged.firehose_events,
            plain_summary.merged.firehose_events
        );
        let ctx = StudyCtx::new(&world);
        assert_eq!(
            piped.table1.finish(&ctx).total,
            plain.table1.finish(&ctx).total
        );
    }
}
