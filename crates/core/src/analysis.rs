//! The analyses of §4–§9: every table and figure of the paper, computed
//! *incrementally* from the observation stream plus the active measurements
//! (DNS, WHOIS, Tranco, endpoint classification) the study performed against
//! the network.
//!
//! Each section is an [`Analyzer`]: `observe` folds one observation into
//! per-entity accumulators, `merge` combines two independently folded states
//! (the primitive behind the sharded engine in [`crate::shard`]), and
//! `finish` computes the result struct with its `render()` method. All seven
//! analyzers obey the merge law (see [`crate::pipeline`]): splitting any
//! observation stream at any point and merging the two halves' states equals
//! folding the whole stream — the property tests at the bottom of this file
//! pin that for every analyzer. The free functions
//! (`table1_firehose_breakdown`, `activity_series`, …) keep the original
//! batch API: they [`replay`] an already-materialized [`Datasets`] through
//! the same analyzer, so the batch and streaming paths produce identical
//! results by construction.

use crate::datasets::Datasets;
use crate::langdetect;
use crate::pipeline::{replay, Analyzer, Observation, StudyCtx};
use crate::stats;
use bsky_atproto::firehose::{EventBody, EventKind};
use bsky_atproto::label::LabelTargetKind;
use bsky_atproto::nsid::known;
use bsky_atproto::record::Record;
use bsky_atproto::Datetime;
use bsky_labeler::{LabelerOperator, REACTION_WINDOW_DAYS};
use bsky_simnet::net::HostingClass;
use bsky_workload::World;
use std::collections::{BTreeMap, BTreeSet};

fn month_of(dt: Datetime) -> String {
    dt.date().year_month()
}

// ---------------------------------------------------------------------------
// §4 / Table 1 / Figures 1–2
// ---------------------------------------------------------------------------

/// Table 1: firehose event-type breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows: `(event type name, count, share %)`.
    pub rows: Vec<(String, u64, f64)>,
    /// Total events.
    pub total: u64,
}

/// Incremental Table 1: counts firehose events by kind.
#[derive(Debug, Default)]
pub struct Table1Analyzer {
    counts: BTreeMap<EventKind, u64>,
}

impl Table1Analyzer {
    /// A fresh accumulator.
    pub fn new() -> Table1Analyzer {
        Table1Analyzer::default()
    }
}

impl Analyzer for Table1Analyzer {
    type Output = Table1;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        if let Observation::Firehose(event) = obs {
            *self.counts.entry(event.kind()).or_insert(0) += 1;
        }
    }

    fn merge(&mut self, other: Self) {
        for (kind, count) in other.counts {
            *self.counts.entry(kind).or_insert(0) += count;
        }
    }

    fn finish(self, _ctx: &StudyCtx<'_>) -> Table1 {
        let total: u64 = self.counts.values().sum();
        let rows = EventKind::all()
            .iter()
            .filter(|k| **k != EventKind::Info)
            .map(|k| {
                let count = self.counts.get(k).copied().unwrap_or(0);
                (
                    k.display_name().to_string(),
                    count,
                    stats::share(count, total),
                )
            })
            .collect();
        Table1 { rows, total }
    }
}

/// Compute Table 1 from a materialized firehose dataset (batch API).
pub fn table1_firehose_breakdown(datasets: &Datasets) -> Table1 {
    replay(Table1Analyzer::new(), datasets, &StudyCtx::detached())
}

impl Table1 {
    /// Render in the paper's format.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 1: Overview of Firehose event types\nEvent Type              | # Total      | Share (%)\n");
        for (name, count, share) in &self.rows {
            out.push_str(&format!("{name:<23} | {count:>12} | {share:>8.2}\n"));
        }
        out.push_str(&format!("Total events: {}\n", self.total));
        out
    }
}

/// Figure 1 / Figure 2: daily activity series (aggregated monthly for
/// rendering).
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySeries {
    /// Per-month `(month, active users, posts, likes, reposts)`.
    pub monthly: Vec<(String, u64, u64, u64, u64)>,
    /// Per-month per-language active users (Figure 2).
    pub monthly_by_language: Vec<(String, Vec<(String, u64)>)>,
    /// Grand totals `(posts, likes, follows, reposts, blocks)` from the
    /// repositories dataset (§4 text).
    pub totals: (u64, u64, u64, u64, u64),
}

/// Incremental Figures 1–2 plus §4's operation totals, folded per
/// repository snapshot.
#[derive(Debug, Default)]
pub struct ActivityAnalyzer {
    totals: (u64, u64, u64, u64, u64),
    daily_users: BTreeMap<(String, String), BTreeSet<String>>,
    monthly_ops: BTreeMap<String, (BTreeSet<String>, u64, u64, u64)>,
}

impl ActivityAnalyzer {
    /// A fresh accumulator.
    pub fn new() -> ActivityAnalyzer {
        ActivityAnalyzer::default()
    }
}

impl Analyzer for ActivityAnalyzer {
    type Output = ActivitySeries;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        let Observation::Repo(repo) = obs else {
            return;
        };
        for (collection, _rkey, record) in &repo.records {
            let created = match record.created_at() {
                Some(c) => c,
                None => continue,
            };
            let month = month_of(created);
            let lang = match record {
                Record::Post(p) => p.langs.first().cloned().unwrap_or_else(|| "und".into()),
                _ => "und".into(),
            };
            match collection.as_str() {
                known::POST => {
                    self.totals.0 += 1;
                    let entry = self.monthly_ops.entry(month.clone()).or_default();
                    entry.0.insert(repo.did.to_string());
                    entry.1 += 1;
                    self.daily_users
                        .entry((month.clone(), lang))
                        .or_default()
                        .insert(repo.did.to_string());
                }
                known::LIKE => {
                    self.totals.1 += 1;
                    let entry = self.monthly_ops.entry(month.clone()).or_default();
                    entry.0.insert(repo.did.to_string());
                    entry.2 += 1;
                }
                known::FOLLOW => self.totals.2 += 1,
                known::REPOST => {
                    self.totals.3 += 1;
                    let entry = self.monthly_ops.entry(month.clone()).or_default();
                    entry.0.insert(repo.did.to_string());
                    entry.3 += 1;
                }
                known::BLOCK => self.totals.4 += 1,
                _ => {}
            }
        }
    }

    fn merge(&mut self, other: Self) {
        self.totals.0 += other.totals.0;
        self.totals.1 += other.totals.1;
        self.totals.2 += other.totals.2;
        self.totals.3 += other.totals.3;
        self.totals.4 += other.totals.4;
        for (key, users) in other.daily_users {
            self.daily_users.entry(key).or_default().extend(users);
        }
        for (month, (users, posts, likes, reposts)) in other.monthly_ops {
            let entry = self.monthly_ops.entry(month).or_default();
            entry.0.extend(users);
            entry.1 += posts;
            entry.2 += likes;
            entry.3 += reposts;
        }
    }

    fn finish(self, _ctx: &StudyCtx<'_>) -> ActivitySeries {
        let monthly = self
            .monthly_ops
            .iter()
            .map(|(month, (users, posts, likes, reposts))| {
                (month.clone(), users.len() as u64, *posts, *likes, *reposts)
            })
            .collect();
        let mut by_lang: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        for ((month, lang), users) in &self.daily_users {
            by_lang
                .entry(month.clone())
                .or_default()
                .push((lang.clone(), users.len() as u64));
        }
        let monthly_by_language = by_lang.into_iter().collect();
        ActivitySeries {
            monthly,
            monthly_by_language,
            totals: self.totals,
        }
    }
}

/// Compute Figures 1 and 2 plus §4's operation totals (batch API).
pub fn activity_series(datasets: &Datasets) -> ActivitySeries {
    replay(ActivityAnalyzer::new(), datasets, &StudyCtx::detached())
}

impl ActivitySeries {
    /// Render Figure 1's series.
    pub fn render_figure1(&self) -> String {
        let mut out = String::from("Figure 1: Monthly active users and operations\nMonth    | Active | Posts   | Likes   | Reposts\n");
        for (month, users, posts, likes, reposts) in &self.monthly {
            out.push_str(&format!(
                "{month} | {users:>6} | {posts:>7} | {likes:>7} | {reposts:>7}\n"
            ));
        }
        let (p, l, f, r, b) = self.totals;
        out.push_str(&format!(
            "Totals: {p} posts, {l} likes, {f} follows, {r} reposts, {b} blocks\n"
        ));
        out
    }

    /// Render Figure 2's per-language series.
    pub fn render_figure2(&self) -> String {
        let mut out =
            String::from("Figure 2: Monthly active posting users per language community\n");
        for (month, langs) in &self.monthly_by_language {
            let mut sorted = langs.clone();
            sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let row: Vec<String> = sorted
                .iter()
                .take(5)
                .map(|(l, c)| format!("{l}:{c}"))
                .collect();
            out.push_str(&format!("{month} | {}\n", row.join("  ")));
        }
        out
    }
}

/// §4 account popularity and non-Bluesky content.
#[derive(Debug, Clone, PartialEq)]
pub struct Section4 {
    /// Most-followed accounts `(handle-ish DID, followers)`.
    pub most_followed: Vec<(String, u64)>,
    /// Most-blocked accounts `(DID, blocks)`.
    pub most_blocked: Vec<(String, u64)>,
    /// Number of non-Bluesky (third-party lexicon) records observed on the
    /// firehose.
    pub non_bsky_records: u64,
    /// Total firehose events for context.
    pub firehose_events: u64,
}

/// Incremental §4 popularity and non-Bluesky content accumulator.
#[derive(Debug, Default)]
pub struct Section4Analyzer {
    followers: BTreeMap<String, u64>,
    blocks: BTreeMap<String, u64>,
    non_bsky: u64,
    firehose_events: u64,
}

impl Section4Analyzer {
    /// A fresh accumulator.
    pub fn new() -> Section4Analyzer {
        Section4Analyzer::default()
    }
}

impl Analyzer for Section4Analyzer {
    type Output = Section4;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        match obs {
            Observation::Firehose(_) => self.firehose_events += 1,
            Observation::Repo(repo) => {
                for (collection, _, record) in &repo.records {
                    match record {
                        Record::Follow(f) => {
                            *self.followers.entry(f.subject.to_string()).or_insert(0) += 1
                        }
                        Record::Block(b) => {
                            *self.blocks.entry(b.subject.to_string()).or_insert(0) += 1
                        }
                        _ => {}
                    }
                    if !collection.is_bluesky_lexicon() {
                        self.non_bsky += 1;
                    }
                }
            }
            _ => {}
        }
    }

    fn merge(&mut self, other: Self) {
        for (did, count) in other.followers {
            *self.followers.entry(did).or_insert(0) += count;
        }
        for (did, count) in other.blocks {
            *self.blocks.entry(did).or_insert(0) += count;
        }
        self.non_bsky += other.non_bsky;
        self.firehose_events += other.firehose_events;
    }

    fn finish(self, _ctx: &StudyCtx<'_>) -> Section4 {
        let mut most_followed: Vec<(String, u64)> = self.followers.into_iter().collect();
        most_followed.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        most_followed.truncate(5);
        let mut most_blocked: Vec<(String, u64)> = self.blocks.into_iter().collect();
        most_blocked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        most_blocked.truncate(5);
        Section4 {
            most_followed,
            most_blocked,
            non_bsky_records: self.non_bsky,
            firehose_events: self.firehose_events,
        }
    }
}

/// Compute §4's popularity and non-Bluesky content findings (batch API).
pub fn section4_accounts(datasets: &Datasets) -> Section4 {
    replay(Section4Analyzer::new(), datasets, &StudyCtx::detached())
}

impl Section4 {
    /// Render the §4 summary.
    pub fn render(&self) -> String {
        let mut out = String::from("Section 4: account popularity and non-Bluesky content\n");
        out.push_str("Most followed accounts:\n");
        for (did, n) in &self.most_followed {
            out.push_str(&format!("  {did} — {n} followers\n"));
        }
        out.push_str("Most blocked accounts:\n");
        for (did, n) in &self.most_blocked {
            out.push_str(&format!("  {did} — {n} blocks\n"));
        }
        out.push_str(&format!(
            "Non-Bluesky lexicon records: {} (of {} firehose events)\n",
            self.non_bsky_records, self.firehose_events
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// §5 / Table 2 / Figure 3
// ---------------------------------------------------------------------------

/// §5 identity findings.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentityReport {
    /// Total FQDN handles examined.
    pub total_handles: u64,
    /// Handles under bsky.social and their share (%).
    pub bsky_social: (u64, f64),
    /// Number of did:web identities.
    pub did_web: u64,
    /// Figure 3: non-bsky.social registered domains with most subdomain
    /// handles `(registered domain, handles)`.
    pub subdomain_providers: Vec<(String, u64)>,
    /// Registered domains extracted from custom handles.
    pub registered_domains: u64,
    /// Registered domains found in the Tranco top-1M and their share (%).
    pub tranco_overlap: (u64, f64),
    /// Ownership proofs: `(dns txt count, well-known count, txt share %)`.
    pub proofs: (u64, u64, f64),
    /// Table 2: registrars `(IANA id, name, domains, share %)`.
    pub registrars: Vec<(Option<u32>, String, u64, f64)>,
    /// Handle updates observed on the firehose: `(changes, unique DIDs,
    /// unique handles, share of final handles under bsky.social %)`.
    pub handle_updates: (u64, u64, u64, f64),
}

/// Incremental §5: identity centralization, Table 2 and Figure 3.
///
/// Performs the study's active measurements (PSL grouping, Tranco ranking,
/// DNS TXT / well-known ownership proofs, and the WHOIS query for each
/// newly seen registered domain) per DID document as it streams by. Doing
/// the WHOIS scan at observe time — against the shard that owns the domain
/// registration — is what makes the state mergeable: the per-domain result
/// map is a union, never a recount.
#[derive(Debug, Default)]
pub struct IdentityAnalyzer {
    total_handles: u64,
    bsky_count: u64,
    did_web: u64,
    provider_counts: BTreeMap<String, u64>,
    registered_domains: BTreeSet<String>,
    tranco_hits: BTreeSet<String>,
    dns_proofs: u64,
    well_known_proofs: u64,
    /// Registered domain → WHOIS registrar `(IANA id, name)`, when any.
    whois_by_domain: BTreeMap<String, Option<(Option<u32>, String)>>,
    changes: u64,
    dids: BTreeSet<String>,
    handles: BTreeSet<String>,
    /// DID → latest observed handle change `(event time, handle)`.
    final_handle: BTreeMap<String, (Datetime, String)>,
}

impl IdentityAnalyzer {
    /// A fresh accumulator.
    pub fn new() -> IdentityAnalyzer {
        IdentityAnalyzer::default()
    }
}

impl Analyzer for IdentityAnalyzer {
    type Output = IdentityReport;

    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        match obs {
            Observation::DidDocument { doc, via_web } => {
                self.total_handles += 1;
                if *via_web {
                    self.did_web += 1;
                }
                if doc.handle.is_bsky_social() {
                    self.bsky_count += 1;
                    return;
                }
                let world = ctx.world();
                // Figure 3: group non-custodial handles by registered domain
                // (PSL), check the Tranco ranking, and WHOIS-scan each newly
                // seen domain.
                if let Some(registered) = world.psl.registered_domain(doc.handle.as_str()) {
                    *self.provider_counts.entry(registered.clone()).or_insert(0) += 1;
                    if self.registered_domains.insert(registered.clone()) {
                        let registrar = world.whois.query(&registered).and_then(|record| {
                            record
                                .registrar
                                .as_ref()
                                .map(|r| (r.iana_id, r.name.clone()))
                        });
                        self.whois_by_domain.insert(registered.clone(), registrar);
                    }
                    if world.tranco.in_top(&registered, 1_000_000) {
                        self.tranco_hits.insert(registered);
                    }
                }
                // Ownership proofs via active measurement (DNS first, then
                // well-known).
                if world.dns.lookup_atproto_did(doc.handle.as_str()).is_some() {
                    self.dns_proofs += 1;
                } else if world.web.get(&doc.handle.well_known_url()).body().is_some() {
                    self.well_known_proofs += 1;
                }
            }
            Observation::Firehose(event) => {
                if let EventBody::HandleChange { did, handle } = &event.body {
                    self.changes += 1;
                    self.dids.insert(did.to_string());
                    self.handles.insert(handle.as_str().to_string());
                    let entry = self
                        .final_handle
                        .entry(did.to_string())
                        .or_insert((event.time, handle.as_str().to_string()));
                    if event.time >= entry.0 {
                        *entry = (event.time, handle.as_str().to_string());
                    }
                }
            }
            _ => {}
        }
    }

    fn merge(&mut self, other: Self) {
        self.total_handles += other.total_handles;
        self.bsky_count += other.bsky_count;
        self.did_web += other.did_web;
        for (domain, count) in other.provider_counts {
            *self.provider_counts.entry(domain).or_insert(0) += count;
        }
        self.registered_domains.extend(other.registered_domains);
        self.tranco_hits.extend(other.tranco_hits);
        self.dns_proofs += other.dns_proofs;
        self.well_known_proofs += other.well_known_proofs;
        // Same domain seen by two shards → same WHOIS answer; union is
        // idempotent.
        for (domain, registrar) in other.whois_by_domain {
            self.whois_by_domain.entry(domain).or_insert(registrar);
        }
        self.changes += other.changes;
        self.dids.extend(other.dids);
        self.handles.extend(other.handles);
        for (did, (time, handle)) in other.final_handle {
            let entry = self
                .final_handle
                .entry(did)
                .or_insert((time, handle.clone()));
            if time >= entry.0 {
                *entry = (time, handle);
            }
        }
    }

    fn finish(self, _ctx: &StudyCtx<'_>) -> IdentityReport {
        let mut subdomain_providers: Vec<(String, u64)> =
            self.provider_counts.into_iter().collect();
        subdomain_providers.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        subdomain_providers.truncate(10);

        let proof_total = (self.dns_proofs + self.well_known_proofs).max(1);

        // Table 2: aggregate the per-domain WHOIS scan.
        let mut registrar_counts: BTreeMap<(Option<u32>, String), u64> = BTreeMap::new();
        let mut with_iana = 0u64;
        for registrar in self.whois_by_domain.values().flatten() {
            *registrar_counts
                .entry((registrar.0, registrar.1.clone()))
                .or_insert(0) += 1;
            if registrar.0.is_some() {
                with_iana += 1;
            }
        }
        let mut registrars: Vec<(Option<u32>, String, u64, f64)> = registrar_counts
            .into_iter()
            .map(|((id, name), count)| (id, name, count, stats::share(count, with_iana.max(1))))
            .collect();
        registrars.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
        registrars.truncate(7);

        let final_bsky = self
            .final_handle
            .values()
            .filter(|(_, h)| h.ends_with(".bsky.social"))
            .count() as u64;

        IdentityReport {
            total_handles: self.total_handles,
            bsky_social: (
                self.bsky_count,
                stats::share(self.bsky_count, self.total_handles),
            ),
            did_web: self.did_web,
            subdomain_providers,
            registered_domains: self.registered_domains.len() as u64,
            tranco_overlap: (
                self.tranco_hits.len() as u64,
                stats::share(
                    self.tranco_hits.len() as u64,
                    self.registered_domains.len().max(1) as u64,
                ),
            ),
            proofs: (
                self.dns_proofs,
                self.well_known_proofs,
                stats::share(self.dns_proofs, proof_total),
            ),
            registrars,
            handle_updates: (
                self.changes,
                self.dids.len() as u64,
                self.handles.len() as u64,
                stats::share(final_bsky, self.final_handle.len().max(1) as u64),
            ),
        }
    }
}

/// Compute §5: identity centralization, Table 2 and Figure 3 (batch API).
pub fn identity_report(datasets: &Datasets, world: &World) -> IdentityReport {
    replay(IdentityAnalyzer::new(), datasets, &StudyCtx::new(world))
}

impl IdentityReport {
    /// Render §5, Table 2 and Figure 3.
    pub fn render(&self) -> String {
        let mut out = String::from("Section 5: (de)centralized identity\n");
        out.push_str(&format!(
            "FQDN handles: {}   under bsky.social: {} ({:.1} %)   did:web identities: {}\n",
            self.total_handles, self.bsky_social.0, self.bsky_social.1, self.did_web
        ));
        out.push_str("Figure 3: subdomain handles per registered domain (excl. bsky.social)\n");
        for (domain, count) in &self.subdomain_providers {
            out.push_str(&format!("  {domain:<24} {count}\n"));
        }
        out.push_str(&format!(
            "Registered domains: {}   in Tranco top-1M: {} ({:.1} %)\n",
            self.registered_domains, self.tranco_overlap.0, self.tranco_overlap.1
        ));
        out.push_str(&format!(
            "Ownership proofs: DNS TXT {} / well-known {} ({:.1} % TXT)\n",
            self.proofs.0, self.proofs.1, self.proofs.2
        ));
        out.push_str("Table 2: Domain name handles per registrar\nIANA ID | Registrar                  | # Total | Share (%)\n");
        for (id, name, count, share) in &self.registrars {
            let id_str = id.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{id_str:>7} | {name:<26} | {count:>7} | {share:>6.2}\n"
            ));
        }
        let (changes, dids, handles, final_bsky) = self.handle_updates;
        out.push_str(&format!(
            "Handle updates: {changes} changes by {dids} DIDs over {handles} unique handles; {final_bsky:.1} % of final handles under bsky.social\n"
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// §6 / Tables 3, 4, 6 / Figures 4, 5, 6
// ---------------------------------------------------------------------------

/// One Table 4 row: `(target kind, objects, share %, top values)`.
pub type LabelTargetRow = (String, u64, f64, Vec<(String, u64)>);

/// Per-labeler reaction-time statistics (Table 6 / Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelerReaction {
    /// Labeler DID.
    pub did: String,
    /// Display name.
    pub name: String,
    /// Operator class.
    pub community: bool,
    /// Top label values by application count.
    pub top_values: Vec<String>,
    /// Distinct values emitted.
    pub unique_values: u64,
    /// Total labels applied (excluding negations).
    pub total: u64,
    /// Share of all labels (%).
    pub share: f64,
    /// Median reaction time in seconds (posts only).
    pub median_reaction_secs: Option<f64>,
    /// Interquartile distance of the reaction time.
    pub iqd_reaction_secs: Option<f64>,
}

/// The §6 moderation report.
#[derive(Debug, Clone, PartialEq)]
pub struct ModerationReport {
    /// Announced / functional / active labeler counts.
    pub labeler_counts: (u64, u64, u64),
    /// Endpoint hosting classification `(cloud, residential, dead)`.
    pub hosting: (u64, u64, u64),
    /// Figure 4: per-month labels by source `(month, bluesky, community)` and
    /// cumulative community labelers.
    pub labels_by_month: Vec<(String, u64, u64, u64)>,
    /// Community share of labels in the last full month (%).
    pub community_share_last_month: f64,
    /// Total label interactions and rescissions.
    pub interactions: (u64, u64),
    /// Unique labeled objects.
    pub unique_objects: u64,
    /// Share of last-month posts that received a label (%).
    pub last_month_posts_labeled_share: f64,
    /// Distinct label values (raw and after cleaning).
    pub label_values: (u64, u64),
    /// Share of labeled objects carrying labels from multiple services (%).
    pub multi_service_share: f64,
    /// Share of objects labeled by both Bluesky and a community labeler (%).
    pub bluesky_community_overlap_share: f64,
    /// Table 3: top community labelers `(name, labels applied, likes)`.
    pub table3: Vec<(String, u64, u64)>,
    /// Table 4: label targets `(kind, objects, share %, top values)`.
    pub table4: Vec<LabelTargetRow>,
    /// Table 6 / Figure 5: per-labeler reaction statistics.
    pub table6: Vec<LabelerReaction>,
    /// Figure 6: per-value `(value, objects, median reaction s, community)`.
    pub figure6: Vec<(String, u64, f64, bool)>,
}

/// Static metadata of one labeler (from its announcement observation).
#[derive(Debug, Clone)]
struct LabelerMeta {
    name: String,
    operator: LabelerOperator,
    hosting: HostingClass,
    functional: bool,
}

/// Per-labeler accumulator feeding Tables 3/6 and Figures 4/5.
#[derive(Debug, Default)]
struct LabelerAcc {
    meta: Option<LabelerMeta>,
    values: BTreeMap<String, u64>,
    reactions: Vec<f64>,
    applied: u64,
    stream_entries: u64,
    /// Applied labels per month (split Bluesky vs community at finish).
    per_month: BTreeMap<String, u64>,
    /// Objects this labeler labeled.
    objects: BTreeSet<String>,
    /// First month with an applied label.
    first_month: Option<String>,
}

impl LabelerAcc {
    fn absorb(&mut self, other: LabelerAcc) {
        if self.meta.is_none() {
            self.meta = other.meta;
        }
        for (value, count) in other.values {
            *self.values.entry(value).or_insert(0) += count;
        }
        self.reactions.extend(other.reactions);
        self.applied += other.applied;
        self.stream_entries += other.stream_entries;
        for (month, count) in other.per_month {
            *self.per_month.entry(month).or_insert(0) += count;
        }
        self.objects.extend(other.objects);
        self.first_month = match (self.first_month.take(), other.first_month) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A label whose post was not (yet) seen when the label streamed by.
/// Resolved against the other half's post index at merge time; labels whose
/// posts never appear simply have no reaction time (matching the study:
/// labels on pre-window posts are volume-counted but not reaction-timed).
#[derive(Debug, Clone)]
struct PendingReaction {
    object: String,
    value: String,
    labeler: String,
    label_created: Datetime,
}

/// Incremental §6 moderation analyses.
///
/// Labeler metadata arrives when a service is announced; its label stream
/// arrives in daily batches. Reaction times are measured against the
/// post-creation index built from firehose commits — and because every
/// labeler's reaction delay is bounded by
/// [`bsky_labeler::REACTION_WINDOW_DAYS`], that index is *aged out* at every
/// day boundary: entries older than the reaction window can never match a
/// future label, so peak index size is bounded by one window's worth of
/// posts instead of the whole collection (the former `--scale 100` memory
/// ceiling).
#[derive(Debug, Default)]
pub struct ModerationAnalyzer {
    collection_end: Datetime,
    /// Post URI → firehose arrival time, aged past the reaction window.
    post_created: BTreeMap<String, Datetime>,
    /// Posts per month (bounded by the number of months).
    posts_per_month: BTreeMap<String, u64>,
    /// Per-labeler accumulators, keyed by DID.
    accs: BTreeMap<String, LabelerAcc>,
    /// Labeled object → labeler DIDs.
    objects: BTreeMap<String, BTreeSet<String>>,
    object_kind: BTreeMap<String, LabelTargetKind>,
    /// Labeled post → its creation month (bounded by labeled objects).
    labeled_post_month: BTreeMap<String, String>,
    value_counts: BTreeMap<String, u64>,
    value_reactions: BTreeMap<String, Vec<f64>>,
    per_target_kind: BTreeMap<LabelTargetKind, BTreeMap<String, u64>>,
    raw_values: BTreeSet<String>,
    applied_values: BTreeSet<String>,
    interactions: u64,
    rescissions: u64,
    likes_on_accounts: BTreeMap<String, u64>,
    pending: Vec<PendingReaction>,
    peak_post_index: usize,
}

impl ModerationAnalyzer {
    /// A fresh accumulator.
    pub fn new() -> ModerationAnalyzer {
        ModerationAnalyzer::default()
    }

    /// Current size of the post-creation index (the bounded-memory probe
    /// used by the streaming bench).
    pub fn post_index_len(&self) -> usize {
        self.post_created.len()
    }

    /// Largest size the post-creation index ever reached.
    pub fn peak_post_index(&self) -> usize {
        self.peak_post_index
    }

    /// Record one measured reaction: the post's creation month (for the
    /// last-month labeled share), the per-labeler delta and the per-value
    /// delta.
    fn record_reaction(
        &mut self,
        labeler: &str,
        value: &str,
        object: &str,
        post_created: Datetime,
        label_created: Datetime,
    ) {
        let delta = (label_created.timestamp() - post_created.timestamp()).max(0) as f64;
        self.labeled_post_month
            .insert(object.to_string(), month_of(post_created));
        if let Some(acc) = self.accs.get_mut(labeler) {
            acc.reactions.push(delta);
        }
        self.value_reactions
            .entry(value.to_string())
            .or_default()
            .push(delta);
    }
}

impl Analyzer for ModerationAnalyzer {
    type Output = ModerationReport;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        match obs {
            Observation::WindowStart { collection_end, .. } => {
                self.collection_end = *collection_end;
            }
            // Age out the post index: a label for a post always surfaces
            // within the bounded reaction window, so entries older than the
            // window (plus one day of publication slack) can never match.
            Observation::DayBoundary { day } => {
                let cutoff = day.timestamp() - (REACTION_WINDOW_DAYS + 1) * 86_400;
                self.post_created.retain(|_, t| t.timestamp() >= cutoff);
            }
            // Post creation times from firehose commit ops (the paper
            // computes reaction times against posts received from the
            // firehose since Mar 6).
            Observation::Firehose(event) => {
                if let EventBody::Commit { did, ops, .. } = &event.body {
                    for op in ops {
                        if op.collection() == known::POST && op.cid.is_some() {
                            let uri = format!("at://{did}/{}", op.key);
                            if let std::collections::btree_map::Entry::Vacant(e) =
                                self.post_created.entry(uri)
                            {
                                e.insert(event.time);
                                *self
                                    .posts_per_month
                                    .entry(month_of(event.time))
                                    .or_insert(0) += 1;
                            }
                        }
                    }
                    self.peak_post_index = self.peak_post_index.max(self.post_created.len());
                }
            }
            Observation::Labeler(entry) => {
                let acc = self.accs.entry(entry.did.to_string()).or_default();
                acc.meta = Some(LabelerMeta {
                    name: entry.name.clone(),
                    operator: entry.operator,
                    hosting: entry.hosting,
                    functional: entry.functional,
                });
            }
            Observation::Labels { src, labels } => {
                let key = src.to_string();
                for label in labels.iter() {
                    self.interactions += 1;
                    self.raw_values.insert(label.value.clone());
                    let acc = self.accs.entry(key.clone()).or_default();
                    acc.stream_entries += 1;
                    if label.negated {
                        self.rescissions += 1;
                        continue;
                    }
                    acc.applied += 1;
                    *acc.values.entry(label.value.clone()).or_insert(0) += 1;
                    let month = month_of(label.created_at);
                    *acc.per_month.entry(month.clone()).or_insert(0) += 1;
                    acc.first_month = match acc.first_month.take() {
                        Some(m) => Some(m.min(month)),
                        None => Some(month),
                    };
                    self.applied_values.insert(label.value.clone());
                    *self.value_counts.entry(label.value.clone()).or_insert(0) += 1;
                    let object = label.target.uri();
                    acc.objects.insert(object.clone());
                    self.objects
                        .entry(object.clone())
                        .or_default()
                        .insert(key.clone());
                    self.object_kind.insert(object.clone(), label.target.kind());
                    *self
                        .per_target_kind
                        .entry(label.target.kind())
                        .or_default()
                        .entry(label.value.clone())
                        .or_insert(0) += 1;
                    // Reaction time against the post's firehose arrival.
                    match self.post_created.get(&object).copied() {
                        Some(created) => {
                            self.record_reaction(
                                &key,
                                &label.value,
                                &object,
                                created,
                                label.created_at,
                            );
                        }
                        None => self.pending.push(PendingReaction {
                            object,
                            value: label.value.clone(),
                            labeler: key.clone(),
                            label_created: label.created_at,
                        }),
                    }
                }
            }
            Observation::Repo(repo) => {
                // Table 3's likes column: likes on labeler accounts.
                for (_, _, record) in &repo.records {
                    if let Record::Like(like) = record {
                        *self
                            .likes_on_accounts
                            .entry(like.subject.did().to_string())
                            .or_insert(0) += 1;
                    }
                }
            }
            _ => {}
        }
    }

    fn merge(&mut self, other: Self) {
        if self.collection_end == Datetime::default() {
            self.collection_end = other.collection_end;
        }
        // Post indices are disjoint-keyed (each post arrives once) except
        // under artificial replays; first writer wins either way.
        for (uri, time) in other.post_created {
            self.post_created.entry(uri).or_insert(time);
        }
        self.peak_post_index = self.peak_post_index.max(other.peak_post_index);
        for (month, count) in other.posts_per_month {
            *self.posts_per_month.entry(month).or_insert(0) += count;
        }
        for (did, acc) in other.accs {
            self.accs.entry(did).or_default().absorb(acc);
        }
        for (object, dids) in other.objects {
            self.objects.entry(object).or_default().extend(dids);
        }
        for (object, kind) in other.object_kind {
            self.object_kind.entry(object).or_insert(kind);
        }
        for (object, month) in other.labeled_post_month {
            self.labeled_post_month.entry(object).or_insert(month);
        }
        for (value, count) in other.value_counts {
            *self.value_counts.entry(value).or_insert(0) += count;
        }
        for (value, reactions) in other.value_reactions {
            self.value_reactions
                .entry(value)
                .or_default()
                .extend(reactions);
        }
        for (kind, values) in other.per_target_kind {
            let entry = self.per_target_kind.entry(kind).or_default();
            for (value, count) in values {
                *entry.entry(value).or_insert(0) += count;
            }
        }
        self.raw_values.extend(other.raw_values);
        self.applied_values.extend(other.applied_values);
        self.interactions += other.interactions;
        self.rescissions += other.rescissions;
        for (did, count) in other.likes_on_accounts {
            *self.likes_on_accounts.entry(did).or_insert(0) += count;
        }
        // Re-resolve pending reactions against the combined post index: a
        // stream split can separate a label from its post, and the merge
        // must heal exactly that.
        let mut pending = std::mem::take(&mut self.pending);
        pending.extend(other.pending);
        for p in pending {
            match self.post_created.get(&p.object).copied() {
                Some(created) => {
                    self.record_reaction(&p.labeler, &p.value, &p.object, created, p.label_created)
                }
                None => self.pending.push(p),
            }
        }
    }

    fn finish(self, _ctx: &StudyCtx<'_>) -> ModerationReport {
        // Labels whose posts never appeared on the stream (pre-window
        // posts) keep their volume counts but have no reaction time — drop
        // the leftover pendings, mirroring the batch scan.
        let official: Option<String> = self
            .accs
            .iter()
            .filter(|(_, acc)| {
                acc.meta
                    .as_ref()
                    .map(|m| m.operator == LabelerOperator::BlueskyOfficial)
                    .unwrap_or(false)
            })
            .map(|(did, _)| did.clone())
            .next();

        let mut announced = 0u64;
        let mut functional = 0u64;
        let mut active = 0u64;
        let mut hosting = (0u64, 0u64, 0u64);
        for acc in self.accs.values() {
            let Some(meta) = &acc.meta else { continue };
            announced += 1;
            if meta.functional {
                functional += 1;
            }
            if acc.stream_entries > 0 {
                active += 1;
            }
            match meta.hosting {
                HostingClass::Cloud => hosting.0 += 1,
                HostingClass::Residential => hosting.1 += 1,
                HostingClass::Dead => hosting.2 += 1,
            }
        }

        let community = |acc: &LabelerAcc| -> bool {
            acc.meta
                .as_ref()
                .map(|m| m.operator == LabelerOperator::Community)
                .unwrap_or(true)
        };

        let total_applied: u64 = self.accs.values().map(|a| a.applied).sum();
        let mut table6 = Vec::new();
        for (did, acc) in &self.accs {
            if acc.applied == 0 {
                continue;
            }
            let mut top: Vec<(String, u64)> =
                acc.values.iter().map(|(v, c)| (v.clone(), *c)).collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            table6.push(LabelerReaction {
                did: did.clone(),
                name: acc
                    .meta
                    .as_ref()
                    .map(|m| m.name.clone())
                    .unwrap_or_default(),
                community: community(acc),
                unique_values: top.len() as u64,
                top_values: top.iter().take(3).map(|(v, _)| v.clone()).collect(),
                total: acc.applied,
                share: stats::share(acc.applied, total_applied.max(1)),
                median_reaction_secs: stats::median(&acc.reactions),
                iqd_reaction_secs: stats::iqd(&acc.reactions),
            });
        }
        table6.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));

        // Figure 4 series with cumulative community labeler count.
        let mut per_month: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for acc in self.accs.values() {
            let is_community = community(acc);
            for (month, count) in &acc.per_month {
                let slot = per_month.entry(month.clone()).or_insert((0, 0));
                if is_community {
                    slot.1 += count;
                } else {
                    slot.0 += count;
                }
            }
        }
        let mut labels_by_month: Vec<(String, u64, u64, u64)> = Vec::new();
        let mut seen_labelers: BTreeSet<String> = BTreeSet::new();
        for (month, (bluesky, community_count)) in &per_month {
            for (did, acc) in &self.accs {
                if !community(acc) {
                    continue;
                }
                if let Some(first) = &acc.first_month {
                    if first <= month {
                        seen_labelers.insert(did.clone());
                    }
                }
            }
            labels_by_month.push((
                month.clone(),
                *bluesky,
                *community_count,
                seen_labelers.len() as u64,
            ));
        }
        let community_share_last_month = labels_by_month
            .last()
            .map(|(_, b, c, _)| stats::share(*c, b + c))
            .unwrap_or(0.0);

        // Last-month labeled-post share: posts created in the last full month
        // of the window vs labeled objects created in that month.
        let last_month = month_of(self.collection_end.plus_days(-15));
        let posts_last_month = self.posts_per_month.get(&last_month).copied().unwrap_or(0);
        let labeled_posts_last_month = self
            .labeled_post_month
            .values()
            .filter(|month| **month == last_month)
            .count() as u64;

        // Table 3: top community labelers with likes on their accounts.
        let mut table3: Vec<(String, u64, u64)> = self
            .accs
            .iter()
            .filter(|(_, acc)| community(acc) && acc.applied > 0)
            .map(|(did, acc)| {
                let name = acc
                    .meta
                    .as_ref()
                    .map(|m| m.name.clone())
                    .unwrap_or_default();
                let likes = self.likes_on_accounts.get(did).copied().unwrap_or(0);
                (name, acc.applied, likes)
            })
            .collect();
        table3.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        table3.truncate(5);

        // Table 4: label targets.
        let total_objects = self.objects.len() as u64;
        let mut table4 = Vec::new();
        for kind in [
            LabelTargetKind::Post,
            LabelTargetKind::Account,
            LabelTargetKind::BannerAvatar,
        ] {
            let count = self.object_kind.values().filter(|k| **k == kind).count() as u64;
            let mut top: Vec<(String, u64)> = self
                .per_target_kind
                .get(&kind)
                .map(|m| m.iter().map(|(v, c)| (v.clone(), *c)).collect())
                .unwrap_or_default();
            top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            top.truncate(5);
            table4.push((
                kind.display_name().to_string(),
                count,
                stats::share(count, total_objects.max(1)),
                top,
            ));
        }

        // Figure 6: per-value reaction times. A value counts as community
        // when every labeler applying it is community-operated.
        let mut value_community: BTreeMap<&String, bool> = BTreeMap::new();
        for acc in self.accs.values() {
            let is_community = community(acc);
            for value in acc.values.keys() {
                value_community
                    .entry(value)
                    .and_modify(|c| *c = *c && is_community)
                    .or_insert(is_community);
            }
        }
        let mut figure6: Vec<(String, u64, f64, bool)> = self
            .value_counts
            .iter()
            .map(|(value, count)| {
                let median = self
                    .value_reactions
                    .get(value)
                    .and_then(|v| stats::median(v))
                    .unwrap_or(0.0);
                (
                    value.clone(),
                    *count,
                    median,
                    value_community.get(value).copied().unwrap_or(true),
                )
            })
            .collect();
        figure6.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        // Overlap statistics.
        let multi_service = self.objects.values().filter(|s| s.len() > 1).count() as u64;
        let bluesky_objects: BTreeSet<&String> = official
            .as_ref()
            .and_then(|did| self.accs.get(did))
            .map(|acc| acc.objects.iter().collect())
            .unwrap_or_default();
        let mut community_objects: BTreeSet<&String> = BTreeSet::new();
        for (did, acc) in &self.accs {
            if Some(did) != official.as_ref() {
                community_objects.extend(acc.objects.iter());
            }
        }
        let both = bluesky_objects.intersection(&community_objects).count() as u64;

        ModerationReport {
            labeler_counts: (announced, functional, active),
            hosting,
            labels_by_month,
            community_share_last_month,
            interactions: (self.interactions, self.rescissions),
            unique_objects: total_objects,
            last_month_posts_labeled_share: stats::share(
                labeled_posts_last_month,
                posts_last_month.max(1),
            ),
            label_values: (
                self.raw_values.len() as u64,
                self.applied_values.len() as u64,
            ),
            multi_service_share: stats::share(multi_service, total_objects.max(1)),
            bluesky_community_overlap_share: stats::share(both, total_objects.max(1)),
            table3,
            table4,
            table6,
            figure6,
        }
    }
}

/// Compute the §6 moderation analyses (batch API).
pub fn moderation_report(datasets: &Datasets, world: &World) -> ModerationReport {
    replay(ModerationAnalyzer::new(), datasets, &StudyCtx::new(world))
}

impl ModerationReport {
    /// Render §6, Tables 3/4/6 and Figures 4/5/6.
    pub fn render(&self) -> String {
        let mut out = String::from("Section 6: content moderation\n");
        let (a, f, act) = self.labeler_counts;
        out.push_str(&format!(
            "Labelers: {a} announced, {f} functional, {act} issued ≥1 label\n"
        ));
        let (cloud, res, dead) = self.hosting;
        out.push_str(&format!(
            "Endpoints: {cloud} cloud / {res} residential / {dead} not functional\n"
        ));
        out.push_str(&format!(
            "Label interactions: {} (incl. {} rescinded), {} unique objects, {} -> {} label values\n",
            self.interactions.0, self.interactions.1, self.unique_objects,
            self.label_values.0, self.label_values.1
        ));
        out.push_str(&format!(
            "Community share of labels in final month: {:.1} %\n",
            self.community_share_last_month
        ));
        out.push_str(&format!(
            "Share of final-month posts labeled: {:.2} %   multi-service objects: {:.1} %   Bluesky∩community objects: {:.1} %\n",
            self.last_month_posts_labeled_share, self.multi_service_share,
            self.bluesky_community_overlap_share
        ));
        out.push_str("Figure 4: labels per month by source (+ cumulative community labelers)\n");
        for (month, bluesky, community, labelers) in &self.labels_by_month {
            out.push_str(&format!(
                "  {month} | bluesky {bluesky:>8} | community {community:>8} | labelers {labelers}\n"
            ));
        }
        out.push_str("Table 3: Top community labelers by labels applied\n");
        for (i, (name, count, likes)) in self.table3.iter().enumerate() {
            out.push_str(&format!(
                "  {} {name:<42} {count:>8} labels  {likes:>5} likes\n",
                i + 1
            ));
        }
        out.push_str("Table 4: Label targets with most-applied labels\n");
        for (kind, count, share, top) in &self.table4 {
            let tops: Vec<String> = top.iter().map(|(v, c)| format!("{v} ({c})")).collect();
            out.push_str(&format!(
                "  {kind:<14} {count:>8} ({share:>5.2} %)  {}\n",
                tops.join(", ")
            ));
        }
        out.push_str("Table 6 / Figure 5: per-labeler volumes and reaction times\n");
        for row in &self.table6 {
            out.push_str(&format!(
                "  {:<40} {:>8} labels ({:>5.2} %)  median {}  iqd {}  [{}]\n",
                row.name,
                row.total,
                row.share,
                row.median_reaction_secs
                    .map(|v| format!("{v:.2}s"))
                    .unwrap_or_else(|| "-".into()),
                row.iqd_reaction_secs
                    .map(|v| format!("{v:.2}s"))
                    .unwrap_or_else(|| "-".into()),
                if row.community {
                    "community"
                } else {
                    "bluesky"
                },
            ));
        }
        out.push_str("Figure 6: objects per label value vs reaction time\n");
        for (value, count, median, community) in self.figure6.iter().take(20) {
            out.push_str(&format!(
                "  {value:<28} {count:>8} objects  median {median:>10.2}s  [{}]\n",
                if *community { "community" } else { "bluesky" }
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// §7 / Table 5 / Figures 7–12
// ---------------------------------------------------------------------------

/// The §7 recommendation report.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendationReport {
    /// Reachable feed generators.
    pub total_feeds: u64,
    /// Feeds that never curated a post, and their share (%).
    pub never_curated: (u64, f64),
    /// Language distribution of descriptions `(language, share %)`.
    pub description_languages: Vec<(String, f64)>,
    /// Figure 8: most common description words.
    pub top_words: Vec<(String, u64)>,
    /// Figure 9: top labels on feed-curated posts.
    pub feed_post_labels: Vec<(String, u64)>,
    /// Share of feeds with ≥10 % labeled content (%).
    pub heavily_labeled_share: f64,
    /// Figure 7: cumulative `(month, feeds, likes on feeds, follows on
    /// creators)`.
    pub cumulative_growth: Vec<(String, u64, u64, u64)>,
    /// Figure 10: `(feed name, posts, likes)` for the most extreme feeds.
    pub posts_vs_likes: Vec<(String, u64, u64)>,
    /// Figure 11: mean in/out-degree of feed creators vs other users.
    pub creator_degrees: ((f64, f64), (f64, f64)),
    /// Pearson r of (#feeds created, followers).
    pub r_feeds_followers: Option<f64>,
    /// Pearson r of (sum of likes on created feeds, followers).
    pub r_likes_followers: Option<f64>,
    /// Feeds-per-account distribution `(1 feed %, 2-10 %, >100 count, max)`.
    pub feeds_per_account: (f64, f64, u64, u64),
    /// Figure 12 / Table 5: per-platform `(name, feeds, share %, posts share
    /// %, likes share %)`.
    pub platform_shares: Vec<(String, u64, f64, f64, f64)>,
}

/// Incremental §7 recommendation analyses.
///
/// All per-feed state is keyed by feed URI (so a feed observed by several
/// shards merges by [`crate::datasets::FeedGenEntry::absorb`]); everything
/// that needs global context — the label index, the follow graph, the
/// creator set — is resolved at finish time, after all merges.
#[derive(Debug, Default)]
pub struct RecommendationAnalyzer {
    /// Feed URI → merged dataset entry.
    feeds: BTreeMap<String, crate::datasets::FeedGenEntry>,
    /// `(object uri, labeler, value)` → `(applied, negated)`.
    labels: BTreeMap<(String, String, String), (bool, bool)>,
    /// Deduplicated follow edges `(author, subject)` from the repositories.
    follow_edges: BTreeSet<(String, String)>,
    /// DIDs with a repository snapshot (the §7 user universe).
    actors: BTreeSet<String>,
    /// Likes on feed-generator records per month (Figure 7).
    feed_likes_by_month: BTreeMap<String, u64>,
    /// Follow records per subject and month (filtered to creators at
    /// finish).
    follows_by_subject_month: BTreeMap<String, BTreeMap<String, u64>>,
}

impl RecommendationAnalyzer {
    /// A fresh accumulator.
    pub fn new() -> RecommendationAnalyzer {
        RecommendationAnalyzer::default()
    }
}

impl Analyzer for RecommendationAnalyzer {
    type Output = RecommendationReport;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        match obs {
            Observation::Labels { src, labels } => {
                // Figure 9's label index: raw interactions folded into
                // (applied, negated) flags per (object, labeler, value) —
                // the order-insensitive form of `effective_labels`.
                for label in labels.iter() {
                    let key = (label.target.uri(), src.to_string(), label.value.clone());
                    let entry = self.labels.entry(key).or_insert((false, false));
                    if label.negated {
                        entry.1 = true;
                    } else {
                        entry.0 = true;
                    }
                }
            }
            Observation::FeedGenerator(feed) => {
                let key = feed.uri.to_string();
                match self.feeds.get_mut(&key) {
                    Some(existing) => existing.absorb((*feed).clone()),
                    None => {
                        self.feeds.insert(key, (*feed).clone());
                    }
                }
            }
            Observation::Repo(repo) => {
                self.actors.insert(repo.did.to_string());
                for (_, _, record) in &repo.records {
                    match record {
                        // Figure 7: likes on feed-generator records,
                        // recognised structurally so no cross-category state
                        // is needed at observe time.
                        Record::Like(like)
                            if like
                                .subject
                                .collection()
                                .map(|c| c.as_str() == known::FEED_GENERATOR)
                                .unwrap_or(false) =>
                        {
                            *self
                                .feed_likes_by_month
                                .entry(month_of(like.created_at))
                                .or_insert(0) += 1;
                        }
                        Record::Follow(follow) => {
                            let subject = follow.subject.to_string();
                            self.follow_edges
                                .insert((repo.did.to_string(), subject.clone()));
                            *self
                                .follows_by_subject_month
                                .entry(subject)
                                .or_default()
                                .entry(month_of(follow.created_at))
                                .or_insert(0) += 1;
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, entry) in other.feeds {
            match self.feeds.get_mut(&key) {
                Some(existing) => existing.absorb(entry),
                None => {
                    self.feeds.insert(key, entry);
                }
            }
        }
        for (key, (applied, negated)) in other.labels {
            let entry = self.labels.entry(key).or_insert((false, false));
            entry.0 |= applied;
            entry.1 |= negated;
        }
        self.follow_edges.extend(other.follow_edges);
        self.actors.extend(other.actors);
        for (month, count) in other.feed_likes_by_month {
            *self.feed_likes_by_month.entry(month).or_insert(0) += count;
        }
        for (subject, months) in other.follows_by_subject_month {
            let entry = self.follows_by_subject_month.entry(subject).or_default();
            for (month, count) in months {
                *entry.entry(month).or_insert(0) += count;
            }
        }
    }

    fn finish(self, _ctx: &StudyCtx<'_>) -> RecommendationReport {
        let total_feeds = self.feeds.len() as u64;

        // Effective label index: applied and never negated.
        let mut label_by_uri: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for ((uri, _src, value), (applied, negated)) in &self.labels {
            if *applied && !*negated {
                label_by_uri.entry(uri).or_default().push(value);
            }
        }

        let mut never = 0u64;
        let mut langs: Vec<&'static str> = Vec::new();
        let mut words: BTreeMap<String, u64> = BTreeMap::new();
        let mut heavily_labeled = 0u64;
        let mut feed_label_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut by_month: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        let mut posts_vs_likes: Vec<(String, u64, u64)> = Vec::new();
        let mut feeds_per_creator: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut total_posts = 0u64;
        let mut total_likes = 0u64;
        let mut per_platform: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();

        for feed in self.feeds.values() {
            let served = feed.served_posts();
            if served.is_empty() {
                never += 1;
            }
            langs.push(langdetect::detect(&feed.description));
            for word in feed.description.split_whitespace() {
                let cleaned: String = word
                    .chars()
                    .filter(|c| c.is_alphanumeric())
                    .collect::<String>()
                    .to_lowercase();
                if cleaned.len() >= 3 {
                    *words.entry(cleaned).or_insert(0) += 1;
                }
            }
            // Figure 9 + heavily-labeled share.
            if !served.is_empty() {
                let labeled = served
                    .iter()
                    .filter(|post| label_by_uri.contains_key(&post.uri.to_string()))
                    .count();
                if labeled as f64 / served.len() as f64 >= 0.10 {
                    heavily_labeled += 1;
                    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
                    for post in &served {
                        if let Some(values) = label_by_uri.get(&post.uri.to_string()) {
                            for value in values {
                                *counts.entry((*value).clone()).or_insert(0) += 1;
                            }
                        }
                    }
                    if let Some((top_value, _)) = counts.into_iter().max_by_key(|(_, c)| *c) {
                        *feed_label_counts.entry(top_value).or_insert(0) += 1;
                    }
                }
            }
            by_month.entry(month_of(feed.created_at)).or_default().0 += 1;
            posts_vs_likes.push((
                feed.display_name.clone(),
                served.len() as u64,
                feed.like_count,
            ));
            let creator = feeds_per_creator
                .entry(feed.creator.to_string())
                .or_insert((0, 0));
            creator.0 += 1;
            creator.1 += feed.like_count;
            total_posts += served.len() as u64;
            total_likes += feed.like_count;
            let platform = per_platform.entry(feed.platform.clone()).or_default();
            platform.0 += 1;
            platform.1 += served.len() as u64;
            platform.2 += feed.like_count;
        }

        let lang_counts = stats::top_counts(langs.iter().copied());
        let description_languages = lang_counts
            .iter()
            .map(|(l, c)| ((*l).to_string(), stats::share(*c, total_feeds.max(1))))
            .collect();

        let mut top_words: Vec<(String, u64)> = words.into_iter().collect();
        top_words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        top_words.truncate(15);

        let mut feed_post_labels: Vec<(String, u64)> = feed_label_counts.into_iter().collect();
        feed_post_labels.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        feed_post_labels.truncate(10);

        // Figure 7: likes on feeds and follows on creators join the
        // feed-creation series.
        for (month, count) in &self.feed_likes_by_month {
            by_month.entry(month.clone()).or_default().1 += count;
        }
        let creator_dids: BTreeSet<&String> = feeds_per_creator.keys().collect();
        for (subject, months) in &self.follows_by_subject_month {
            if creator_dids.contains(subject) {
                for (month, count) in months {
                    by_month.entry(month.clone()).or_default().2 += count;
                }
            }
        }
        let mut cumulative_growth = Vec::new();
        let mut acc = (0u64, 0u64, 0u64);
        for (month, (feeds, likes, follows)) in by_month {
            acc.0 += feeds;
            acc.1 += likes;
            acc.2 += follows;
            cumulative_growth.push((month, acc.0, acc.1, acc.2));
        }

        // Figure 10: posts vs likes extremes.
        posts_vs_likes.sort_by(|a, b| (b.1 + b.2).cmp(&(a.1 + a.2)).then_with(|| a.0.cmp(&b.0)));
        posts_vs_likes.truncate(10);

        // Figure 11 + correlations: degrees from the deduplicated follow
        // graph of the repositories dataset.
        let mut follows_of: BTreeMap<&String, u64> = BTreeMap::new();
        let mut followers_of: BTreeMap<&String, u64> = BTreeMap::new();
        for (author, subject) in &self.follow_edges {
            *follows_of.entry(author).or_insert(0) += 1;
            *followers_of.entry(subject).or_insert(0) += 1;
        }
        let mut creator_in = Vec::new();
        let mut creator_out = Vec::new();
        let mut other_in = Vec::new();
        let mut other_out = Vec::new();
        let mut x_feeds = Vec::new();
        let mut x_likes = Vec::new();
        let mut y_followers = Vec::new();
        for did in &self.actors {
            let followers = followers_of.get(did).copied().unwrap_or(0) as f64;
            let follows = follows_of.get(did).copied().unwrap_or(0) as f64;
            if let Some((feeds, likes)) = feeds_per_creator.get(did) {
                creator_in.push(followers);
                creator_out.push(follows);
                x_feeds.push(*feeds as f64);
                x_likes.push(*likes as f64);
                y_followers.push(followers);
            } else {
                other_in.push(followers);
                other_out.push(follows);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let creator_degrees = (
            (mean(&creator_in), mean(&creator_out)),
            (mean(&other_in), mean(&other_out)),
        );
        let r_feeds_followers = stats::pearson(&x_feeds, &y_followers);
        let r_likes_followers = stats::pearson(&x_likes, &y_followers);

        // Feeds per account.
        let one = feeds_per_creator.values().filter(|(f, _)| *f == 1).count() as u64;
        let two_to_ten = feeds_per_creator
            .values()
            .filter(|(f, _)| (2..=10).contains(f))
            .count() as u64;
        let over_100 = feeds_per_creator.values().filter(|(f, _)| *f > 100).count() as u64;
        let max_feeds = feeds_per_creator
            .values()
            .map(|(f, _)| *f)
            .max()
            .unwrap_or(0);
        let creators = feeds_per_creator.len().max(1) as u64;

        // Figure 12 / Table 5: platform shares.
        let mut platform_shares: Vec<(String, u64, f64, f64, f64)> = per_platform
            .into_iter()
            .map(|(name, (feeds, posts, likes))| {
                (
                    name,
                    feeds,
                    stats::share(feeds, total_feeds.max(1)),
                    stats::share(posts, total_posts.max(1)),
                    stats::share(likes, total_likes.max(1)),
                )
            })
            .collect();
        platform_shares.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        RecommendationReport {
            total_feeds,
            never_curated: (never, stats::share(never, total_feeds.max(1))),
            description_languages,
            top_words,
            feed_post_labels,
            heavily_labeled_share: stats::share(heavily_labeled, total_feeds.max(1)),
            cumulative_growth,
            posts_vs_likes,
            creator_degrees,
            r_feeds_followers,
            r_likes_followers,
            feeds_per_account: (
                stats::share(one, creators),
                stats::share(two_to_ten, creators),
                over_100,
                max_feeds,
            ),
            platform_shares,
        }
    }
}

/// Compute the §7 recommendation analyses (batch API).
pub fn recommendation_report(datasets: &Datasets, world: &World) -> RecommendationReport {
    replay(
        RecommendationAnalyzer::new(),
        datasets,
        &StudyCtx::new(world),
    )
}

impl RecommendationReport {
    /// Render §7, Table 5 and Figures 7–12.
    pub fn render(&self) -> String {
        let mut out = String::from("Section 7: content recommendation\n");
        out.push_str(&format!(
            "Feed generators: {}   never curated: {} ({:.1} %)   ≥10 % labeled content: {:.2} %\n",
            self.total_feeds,
            self.never_curated.0,
            self.never_curated.1,
            self.heavily_labeled_share
        ));
        out.push_str("Description languages: ");
        let langs: Vec<String> = self
            .description_languages
            .iter()
            .take(6)
            .map(|(l, s)| format!("{l} {s:.1}%"))
            .collect();
        out.push_str(&format!("{}\n", langs.join(", ")));
        out.push_str("Figure 7: cumulative feeds / likes on feeds / follows on creators\n");
        for (month, feeds, likes, follows) in &self.cumulative_growth {
            out.push_str(&format!(
                "  {month} | feeds {feeds:>6} | likes {likes:>8} | creator follows {follows:>8}\n"
            ));
        }
        out.push_str("Figure 8: most common description words\n  ");
        let words: Vec<String> = self
            .top_words
            .iter()
            .map(|(w, c)| format!("{w}({c})"))
            .collect();
        out.push_str(&format!("{}\n", words.join(" ")));
        out.push_str("Figure 9: top labels on heavily-labeled feeds\n");
        for (value, count) in &self.feed_post_labels {
            out.push_str(&format!("  {value:<24} {count}\n"));
        }
        out.push_str("Figure 10: most active / most liked feeds (posts, likes)\n");
        for (name, posts, likes) in &self.posts_vs_likes {
            out.push_str(&format!(
                "  {name:<28} {posts:>7} posts  {likes:>6} likes\n"
            ));
        }
        let ((ci, co), (oi, oo)) = self.creator_degrees;
        out.push_str(&format!(
            "Figure 11: mean degree — feed creators in {ci:.1} / out {co:.1}; other users in {oi:.1} / out {oo:.1}\n"
        ));
        out.push_str(&format!(
            "Correlations: #feeds vs followers r = {}   Σ likes on feeds vs followers r = {}\n",
            self.r_feeds_followers
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            self.r_likes_followers
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "n/a".into()),
        ));
        let (one, two_ten, over100, max) = self.feeds_per_account;
        out.push_str(&format!(
            "Feeds per account: {one:.1} % manage one, {two_ten:.1} % manage 2–10, {over100} accounts manage >100 (max {max})\n"
        ));
        out.push_str("Figure 12 / Table 5: feeds per hosting platform\n");
        for (name, feeds, share, posts_share, likes_share) in &self.platform_shares {
            out.push_str(&format!(
                "  {name:<22} {feeds:>6} feeds ({share:>5.2} %)  posts {posts_share:>5.1} %  likes {likes_share:>5.1} %\n"
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// §9: firehose volume
// ---------------------------------------------------------------------------

/// §9 firehose volume estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct FirehoseVolume {
    /// Mean bytes per day observed on the firehose during collection.
    pub bytes_per_day: f64,
    /// The same figure extrapolated to the full network size (multiplying by
    /// the scale factor).
    pub extrapolated_full_network: f64,
}

/// Incremental §9 firehose-volume accumulator.
#[derive(Debug, Default)]
pub struct FirehoseVolumeAnalyzer {
    per_day: BTreeMap<i64, u64>,
}

impl FirehoseVolumeAnalyzer {
    /// A fresh accumulator.
    pub fn new() -> FirehoseVolumeAnalyzer {
        FirehoseVolumeAnalyzer::default()
    }
}

impl Analyzer for FirehoseVolumeAnalyzer {
    type Output = FirehoseVolume;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        if let Observation::Firehose(event) = obs {
            *self.per_day.entry(event.time.day_index()).or_insert(0) += event.wire_size() as u64;
        }
    }

    fn merge(&mut self, other: Self) {
        for (day, bytes) in other.per_day {
            *self.per_day.entry(day).or_insert(0) += bytes;
        }
    }

    fn finish(self, ctx: &StudyCtx<'_>) -> FirehoseVolume {
        let days = self.per_day.len().max(1) as f64;
        let total: u64 = self.per_day.values().sum();
        let bytes_per_day = total as f64 / days;
        FirehoseVolume {
            bytes_per_day,
            extrapolated_full_network: bytes_per_day * ctx.world().config.scale as f64,
        }
    }
}

/// Compute the §9 firehose-volume estimate (batch API).
pub fn firehose_volume(datasets: &Datasets, world: &World) -> FirehoseVolume {
    replay(
        FirehoseVolumeAnalyzer::new(),
        datasets,
        &StudyCtx::new(world),
    )
}

impl FirehoseVolume {
    /// Render the volume estimate.
    pub fn render(&self) -> String {
        format!(
            "Section 9: firehose volume ≈ {:.1} MB/day at simulation scale, ≈ {:.1} GB/day extrapolated to the full network\n",
            self.bytes_per_day / 1e6,
            self.extrapolated_full_network / 1e9
        )
    }
}

/// Table 5's static feature matrix (re-exported from the feedgen crate and
/// rendered alongside the measured platform shares).
pub fn table5_feature_matrix() -> String {
    let platforms = bsky_feedgen::faas::default_platforms();
    let mut out = String::from("Table 5: Feed-Generator-as-a-Service feature comparison\n");
    out.push_str("Platform              | features | regex | pricing\n");
    for p in &platforms {
        out.push_str(&format!(
            "{:<22} | {:>8} | {:>5} | {:?}\n",
            p.name,
            p.feature_count(),
            if p.filters.regex_text { "yes" } else { "no" },
            p.pricing
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Collector;
    use crate::pipeline::for_each_observation;
    use bsky_simnet::SimRng;
    use bsky_workload::ScenarioConfig;

    fn run_small() -> (World, Datasets) {
        let mut config = ScenarioConfig::test_scale(11);
        config.start = Datetime::from_ymd(2024, 2, 15).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 25).unwrap();
        config.scale = 30_000;
        let mut world = World::new(config);
        let datasets = Collector::new().run(&mut world);
        (world, datasets)
    }

    #[test]
    fn all_analyses_run_and_render() {
        let (world, datasets) = run_small();

        let t1 = table1_firehose_breakdown(&datasets);
        assert!(t1.total > 0);
        let commit_share = t1.rows.iter().find(|r| r.0 == "Repo Commit").unwrap().2;
        assert!(commit_share > 90.0, "commit share {commit_share}");
        assert!(t1.render().contains("Repo Commit"));

        let activity = activity_series(&datasets);
        assert!(!activity.monthly.is_empty());
        assert!(activity.totals.1 > activity.totals.0, "likes > posts");
        assert!(activity.render_figure1().contains("Totals"));
        assert!(!activity.render_figure2().is_empty());

        let s4 = section4_accounts(&datasets);
        assert!(!s4.most_followed.is_empty());
        assert!(s4.render().contains("Most followed"));

        let identity = identity_report(&datasets, &world);
        assert!(identity.total_handles > 0);
        assert!(identity.bsky_social.1 > 90.0);
        assert!(identity.proofs.2 > 80.0);
        assert!(identity.render().contains("Table 2"));

        let moderation = moderation_report(&datasets, &world);
        assert!(moderation.labeler_counts.0 >= 40);
        assert!(moderation.interactions.0 > 0);
        assert!(!moderation.table6.is_empty());
        assert!(moderation.community_share_last_month > 50.0);
        assert!(moderation.render().contains("Table 3"));

        let recommendation = recommendation_report(&datasets, &world);
        assert!(recommendation.total_feeds > 10);
        assert!(recommendation.never_curated.1 > 0.0);
        assert!(!recommendation.platform_shares.is_empty());
        assert_eq!(recommendation.platform_shares[0].0, "Skyfeed");
        assert!(recommendation.render().contains("Figure 12"));

        let volume = firehose_volume(&datasets, &world);
        assert!(volume.bytes_per_day > 0.0);
        assert!(volume.extrapolated_full_network > volume.bytes_per_day);
        assert!(volume.render().contains("firehose volume"));

        assert!(table5_feature_matrix().contains("Skyfeed"));
    }

    #[test]
    fn moderation_reaction_times_distinguish_automation() {
        let (world, datasets) = run_small();
        let moderation = moderation_report(&datasets, &world);
        // The alt-text labeler (automated) must be faster than any manual
        // community labeler that has a measured reaction time.
        let automated: Vec<&LabelerReaction> = moderation
            .table6
            .iter()
            .filter(|r| r.name.contains("Alt Text") || r.name.contains("GIFS"))
            .collect();
        let manual: Vec<&LabelerReaction> = moderation
            .table6
            .iter()
            .filter(|r| r.median_reaction_secs.map(|m| m > 3_600.0).unwrap_or(false))
            .collect();
        if let (Some(fast), Some(slow)) = (automated.first(), manual.first()) {
            assert!(
                fast.median_reaction_secs.unwrap_or(f64::MAX)
                    < slow.median_reaction_secs.unwrap_or(0.0)
            );
        }
        // The most prolific labeler labels far more than the median one.
        if moderation.table6.len() >= 3 {
            let top = moderation.table6[0].total;
            let mid = moderation.table6[moderation.table6.len() / 2].total;
            assert!(top >= mid);
        }
    }

    #[test]
    fn moderation_post_index_is_aged_out() {
        let mut config = ScenarioConfig::test_scale(13);
        config.start = Datetime::from_ymd(2024, 1, 10).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 25).unwrap();
        config.scale = 30_000;
        let mut world = World::new(config);
        let mut analyzer = ModerationAnalyzer::new();
        struct Probe {
            analyzer: ModerationAnalyzer,
            total_posts: usize,
        }
        impl crate::pipeline::ObservationSink for Probe {
            fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
                if let Observation::Firehose(event) = obs {
                    if let EventBody::Commit { ops, .. } = &event.body {
                        self.total_posts += ops
                            .iter()
                            .filter(|op| op.collection() == known::POST && op.cid.is_some())
                            .count();
                    }
                }
                Analyzer::observe(&mut self.analyzer, obs, ctx);
            }
        }
        analyzer.observe(
            &Observation::WindowStart {
                firehose_collection_start: config.firehose_collection_start,
                collection_end: config.end,
            },
            &StudyCtx::detached(),
        );
        let mut probe = Probe {
            analyzer,
            total_posts: 0,
        };
        Collector::new().stream(&mut world, &mut probe);
        // The aged index peaks far below the total number of posts seen.
        assert!(probe.total_posts > 0);
        assert!(
            probe.analyzer.peak_post_index() < probe.total_posts,
            "peak {} vs total {}",
            probe.analyzer.peak_post_index(),
            probe.total_posts
        );
        // And the final index holds at most the last reaction window.
        assert!(probe.analyzer.post_index_len() <= probe.analyzer.peak_post_index());
    }

    /// The merge law, pinned per analyzer: fold the whole stream vs split
    /// the stream at a random point, fold the halves into two fresh
    /// analyzers, merge, and compare the finished outputs.
    fn assert_split_merge_equals_fold<A, F>(make: F, world: &World, datasets: &Datasets)
    where
        A: Analyzer,
        A::Output: PartialEq + std::fmt::Debug,
        F: Fn() -> A,
    {
        let ctx = StudyCtx::new(world);
        let mut observations = 0usize;
        for_each_observation(datasets, |_| observations += 1);
        let mut whole = make();
        for_each_observation(datasets, |obs| whole.observe(&obs, &ctx));
        let expected = whole.finish(&ctx);
        // Seeded test RNG: reproducible split points.
        let mut rng = SimRng::new(0xfeed);
        for _ in 0..4 {
            let split = rng.range(0..observations.max(1));
            let mut first = make();
            let mut second = make();
            let mut index = 0usize;
            for_each_observation(datasets, |obs| {
                if index < split {
                    first.observe(&obs, &ctx);
                } else {
                    second.observe(&obs, &ctx);
                }
                index += 1;
            });
            first.merge(second);
            let merged = first.finish(&ctx);
            assert!(
                merged == expected,
                "split at {split}/{observations} diverged"
            );
        }
    }

    #[test]
    fn every_analyzer_satisfies_the_merge_law() {
        let (world, datasets) = run_small();
        assert_split_merge_equals_fold(Table1Analyzer::new, &world, &datasets);
        assert_split_merge_equals_fold(ActivityAnalyzer::new, &world, &datasets);
        assert_split_merge_equals_fold(Section4Analyzer::new, &world, &datasets);
        assert_split_merge_equals_fold(IdentityAnalyzer::new, &world, &datasets);
        assert_split_merge_equals_fold(ModerationAnalyzer::new, &world, &datasets);
        assert_split_merge_equals_fold(RecommendationAnalyzer::new, &world, &datasets);
        assert_split_merge_equals_fold(FirehoseVolumeAnalyzer::new, &world, &datasets);
        assert_split_merge_equals_fold(
            crate::observatory::ObservatoryAnalyzer::new,
            &world,
            &datasets,
        );
    }
}
