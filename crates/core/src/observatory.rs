//! §10 — the wire-level traffic observatory.
//!
//! The study engine carries everything an on-path adversary would see —
//! observer-independent frame sizes, a simulated clock, per-DID firehose
//! subscriptions and identity-resolution lookups — and this module turns
//! that into the measurement the FOCI'20 encrypted-DNS study ("Padding
//! Ain't Enough") ran: can a **passive** observer, seeing only `(size,
//! inter-arrival gap)` sequences, classify what kind of user produced a
//! day of traffic? And at what bandwidth cost do padding and batching
//! mitigations defeat it?
//!
//! ## The counterfactual sweep
//!
//! The producer captures each connection's *raw* per-day `(time, size)`
//! trace once, and every mitigation cell in [`MITIGATION_CELLS`] is
//! evaluated from that capture as a counterfactual: "what would this day's
//! wire have looked like under pad-to-128 + 60 s batching?" is a pure
//! function of the raw trace ([`WireTraceDay::from_frames`]). §10 therefore
//! never depends on which `--padding` / `--batch-window` the run was
//! *configured* with — the observer is passive by construction, the whole
//! report is invariant under the active framing policy, and a sharded run
//! reproduces the serial bytes exactly.
//!
//! ## The closed-world classifier
//!
//! Ground truth comes from the population plan: each user's long-run
//! activity weight maps to one of three [`ActivityClass`]es (posting-heavy,
//! feed-fetching, lurking). Each traced `(did, week)` is one instance —
//! a week of a connection's wire accumulates enough (size, gap) structure
//! to be worth classifying, where single days mostly carry one commit
//! frame. Even absolute weeks train, odd weeks test, and both sides are
//! class-balanced
//! (equal instances per class, so chance is ~1/classes and a lurker-heavy
//! population cannot make majority-vote look like an attack). A
//! 1-nearest-neighbour over z-scored per-week features (frame count, wire
//! bytes, mean frame size, span, mean gap) predicts the class. Accuracy is
//! reported per mitigation cell next to the cell's bandwidth overhead,
//! against the majority-class chance baseline of the balanced test set.

use crate::datasets::Datasets;
use crate::json::Json;
use crate::pipeline::{replay, Analyzer, Observation, StudyCtx};
use bsky_atproto::framing::PaddingPolicy;
use bsky_atproto::Did;
use std::collections::BTreeMap;

/// Number of mitigation cells in the sweep.
pub const CELL_COUNT: usize = 5;

/// The fixed (padding, batch-window-seconds) sweep evaluated
/// counterfactually for every captured trace. The first cell is always the
/// unmitigated wire.
pub const MITIGATION_CELLS: [(&str, PaddingPolicy, u64); CELL_COUNT] = [
    ("none", PaddingPolicy::None, 0),
    ("pad128", PaddingPolicy::Buckets, 0),
    ("pad128+batch60", PaddingPolicy::Buckets, 60),
    ("pad128+batch1h", PaddingPolicy::Buckets, 3600),
    ("const4096+batch1h", PaddingPolicy::Constant, 3600),
];

/// Deterministic cap on 1-NN training instances (class-balanced and
/// stride-subsampled; the sampled and total counts are both reported, never
/// silently).
pub const TRAIN_CAP: usize = 2000;

/// Deterministic cap on 1-NN test instances.
pub const TEST_CAP: usize = 1000;

/// Ground-truth user activity class, derived from the population plan's
/// long-run activity weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActivityClass {
    /// High-weight accounts whose days are dominated by their own writes.
    PostingHeavy,
    /// Mid-weight accounts: mostly consuming feeds, posting occasionally.
    FeedFetching,
    /// Low-weight accounts that are rarely active at all.
    Lurking,
}

impl ActivityClass {
    /// Map an activity weight (`1/rank^0.6`, in `(0, 1]`) to its class.
    pub fn of_weight(weight: f64) -> ActivityClass {
        if weight >= 0.6 {
            ActivityClass::PostingHeavy
        } else if weight >= 0.15 {
            ActivityClass::FeedFetching
        } else {
            ActivityClass::Lurking
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ActivityClass::PostingHeavy => "posting-heavy",
            ActivityClass::FeedFetching => "feed-fetching",
            ActivityClass::Lurking => "lurking",
        }
    }

    /// All classes, in display order.
    pub fn all() -> [ActivityClass; 3] {
        [
            ActivityClass::PostingHeavy,
            ActivityClass::FeedFetching,
            ActivityClass::Lurking,
        ]
    }
}

/// Which wire a trace was captured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// A per-DID firehose subscription (relay → subscriber).
    Repo,
    /// The identity-resolution client (DNS `_atproto` lookups).
    Dns,
}

/// One mitigation cell's view of one day of one connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellTrace {
    /// Frames on the wire after batching.
    pub frames: u64,
    /// Total wire bytes after padding (headers included).
    pub wire_bytes: u64,
    /// First frame time (unix seconds).
    pub first: i64,
    /// Last frame time (unix seconds).
    pub last: i64,
}

impl CellTrace {
    /// Fold another cell trace of the same key into this one.
    fn absorb(&mut self, other: &CellTrace) {
        if other.frames == 0 {
            return;
        }
        if self.frames == 0 {
            *self = *other;
            return;
        }
        self.frames += other.frames;
        self.wire_bytes += other.wire_bytes;
        self.first = self.first.min(other.first);
        self.last = self.last.max(other.last);
    }
}

/// One day of passively observed traffic on one connection, with the raw
/// totals and every mitigation cell's counterfactual view. This is the
/// atomic §10 observation: it is emitted once per `(connection, day)` by
/// the producer, so analyzer merges only ever combine records for
/// *different* keys (or per-shard halves of the shared DNS client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTraceDay {
    /// Which wire this trace was captured on.
    pub kind: TraceKind,
    /// The connection's subject DID (the traced account for firehose
    /// wires; a fixed synthetic DID for the DNS client).
    pub did: Did,
    /// Absolute day index (unix seconds / 86 400).
    pub day: i64,
    /// Ground-truth class of the traced account.
    pub class: ActivityClass,
    /// Raw events observed (before batching).
    pub events: u64,
    /// Raw payload bytes (canonical event wire sizes, no framing).
    pub payload_bytes: u64,
    /// Frames the bounded capture buffer dropped (counted, never silent).
    pub dropped: u64,
    /// Counterfactual wire view per [`MITIGATION_CELLS`] cell.
    pub cells: [CellTrace; CELL_COUNT],
}

impl WireTraceDay {
    /// Build a trace record from one connection-day's raw `(time, size)`
    /// frames, evaluating every mitigation cell counterfactually.
    ///
    /// For [`TraceKind::Repo`] wires a batching cell coalesces all events
    /// in the same window into one frame flushed at the window edge. The
    /// [`TraceKind::Dns`] wire is request/response, not a stream: each
    /// lookup is always its own (padded) frame — batching it would also
    /// make the accounting depend on how the population is sharded, since
    /// every shard's resolver shares one connection key.
    pub fn from_frames(
        kind: TraceKind,
        did: Did,
        day: i64,
        class: ActivityClass,
        frames: &[(i64, u64)],
        dropped: u64,
    ) -> WireTraceDay {
        let events = frames.len() as u64;
        let payload_bytes: u64 = frames.iter().map(|&(_, size)| size).sum();
        let mut cells = [CellTrace::default(); CELL_COUNT];
        for (slot, &(_, padding, window)) in cells.iter_mut().zip(MITIGATION_CELLS.iter()) {
            let window = if kind == TraceKind::Dns { 0 } else { window };
            *slot = cell_trace(frames, padding, window);
        }
        WireTraceDay {
            kind,
            did,
            day,
            class,
            events,
            payload_bytes,
            dropped,
            cells,
        }
    }

    /// Fold another record with the same `(kind, did, day)` key into this
    /// one (per-shard halves of the shared DNS client's day).
    pub fn absorb(&mut self, other: &WireTraceDay) {
        self.class = self.class.min(other.class);
        self.events += other.events;
        self.payload_bytes += other.payload_bytes;
        self.dropped += other.dropped;
        for (slot, cell) in self.cells.iter_mut().zip(other.cells.iter()) {
            slot.absorb(cell);
        }
    }
}

/// Evaluate one `(padding, batch window)` cell over a raw frame sequence.
///
/// `window == 0` means no batching: each event is its own frame at its own
/// time. Otherwise events sharing `time.div_euclid(window)` coalesce into
/// one frame flushed at the window's trailing edge. Both are pure functions
/// of the `(time, size)` list, so the result is independent of how the
/// producer chunked the underlying day.
pub fn cell_trace(frames: &[(i64, u64)], padding: PaddingPolicy, window: u64) -> CellTrace {
    let mut out = CellTrace::default();
    let mut push = |time: i64, events: usize, payload: u64| {
        let wire = padding.frame_wire_size(events, payload as usize) as u64;
        if out.frames == 0 {
            out.first = time;
            out.last = time;
        } else {
            out.first = out.first.min(time);
            out.last = out.last.max(time);
        }
        out.frames += 1;
        out.wire_bytes += wire;
    };
    if window == 0 {
        for &(time, size) in frames {
            push(time, 1, size);
        }
    } else {
        // Group by window id. Frame times within a drained day arrive in
        // relay-append order per connection; aggregate via a BTreeMap so
        // the result is a pure function of the (time, size) multiset.
        let mut windows: BTreeMap<i64, (usize, u64)> = BTreeMap::new();
        for &(time, size) in frames {
            let entry = windows.entry(time.div_euclid(window as i64)).or_default();
            entry.0 += 1;
            entry.1 += size;
        }
        let batch = bsky_atproto::framing::BatchPolicy::window(window);
        for (wid, (events, payload)) in windows {
            push(batch.flush_at(wid), events, payload);
        }
    }
    out
}

/// Internal classifier instance: one `(did, day)` record's features under
/// one mitigation cell.
struct Instance {
    class: ActivityClass,
    features: [f64; 5],
}

fn features(cell: &CellTrace) -> [f64; 5] {
    let frames = cell.frames as f64;
    let span = (cell.last - cell.first) as f64;
    [
        frames,
        cell.wire_bytes as f64,
        cell.wire_bytes as f64 / frames.max(1.0),
        span,
        if cell.frames > 1 {
            span / (frames - 1.0)
        } else {
            0.0
        },
    ]
}

/// One mitigation cell's §10 results.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell name from [`MITIGATION_CELLS`].
    pub name: &'static str,
    /// Closed-world 1-NN accuracy on the held-out (odd) days.
    pub accuracy: f64,
    /// Total firehose wire bytes under this cell.
    pub wire_bytes: u64,
    /// Wire bytes above the raw event payload (headers + padding).
    pub overhead_bytes: u64,
}

/// The §10 report: classifier accuracy × bandwidth overhead per mitigation
/// cell, plus the capture totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObservatoryReport {
    /// Per-cell accuracy and overhead, in [`MITIGATION_CELLS`] order.
    pub cells: Vec<CellReport>,
    /// `(did, day)` firehose traces captured.
    pub traced_days: u64,
    /// Raw firehose payload bytes across all traces.
    pub payload_bytes: u64,
    /// Identity-resolution lookups observed on the DNS wire.
    pub dns_lookups: u64,
    /// Modeled bytes on the DNS wire (unpadded).
    pub dns_payload_bytes: u64,
    /// Capture-buffer drops across all connections (never silent).
    pub trace_drops: u64,
    /// Training instances used (class-balanced, stride-subsampled past
    /// [`TRAIN_CAP`]).
    pub train_sampled: usize,
    /// Training instances available (`(did, week)` pairs on even weeks).
    pub train_total: usize,
    /// Test instances used / available.
    pub test_sampled: usize,
    /// Test instances available (`(did, week)` pairs on odd weeks).
    pub test_total: usize,
    /// Majority-class share of the balanced, sampled test set — the chance
    /// baseline (~1/classes).
    pub chance_accuracy: f64,
}

impl ObservatoryReport {
    /// Render the §10 section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("## §10 Wire-level traffic observatory\n\n");
        if self.traced_days == 0 {
            out.push_str("No wire traces captured (window too short?).\n");
            return out;
        }
        out.push_str(&format!(
            "Passive per-connection capture: {} (did, day) firehose traces, {} raw payload bytes; \
             identity resolution: {} lookups, {} modeled bytes.\n",
            self.traced_days, self.payload_bytes, self.dns_lookups, self.dns_payload_bytes
        ));
        if self.trace_drops > 0 {
            out.push_str(&format!(
                "WARNING: {} frame(s) dropped by full capture buffers — traces truncated.\n",
                self.trace_drops
            ));
        }
        out.push_str(&format!(
            "Closed-world 1-NN over per-week (size, gap) features, class-balanced: train {} of {} \
             even-week traces, test {} of {} odd-week traces; chance (majority class) {:.3}.\n\n",
            self.train_sampled,
            self.train_total,
            self.test_sampled,
            self.test_total,
            self.chance_accuracy
        ));
        out.push_str("| mitigation cell | accuracy | wire bytes | overhead bytes | overhead |\n");
        out.push_str("|---|---|---|---|---|\n");
        for cell in &self.cells {
            let pct = if self.payload_bytes > 0 {
                100.0 * cell.overhead_bytes as f64 / self.payload_bytes as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "| {} | {:.3} | {} | {} | +{:.1}% |\n",
                cell.name, cell.accuracy, cell.wire_bytes, cell.overhead_bytes, pct
            ));
        }
        out.push('\n');
        out
    }

    /// The headline numbers for the JSON export.
    pub fn to_json(&self) -> Json {
        let mut cells = Json::object();
        for cell in &self.cells {
            cells = cells.with(
                cell.name,
                Json::object()
                    .with("accuracy", cell.accuracy)
                    .with("wire_bytes", cell.wire_bytes)
                    .with("overhead_bytes", cell.overhead_bytes),
            );
        }
        Json::object()
            .with("traced_days", self.traced_days)
            .with("dns_lookups", self.dns_lookups)
            .with("chance_accuracy", self.chance_accuracy)
            .with("cells", cells)
    }

    /// The accuracy of one named cell (used by the bench export).
    pub fn cell_accuracy(&self, name: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.accuracy)
    }

    /// The overhead of one named cell.
    pub fn cell_overhead(&self, name: &str) -> Option<u64> {
        self.cells
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.overhead_bytes)
    }
}

/// Map key identifying one connection-day. The DID enters by its stable
/// shard hash so per-shard analyzer states merge on identical keys without
/// retaining every DID string.
type TraceKey = (TraceKind, u64, i64);

/// Accumulated state for one `(kind, did, day)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TraceAgg {
    class: ActivityClass,
    events: u64,
    payload_bytes: u64,
    dropped: u64,
    cells: [CellTrace; CELL_COUNT],
}

/// The §10 analyzer: folds [`Observation::WireTrace`] records into per-key
/// aggregates, merges per-shard states by key union, and runs the
/// closed-world classifier sweep at finish.
#[derive(Debug, Default)]
pub struct ObservatoryAnalyzer {
    records: BTreeMap<TraceKey, TraceAgg>,
}

impl ObservatoryAnalyzer {
    /// A fresh analyzer.
    pub fn new() -> ObservatoryAnalyzer {
        ObservatoryAnalyzer::default()
    }

    fn fold(&mut self, trace: &WireTraceDay) {
        let key = (trace.kind, trace.did.shard_hash(), trace.day);
        match self.records.get_mut(&key) {
            Some(agg) => {
                agg.class = agg.class.min(trace.class);
                agg.events += trace.events;
                agg.payload_bytes += trace.payload_bytes;
                agg.dropped += trace.dropped;
                for (slot, cell) in agg.cells.iter_mut().zip(trace.cells.iter()) {
                    slot.absorb(cell);
                }
            }
            None => {
                self.records.insert(
                    key,
                    TraceAgg {
                        class: trace.class,
                        events: trace.events,
                        payload_bytes: trace.payload_bytes,
                        dropped: trace.dropped,
                        cells: trace.cells,
                    },
                );
            }
        }
    }
}

impl Analyzer for ObservatoryAnalyzer {
    type Output = ObservatoryReport;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        if let Observation::WireTrace(trace) = obs {
            self.fold(trace);
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, agg) in other.records {
            match self.records.get_mut(&key) {
                Some(mine) => {
                    mine.class = mine.class.min(agg.class);
                    mine.events += agg.events;
                    mine.payload_bytes += agg.payload_bytes;
                    mine.dropped += agg.dropped;
                    for (slot, cell) in mine.cells.iter_mut().zip(agg.cells.iter()) {
                        slot.absorb(cell);
                    }
                }
                None => {
                    self.records.insert(key, agg);
                }
            }
        }
    }

    // No active measurements: `finish` must work on a detached context so
    // the batch replay produces identical bytes.
    fn finish(self, _ctx: &StudyCtx<'_>) -> ObservatoryReport {
        let mut report = ObservatoryReport::default();
        // Capture totals, and one classifier instance per `(did, week)`.
        // DNS records feed the totals only; the classifier sees firehose
        // wires. Single days are too noisy an instance (most carry one
        // commit frame); a week of a connection's (size, gap) structure —
        // how often it transmits and how much — is what a passive observer
        // actually accumulates. Even absolute weeks train, odd weeks test,
        // so every user's history sits on both sides of the split.
        struct WeekAgg {
            class: ActivityClass,
            week: i64,
            cells: [CellTrace; CELL_COUNT],
        }
        let mut repo: Vec<WeekAgg> = Vec::new();
        let mut slot_of: BTreeMap<(u64, i64), usize> = BTreeMap::new();
        let mut train_idx: Vec<usize> = Vec::new();
        let mut test_idx: Vec<usize> = Vec::new();
        for ((kind, did_hash, day), agg) in &self.records {
            report.trace_drops += agg.dropped;
            match kind {
                TraceKind::Repo => {
                    report.traced_days += 1;
                    report.payload_bytes += agg.payload_bytes;
                    let week = day.div_euclid(7);
                    let slot = *slot_of.entry((*did_hash, week)).or_insert_with(|| {
                        repo.push(WeekAgg {
                            class: agg.class,
                            week,
                            cells: [CellTrace::default(); CELL_COUNT],
                        });
                        repo.len() - 1
                    });
                    repo[slot].class = repo[slot].class.min(agg.class);
                    for (acc, cell) in repo[slot].cells.iter_mut().zip(agg.cells.iter()) {
                        acc.absorb(cell);
                    }
                }
                TraceKind::Dns => {
                    report.dns_lookups += agg.events;
                    report.dns_payload_bytes += agg.payload_bytes;
                }
            }
        }
        for (slot, agg) in repo.iter().enumerate() {
            if agg.week.rem_euclid(2) == 0 {
                train_idx.push(slot);
            } else {
                test_idx.push(slot);
            }
        }
        report.train_total = train_idx.len();
        report.test_total = test_idx.len();
        // Class-balanced evaluation sets (the closed-world protocol): every
        // class contributes equally many train and test instances, so the
        // chance baseline is ~1/classes and a population skewed toward
        // lurkers cannot make majority-vote look like an attack. A class
        // missing from either side drops out of the evaluation entirely.
        let mut by_class_train: BTreeMap<ActivityClass, Vec<usize>> = BTreeMap::new();
        let mut by_class_test: BTreeMap<ActivityClass, Vec<usize>> = BTreeMap::new();
        for &i in &train_idx {
            by_class_train.entry(repo[i].class).or_default().push(i);
        }
        for &i in &test_idx {
            by_class_test.entry(repo[i].class).or_default().push(i);
        }
        let classes: Vec<ActivityClass> = by_class_train
            .keys()
            .copied()
            .filter(|class| by_class_test.contains_key(class))
            .collect();
        let mut train_idx: Vec<usize> = Vec::new();
        let mut test_idx: Vec<usize> = Vec::new();
        if !classes.is_empty() {
            let smallest = |sets: &BTreeMap<ActivityClass, Vec<usize>>| {
                classes
                    .iter()
                    .map(|class| sets[class].len())
                    .min()
                    .unwrap_or(0)
            };
            let train_quota = (TRAIN_CAP / classes.len()).min(smallest(&by_class_train));
            let test_quota = (TEST_CAP / classes.len()).min(smallest(&by_class_test));
            for class in &classes {
                train_idx.extend(stride_sample(&by_class_train[class], train_quota));
                test_idx.extend(stride_sample(&by_class_test[class], test_quota));
            }
        }
        report.train_sampled = train_idx.len();
        report.test_sampled = test_idx.len();
        // Chance baseline: majority class share of the sampled test set
        // (= ~1/classes after balancing).
        if !test_idx.is_empty() {
            let mut counts: BTreeMap<ActivityClass, usize> = BTreeMap::new();
            for &i in &test_idx {
                *counts.entry(repo[i].class).or_default() += 1;
            }
            let majority = counts.values().copied().max().unwrap_or(0);
            report.chance_accuracy = majority as f64 / test_idx.len() as f64;
        }
        for (cell_index, &(name, _, _)) in MITIGATION_CELLS.iter().enumerate() {
            let wire_bytes: u64 = repo
                .iter()
                .map(|agg| agg.cells[cell_index].wire_bytes)
                .sum();
            let overhead_bytes = wire_bytes.saturating_sub(report.payload_bytes);
            let accuracy = if train_idx.is_empty() || test_idx.is_empty() {
                0.0
            } else {
                let train: Vec<Instance> = train_idx
                    .iter()
                    .map(|&i| Instance {
                        class: repo[i].class,
                        features: features(&repo[i].cells[cell_index]),
                    })
                    .collect();
                let test: Vec<Instance> = test_idx
                    .iter()
                    .map(|&i| Instance {
                        class: repo[i].class,
                        features: features(&repo[i].cells[cell_index]),
                    })
                    .collect();
                nearest_neighbor_accuracy(&train, &test)
            };
            report.cells.push(CellReport {
                name,
                accuracy,
                wire_bytes,
                overhead_bytes,
            });
        }
        report
    }
}

/// Deterministic stride subsampling to at most `cap` items, spread evenly
/// over the input order.
fn stride_sample(indices: &[usize], cap: usize) -> Vec<usize> {
    if indices.len() <= cap {
        return indices.to_vec();
    }
    // Evenly spaced positions, first-biased: floor(k * len / cap).
    (0..cap).map(|k| indices[k * indices.len() / cap]).collect()
}

/// 1-NN with per-feature z-scoring (statistics from the training set) and
/// deterministic tie-breaking (the earliest training instance wins).
fn nearest_neighbor_accuracy(train: &[Instance], test: &[Instance]) -> f64 {
    let n = train.len() as f64;
    let mut mean = [0.0f64; 5];
    let mut var = [0.0f64; 5];
    for instance in train {
        for (m, f) in mean.iter_mut().zip(&instance.features) {
            *m += f;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    for instance in train {
        for ((v, f), m) in var.iter_mut().zip(&instance.features).zip(&mean) {
            let delta = f - m;
            *v += delta * delta;
        }
    }
    let scale: Vec<f64> = var
        .iter()
        .map(|v| {
            let sd = (v / n).sqrt();
            if sd > 0.0 {
                1.0 / sd
            } else {
                0.0
            }
        })
        .collect();
    let zscore = |instance: &Instance| -> [f64; 5] {
        let mut out = [0.0f64; 5];
        for (d, slot) in out.iter_mut().enumerate() {
            *slot = (instance.features[d] - mean[d]) * scale[d];
        }
        out
    };
    let train_z: Vec<([f64; 5], ActivityClass)> =
        train.iter().map(|i| (zscore(i), i.class)).collect();
    let mut correct = 0usize;
    for probe in test {
        let z = zscore(probe);
        let mut best = f64::INFINITY;
        let mut best_class = train_z[0].1;
        for (tz, class) in &train_z {
            let mut dist = 0.0;
            for (a, b) in z.iter().zip(tz) {
                let delta = a - b;
                dist += delta * delta;
            }
            if dist < best {
                best = dist;
                best_class = *class;
            }
        }
        if best_class == probe.class {
            correct += 1;
        }
    }
    correct as f64 / test.len() as f64
}

/// Batch-path §10: replay materialized wire traces through the same
/// analyzer on a detached context.
pub fn observatory_report(datasets: &Datasets) -> ObservatoryReport {
    replay(ObservatoryAnalyzer::new(), datasets, &StudyCtx::detached())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::framing::{EVENT_HEADER_BYTES, FRAME_HEADER_BYTES};

    fn did(seed: &[u8]) -> Did {
        Did::plc_from_seed(seed)
    }

    #[test]
    fn classes_partition_the_weight_axis() {
        assert_eq!(ActivityClass::of_weight(1.0), ActivityClass::PostingHeavy);
        assert_eq!(ActivityClass::of_weight(0.6), ActivityClass::PostingHeavy);
        assert_eq!(ActivityClass::of_weight(0.3), ActivityClass::FeedFetching);
        assert_eq!(ActivityClass::of_weight(0.1), ActivityClass::Lurking);
        assert_eq!(ActivityClass::all().len(), 3);
    }

    #[test]
    fn cell_trace_unbatched_counts_each_event() {
        let frames = [(100i64, 200u64), (160, 300), (220, 100)];
        let cell = cell_trace(&frames, PaddingPolicy::None, 0);
        assert_eq!(cell.frames, 3);
        assert_eq!(
            cell.wire_bytes,
            (3 * (FRAME_HEADER_BYTES + EVENT_HEADER_BYTES) + 600) as u64
        );
        assert_eq!((cell.first, cell.last), (100, 220));
    }

    #[test]
    fn cell_trace_batching_coalesces_windows() {
        let frames = [(100i64, 200u64), (110, 300), (220, 100)];
        // 60 s windows: events at 100 and 110 share window 1 (flush 120);
        // the event at 220 is alone in window 3 (flush 240).
        let cell = cell_trace(&frames, PaddingPolicy::None, 60);
        assert_eq!(cell.frames, 2);
        assert_eq!((cell.first, cell.last), (120, 240));
        let batched_payload = (FRAME_HEADER_BYTES + 2 * EVENT_HEADER_BYTES + 500) as u64;
        let single = (FRAME_HEADER_BYTES + EVENT_HEADER_BYTES + 100) as u64;
        assert_eq!(cell.wire_bytes, batched_payload + single);
        // Batching strictly saves header bytes relative to per-event frames.
        let unbatched = cell_trace(&frames, PaddingPolicy::None, 0);
        assert!(cell.wire_bytes < unbatched.wire_bytes);
    }

    #[test]
    fn cell_trace_is_chunking_independent() {
        // Splitting a day's frames anywhere and absorbing the two halves
        // must equal evaluating the whole day — with batching, only when
        // the split respects window boundaries, which the producer's
        // day-end flush guarantees; without batching, for any split.
        let frames: Vec<(i64, u64)> = (0..40).map(|i| (i * 7, 100 + i as u64)).collect();
        for split in [1usize, 10, 25, 39] {
            let whole = cell_trace(&frames, PaddingPolicy::Buckets, 0);
            let mut left = cell_trace(&frames[..split], PaddingPolicy::Buckets, 0);
            let right = cell_trace(&frames[split..], PaddingPolicy::Buckets, 0);
            left.absorb(&right);
            assert_eq!(left, whole, "split {split}");
        }
    }

    #[test]
    fn padding_never_shrinks_a_wire() {
        let frames = [(0i64, 150u64), (30, 700), (3700, 90)];
        let none = cell_trace(&frames, PaddingPolicy::None, 0);
        let buckets = cell_trace(&frames, PaddingPolicy::Buckets, 0);
        let constant = cell_trace(&frames, PaddingPolicy::Constant, 0);
        assert!(buckets.wire_bytes >= none.wire_bytes);
        assert!(constant.wire_bytes >= buckets.wire_bytes);
    }

    #[test]
    fn merge_equals_single_fold_over_any_record_split() {
        let ctx = StudyCtx::detached();
        let records: Vec<WireTraceDay> = (0..30)
            .map(|i| {
                let frames: Vec<(i64, u64)> = (0..(1 + i % 5))
                    .map(|j| ((i * 86_400 + j * 100) as i64, 200 + (i * j) as u64))
                    .collect();
                WireTraceDay::from_frames(
                    if i % 7 == 0 {
                        TraceKind::Dns
                    } else {
                        TraceKind::Repo
                    },
                    did(&[i as u8]),
                    i as i64,
                    ActivityClass::of_weight(1.0 / (1.0 + i as f64)),
                    &frames,
                    0,
                )
            })
            .collect();
        let mut whole = ObservatoryAnalyzer::new();
        for record in &records {
            whole.observe(&Observation::WireTrace(record), &ctx);
        }
        for split in [0usize, 7, 15, 30] {
            let mut a = ObservatoryAnalyzer::new();
            let mut b = ObservatoryAnalyzer::new();
            for (i, record) in records.iter().enumerate() {
                let target = if i < split { &mut a } else { &mut b };
                target.observe(&Observation::WireTrace(record), &ctx);
            }
            a.merge(b);
            assert_eq!(a.records, whole.records, "split {split}");
        }
        let report = whole.finish(&ctx);
        assert_eq!(report.cells.len(), CELL_COUNT);
        assert!(report.traced_days > 0);
        assert!(report.dns_lookups > 0);
    }

    #[test]
    fn classifier_separates_separable_classes() {
        // Synthetic but separable: posting-heavy days carry an order of
        // magnitude more payload than lurking days. The unmitigated cell
        // must classify well above chance; the constant-pad + 1 h batch
        // cell collapses every day to one 4096-byte frame and must fall to
        // the chance baseline.
        let ctx = StudyCtx::detached();
        let mut analyzer = ObservatoryAnalyzer::new();
        let mut fold = |record: WireTraceDay| {
            analyzer.observe(&Observation::WireTrace(&record), &ctx);
        };
        for user in 0..30u8 {
            let (class, size) = match user % 3 {
                0 => (ActivityClass::PostingHeavy, 2_000u64),
                1 => (ActivityClass::FeedFetching, 700),
                _ => (ActivityClass::Lurking, 250),
            };
            for day in 0..10i64 {
                let base = day * 86_400 + 40_000 + user as i64;
                fold(WireTraceDay::from_frames(
                    TraceKind::Repo,
                    did(&[user, day as u8]),
                    day,
                    class,
                    &[(base, size), (base + 60, size / 2)],
                    0,
                ));
            }
        }
        let report = analyzer.finish(&ctx);
        let none = report.cell_accuracy("none").unwrap();
        let collapsed = report.cell_accuracy("const4096+batch1h").unwrap();
        assert!(
            none > report.chance_accuracy + 0.2,
            "none cell {none} vs chance {}",
            report.chance_accuracy
        );
        assert!(
            collapsed <= report.chance_accuracy + 1e-9,
            "collapsed cell {collapsed} vs chance {}",
            report.chance_accuracy
        );
        // Overheads are monotone along the sweep's padding axis.
        assert!(report.cell_overhead("pad128").unwrap() > report.cell_overhead("none").unwrap());
        assert!(
            report.cell_overhead("const4096+batch1h").unwrap()
                > report.cell_overhead("pad128+batch1h").unwrap()
        );
        let rendered = report.render();
        assert!(rendered.contains("§10"));
        assert!(rendered.contains("| none |"));
        let json = report.to_json().to_string_pretty();
        assert!(json.contains("chance_accuracy"));
    }

    #[test]
    fn stride_sampling_is_deterministic_and_counted() {
        let indices: Vec<usize> = (0..100).collect();
        let sampled = stride_sample(&indices, 10);
        assert_eq!(sampled.len(), 10);
        assert_eq!(sampled, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        assert_eq!(stride_sample(&indices, 200), indices);
    }
}
