//! The streaming measurement pipeline: an observation bus plus incremental,
//! *mergeable* analyzers.
//!
//! The batch pipeline of the original seed materialized all six §3 datasets
//! into vectors and then re-scanned them once per analysis. The real study
//! consumed the firehose as a *stream* over weeks; this module reproduces
//! that consumption model:
//!
//! * [`Observation`] — one item on the bus: a firehose event, a snapshot row
//!   of one of the §3 datasets, a batch of freshly published labels, or a
//!   collection-window marker. Observations borrow their payloads, so
//!   producers can emit and immediately drop them.
//! * [`Analyzer`] — an incremental consumer: `observe` folds one observation
//!   into internal accumulators, `merge` combines two independently folded
//!   states, and `finish` computes the final result struct.
//! * [`ObservationSink`] — anything a producer can emit into: the
//!   type-erased [`StudyEngine`] bus, the report's concrete analyzer set, or
//!   a custom probe (the benches use one to watch accumulator sizes).
//! * [`StudyEngine`] — the dynamic bus: analyzers register, the producer
//!   pushes observations, and `finish` hands back every analyzer's output.
//! * [`StudyCtx`] — read-only access to the simulated [`World`]'s active
//!   measurement surfaces (DNS, WHOIS, Tranco, PSL, AppView), mirroring the
//!   active measurements the study ran alongside the passive collection.
//!
//! ## The merge law
//!
//! [`Analyzer::merge`] is the primitive behind the sharded engine
//! ([`crate::shard`]): the population is partitioned by DID hash, one
//! producer + analyzer set runs per shard, and the per-shard states are
//! merged in shard order before a single `finish`. Implementations must be
//! **associative and order-insensitive over stream splits**: for any split
//! of an observation stream into a prefix and a suffix folded by two fresh
//! analyzers, `merge(prefix_state, suffix_state)` must equal the state of
//! one analyzer that folded the whole stream. The property tests in
//! `analysis.rs` pin exactly this for every built-in analyzer, and the
//! golden test in `tests/pipeline_equivalence.rs` pins the end-to-end
//! consequence: a 4-shard run renders a byte-identical report to the serial
//! run.
//!
//! The engine computes the full study report in **one pass** without
//! retaining the firehose: events are folded as they arrive (the producer
//! reads the relay in constant-size chunks, so peak in-flight is one chunk,
//! independent of daily volume), and only per-entity aggregates survive
//! between observations. The moderation analyzer's post-creation index —
//! previously the remaining scale ceiling — is aged out past the labelers'
//! bounded reaction window at every day boundary. The legacy batch path is
//! kept alive by one optional *materializing* analyzer
//! ([`crate::datasets::Materialize`]) plus [`replay`], which re-emits an
//! already-collected [`Datasets`] over the bus in canonical order so batch
//! and streaming results are identical by construction.

use crate::datasets::{Datasets, FeedGenEntry, LabelerEntry, RepoSnapshot};
use crate::observatory::WireTraceDay;
use bsky_atproto::firehose::Event;
use bsky_atproto::label::Label;
use bsky_atproto::{Datetime, Did};
use bsky_identity::DidDocument;
use bsky_workload::World;
use std::any::Any;

/// One item on the observation bus.
///
/// Variants borrow their payloads from the producer: the engine dispatches a
/// shared reference to every analyzer and the producer drops the value right
/// after, so nothing is retained unless an analyzer copies it on purpose.
#[derive(Debug, Clone, Copy)]
pub enum Observation<'a> {
    /// Collection is starting. Carries the window boundaries so analyzers
    /// need not reach into the world configuration.
    WindowStart {
        /// When the continuous firehose subscription begins.
        firehose_collection_start: Datetime,
        /// Day after the last collected day.
        collection_end: Datetime,
    },
    /// A new simulated day is about to be observed. Analyzers use this to
    /// age out time-bounded indices.
    DayBoundary {
        /// Start of the day.
        day: Datetime,
    },
    /// One firehose event (already filtered to the collection window).
    Firehose(&'a Event),
    /// One row of the user-identifier dataset (`sync.listRepos`), emitted at
    /// most once per DID across all weekly snapshots.
    UserIdentifier {
        /// The account DID.
        did: &'a Did,
        /// Latest repo revision, if any.
        rev: Option<&'a str>,
    },
    /// One DID document (PLC export or did:web fetch).
    DidDocument {
        /// The document.
        doc: &'a DidDocument,
        /// Whether it was fetched over HTTPS as a did:web document.
        via_web: bool,
    },
    /// One labeling service's metadata, emitted when its service record is
    /// announced — always before any of its labels.
    Labeler(&'a LabelerEntry),
    /// A batch of label interactions freshly published on one labeler's
    /// stream (the daily `subscribeLabels` read). Includes negations.
    Labels {
        /// The issuing labeler.
        src: &'a Did,
        /// The new stream entries, in publication order.
        labels: &'a [Label],
    },
    /// One feed generator with its curated posts.
    FeedGenerator(&'a FeedGenEntry),
    /// One decoded repository snapshot.
    Repo(&'a RepoSnapshot),
    /// One day of passively observed wire traffic on one connection (a
    /// per-DID firehose subscription or the identity-resolution client),
    /// with every §10 mitigation cell evaluated counterfactually.
    WireTrace(&'a WireTraceDay),
    /// Collection has ended; `finish` will be called next.
    WindowEnd {
        /// The end of the collection window.
        at: Datetime,
    },
}

impl Observation<'_> {
    /// Whether folding this observation may require the live world context
    /// ([`StudyCtx::world`]). Analyzers run the study's *active*
    /// measurements (DNS, well-known fetches, WHOIS, Tranco, PSL) when a
    /// DID document streams by, so those observations cannot be folded on a
    /// detached analyzer worker — the intra-shard pipeline
    /// ([`crate::shard::PipelinedSink`]) drains its workers and folds them
    /// inline on the producer thread instead.
    pub fn requires_world_ctx(&self) -> bool {
        matches!(self, Observation::DidDocument { .. })
    }

    /// Materialize this borrowed bus item into its owned form so it can
    /// cross a thread boundary (see [`OwnedObservation`]).
    pub fn to_owned_observation(&self) -> OwnedObservation {
        match *self {
            Observation::WindowStart {
                firehose_collection_start,
                collection_end,
            } => OwnedObservation::WindowStart {
                firehose_collection_start,
                collection_end,
            },
            Observation::DayBoundary { day } => OwnedObservation::DayBoundary { day },
            Observation::Firehose(event) => OwnedObservation::Firehose(event.clone()),
            Observation::UserIdentifier { did, rev } => OwnedObservation::UserIdentifier {
                did: did.clone(),
                rev: rev.map(str::to_owned),
            },
            Observation::DidDocument { doc, via_web } => OwnedObservation::DidDocument {
                doc: doc.clone(),
                via_web,
            },
            Observation::Labeler(entry) => OwnedObservation::Labeler(entry.clone()),
            Observation::Labels { src, labels } => OwnedObservation::Labels {
                src: src.clone(),
                labels: labels.to_vec(),
            },
            Observation::FeedGenerator(entry) => OwnedObservation::FeedGenerator(entry.clone()),
            Observation::Repo(snapshot) => OwnedObservation::Repo(snapshot.clone()),
            Observation::WireTrace(trace) => OwnedObservation::WireTrace(trace.clone()),
            Observation::WindowEnd { at } => OwnedObservation::WindowEnd { at },
        }
    }
}

/// The owned counterpart of [`Observation`]: every payload materialized so
/// a bus item can outlive its producer and cross a thread boundary.
///
/// The intra-shard pipeline ([`crate::shard::PipelinedSink`]) batches these
/// per day-chunk and ships them over a bounded channel to the analyzer
/// workers; [`OwnedObservation::as_observation`] re-borrows the exact bus
/// item on the receiving side, so analyzers never see the difference — the
/// round-trip is pinned by the property test in
/// `tests/pipeline_equivalence.rs`.
#[derive(Debug, Clone)]
pub enum OwnedObservation {
    /// See [`Observation::WindowStart`].
    WindowStart {
        /// When the continuous firehose subscription begins.
        firehose_collection_start: Datetime,
        /// Day after the last collected day.
        collection_end: Datetime,
    },
    /// See [`Observation::DayBoundary`].
    DayBoundary {
        /// Start of the day.
        day: Datetime,
    },
    /// See [`Observation::Firehose`].
    Firehose(Event),
    /// See [`Observation::UserIdentifier`].
    UserIdentifier {
        /// The account DID.
        did: Did,
        /// Latest repo revision, if any.
        rev: Option<String>,
    },
    /// See [`Observation::DidDocument`].
    DidDocument {
        /// The document.
        doc: DidDocument,
        /// Whether it was fetched over HTTPS as a did:web document.
        via_web: bool,
    },
    /// See [`Observation::Labeler`].
    Labeler(LabelerEntry),
    /// See [`Observation::Labels`].
    Labels {
        /// The issuing labeler.
        src: Did,
        /// The new stream entries, in publication order.
        labels: Vec<Label>,
    },
    /// See [`Observation::FeedGenerator`].
    FeedGenerator(FeedGenEntry),
    /// See [`Observation::Repo`].
    Repo(RepoSnapshot),
    /// See [`Observation::WireTrace`].
    WireTrace(WireTraceDay),
    /// See [`Observation::WindowEnd`].
    WindowEnd {
        /// The end of the collection window.
        at: Datetime,
    },
}

impl OwnedObservation {
    /// Re-borrow this owned item as the bus [`Observation`] it was
    /// materialized from.
    pub fn as_observation(&self) -> Observation<'_> {
        match self {
            OwnedObservation::WindowStart {
                firehose_collection_start,
                collection_end,
            } => Observation::WindowStart {
                firehose_collection_start: *firehose_collection_start,
                collection_end: *collection_end,
            },
            OwnedObservation::DayBoundary { day } => Observation::DayBoundary { day: *day },
            OwnedObservation::Firehose(event) => Observation::Firehose(event),
            OwnedObservation::UserIdentifier { did, rev } => Observation::UserIdentifier {
                did,
                rev: rev.as_deref(),
            },
            OwnedObservation::DidDocument { doc, via_web } => Observation::DidDocument {
                doc,
                via_web: *via_web,
            },
            OwnedObservation::Labeler(entry) => Observation::Labeler(entry),
            OwnedObservation::Labels { src, labels } => Observation::Labels { src, labels },
            OwnedObservation::FeedGenerator(entry) => Observation::FeedGenerator(entry),
            OwnedObservation::Repo(snapshot) => Observation::Repo(snapshot),
            OwnedObservation::WireTrace(trace) => Observation::WireTrace(trace),
            OwnedObservation::WindowEnd { at } => Observation::WindowEnd { at: *at },
        }
    }
}

/// One sequence-numbered batch of owned observations — the unit the
/// intra-shard pipeline ships from the producer thread to its analyzer
/// workers. Workers assert they fold batches in contiguous `seq` order, so
/// channel scheduling can never reorder the stream an analyzer sees.
#[derive(Debug, Clone)]
pub struct ObservationBatch {
    /// Position of this batch in the shard's stream (0-based, contiguous).
    pub seq: u64,
    /// The materialized bus items, in emission order.
    pub items: Vec<OwnedObservation>,
}

/// Read-only context handed to analyzers with every observation and at
/// finish time.
///
/// Wraps the [`World`] so analyzers can run the study's *active*
/// measurements (DNS lookups, well-known fetches, WHOIS queries, Tranco
/// ranking, PSL suffix matching) against the same surfaces the collector
/// observed. A detached context (no world) is used when replaying
/// materialized datasets through analyzers that never touch the world.
#[derive(Clone, Copy)]
pub struct StudyCtx<'a> {
    world: Option<&'a World>,
}

impl<'a> StudyCtx<'a> {
    /// Context over a live world.
    pub fn new(world: &'a World) -> StudyCtx<'a> {
        StudyCtx { world: Some(world) }
    }

    /// Context with no world attached (dataset replay only).
    pub fn detached() -> StudyCtx<'static> {
        StudyCtx { world: None }
    }

    /// The world, if one is attached.
    pub fn try_world(&self) -> Option<&'a World> {
        self.world
    }

    /// The world. Panics when the analyzer requires active measurements but
    /// the context is detached.
    pub fn world(&self) -> &'a World {
        self.world
            .expect("this analyzer performs active measurements and needs a StudyCtx with a World")
    }
}

/// An incremental analysis: folds observations as they arrive, merges with
/// independently folded peers, and produces its result struct once the
/// collection window closes.
pub trait Analyzer {
    /// The analysis result (one of the report's table/figure structs).
    type Output;

    /// Fold one observation into the accumulators.
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>);

    /// Combine another analyzer's independently accumulated state into this
    /// one. Must satisfy the merge law documented at the module level:
    /// splitting a stream anywhere and merging the two halves' states is
    /// equivalent to folding the whole stream. The built-in analyzers all
    /// implement this; bespoke analyzers that are never sharded may keep
    /// the default, which panics.
    fn merge(&mut self, other: Self)
    where
        Self: Sized,
    {
        let _ = other;
        panic!("this analyzer does not implement merge");
    }

    /// Compute the final result. Called exactly once, after the last
    /// observation (and after all merges).
    fn finish(self, ctx: &StudyCtx<'_>) -> Self::Output;
}

/// Anything a producer can emit observations into.
///
/// [`crate::datasets::Collector::stream`] is generic over this, so the same
/// producer drives the dynamic [`StudyEngine`], the sharded runner's
/// concrete analyzer set, and bespoke probes (e.g. the benches' bounded-
/// index watcher).
pub trait ObservationSink {
    /// Receive one observation.
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>);
}

impl ObservationSink for StudyEngine {
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        StudyEngine::observe(self, obs, ctx);
    }
}

/// Object-safe adapter so the engine can hold heterogeneous analyzers.
trait ErasedAnalyzer {
    fn observe_erased(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>);
    fn finish_erased(self: Box<Self>, ctx: &StudyCtx<'_>) -> Box<dyn Any>;
}

impl<A> ErasedAnalyzer for A
where
    A: Analyzer + 'static,
    A::Output: 'static,
{
    fn observe_erased(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        self.observe(obs, ctx);
    }

    fn finish_erased(self: Box<Self>, ctx: &StudyCtx<'_>) -> Box<dyn Any> {
        Box::new((*self).finish(ctx))
    }
}

/// The observation bus: registered analyzers all see every observation.
#[derive(Default)]
pub struct StudyEngine {
    analyzers: Vec<Box<dyn ErasedAnalyzer>>,
    observations: u64,
}

impl StudyEngine {
    /// An engine with no analyzers.
    pub fn new() -> StudyEngine {
        StudyEngine::default()
    }

    /// Register an analyzer. Outputs are retrieved by type from
    /// [`AnalyzerOutputs`] after [`StudyEngine::finish`].
    pub fn register<A>(&mut self, analyzer: A)
    where
        A: Analyzer + 'static,
        A::Output: 'static,
    {
        self.analyzers.push(Box::new(analyzer));
    }

    /// Number of registered analyzers.
    pub fn analyzer_count(&self) -> usize {
        self.analyzers.len()
    }

    /// Number of observations dispatched so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Dispatch one observation to every analyzer.
    pub fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        self.observations += 1;
        for analyzer in &mut self.analyzers {
            analyzer.observe_erased(obs, ctx);
        }
    }

    /// Close the window: finish every analyzer and collect the outputs.
    pub fn finish(self, ctx: &StudyCtx<'_>) -> AnalyzerOutputs {
        AnalyzerOutputs {
            outputs: self
                .analyzers
                .into_iter()
                .map(|a| a.finish_erased(ctx))
                .collect(),
        }
    }
}

impl std::fmt::Debug for StudyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyEngine")
            .field("analyzers", &self.analyzers.len())
            .field("observations", &self.observations)
            .finish()
    }
}

/// The finished analyzers' outputs, retrievable by result type.
#[derive(Default)]
pub struct AnalyzerOutputs {
    outputs: Vec<Box<dyn Any>>,
}

impl AnalyzerOutputs {
    /// Remove and return the first output of type `T`.
    pub fn take<T: 'static>(&mut self) -> Option<T> {
        let index = self.outputs.iter().position(|o| o.is::<T>())?;
        self.outputs
            .remove(index)
            .downcast::<T>()
            .ok()
            .map(|boxed| *boxed)
    }

    /// Number of outputs still held.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether all outputs have been taken.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

/// Statistics of one producer run over the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Days the producer drove the world.
    pub days: u32,
    /// Observations emitted (including markers).
    pub observations: u64,
    /// Firehose events emitted (none retained by the producer).
    pub firehose_events: u64,
    /// Largest subscription batch held at once on the producer side. The
    /// producer interleaves chunked day steps with firehose reads, so this
    /// is bounded by the chunk size plus one user's commit burst —
    /// independent of the day's total event volume.
    pub peak_in_flight_events: usize,
    /// Weekly `sync.listRepos` snapshots taken inside the collection window
    /// (the final end-of-window sweep is not counted, matching the study's
    /// weekly cadence).
    pub listrepos_snapshots: u32,
    /// Bytes of repository data fetched for the §3 repositories dataset —
    /// full CARs plus `getRepo(since)` deltas. The full-refetch mode pays
    /// O(total repo bytes) here; the incremental mode O(changed bytes).
    pub snapshot_bytes_fetched: u64,
    /// Full repository CARs fetched (new / rewound DIDs, and every DID in
    /// full-refetch mode).
    pub repo_full_fetches: u64,
    /// `getRepo(since)` delta fetches (incremental mode only).
    pub repo_delta_fetches: u64,
    /// Repositories skipped because `getRepo` failed mid-snapshot (account
    /// deleted or migrated away); surfaced in the report footer so silent
    /// dataset gaps are visible.
    pub repo_snapshot_skips: u64,
    /// Delta syncs that fell back to a full CAR fetch because the PDS
    /// compacted the mirror's revision out of its delta-serving window —
    /// surfaced here, never silent.
    pub repo_compaction_fallbacks: u64,
    /// Block-store bytes reclaimed by the weekly repository compaction
    /// passes (aged-out commits, superseded MST nodes, unreachable record
    /// versions).
    pub store_bytes_reclaimed: u64,
    /// Block bytes resident in memory at the end of the run (fleet repos +
    /// relay CAR mirror + the producer's repo mirror).
    pub resident_block_bytes: u64,
    /// Block bytes spilled to disk at the end of the run (paged stores
    /// only; zero for the in-memory backend).
    pub spilled_block_bytes: u64,
    /// Blocks that failed CID verification when paged back in from disk,
    /// across every store in the run (repos, relay mirror, producer
    /// mirror). Corrupt blocks read as absent — any non-zero count here
    /// means data was lost to spill-file corruption and the run's snapshots
    /// may be incomplete; surfaced so that loss is never silent.
    pub store_corrupt_reads: u64,
    /// Labels the AppView could not apply because their target entity was
    /// not indexed when they arrived (the post was deleted, or the label
    /// raced the post). Counted like `repo_snapshot_skips` — a visible
    /// dataset gap, never a silent drop.
    pub appview_labels_preindex: u64,
    /// AppView counter mutations coalesced into an already-dirty entity by
    /// the hot/cold split — entity-block rewrite cycles the run did *not*
    /// pay compared to the one-block-per-entity design.
    pub counter_coalesced_writes: u64,
    /// Write-back cache drains across the AppView's entity stores (one per
    /// shard per day boundary with a non-empty buffer). Zero when the cache
    /// is off (`--writeback off`).
    pub writeback_flushes: u64,
    /// Block reads served out of the write-back cache's dirty buffer.
    pub writeback_hits: u64,
    /// Block reads that fell through the write-back buffer to the backend.
    pub writeback_misses: u64,
    /// Identity-resolution lookups the producer issued against the DNS
    /// zone store (`_atproto.<handle>` TXT) while riding the weekly
    /// `sync.listRepos` snapshots.
    pub identity_lookups: u64,
    /// Frames put on the firehose wire under the run's *active* framing
    /// policy (`--padding` / `--batch-window`). The §10 report sweeps all
    /// mitigation cells counterfactually; these counters describe the one
    /// wire this run actually produced.
    pub wire_frames: u64,
    /// Bytes the active framing policy spent above the raw event payload
    /// (frame headers plus padding, minus what batching reclaimed).
    pub padding_overhead_bytes: u64,
    /// Frames dropped by full per-connection capture buffers — a visible
    /// trace truncation, never silent.
    pub observer_trace_drops: u64,
    /// Retries the producer's [`bsky_simnet::faults::RetryPolicy`] issued
    /// beyond first attempts (repo fetches, delta fetches, DNS lookups).
    pub retry_attempts: u64,
    /// Total simulated milliseconds spent in per-attempt timeouts and
    /// exponential backoff across those retries.
    pub retry_backoff_ms: u64,
    /// Repo/delta fetch sequences abandoned after the retry budget was
    /// exhausted — each a permanent, counted give-up (the repo is skipped
    /// or falls back to a full fetch), never a silent drop.
    pub fetch_retry_giveups: u64,
    /// DNS resolutions abandoned after the retry budget was exhausted.
    pub dns_retry_giveups: u64,
    /// `_atproto.` TXT resolutions that returned SERVFAIL — injected flaps
    /// plus genuinely broken delegations, counted distinctly from generic
    /// lookup failure.
    pub dns_servfails: u64,
    /// Mirror repos re-fetched in full because their hosting PDS changed
    /// (mass migration after a host outage, or organic churn migration).
    pub backfill_full_fetches: u64,
    /// Commit events lost to injected firehose cursor gaps (the slow
    /// consumer missed them); a visible stream gap, never silent.
    pub cursor_gap_drops: u64,
    /// Events re-read after injected cursor rewinds (the consumer replays
    /// from the day-start cursor without re-observing).
    pub cursor_rewind_replays: u64,
    /// did:web documents whose well-known fetch failed or did not parse
    /// during the end-of-window DID-document sweep.
    pub did_doc_fetch_failures: u64,
    /// Accounts mass-migrated by the injected PDS host outage.
    pub outage_migrations: u64,
    /// Spam-wave posts injected on top of planned content.
    pub spam_posts_injected: u64,
    /// Posts flagged by the injected label storm.
    pub storm_labels_applied: u64,
    /// Accounts deleted by the injected tombstone storm.
    pub storm_tombstones: u64,
    /// Observation batches the intra-shard pipeline shipped from the
    /// producer thread to its analyzer workers (zero when the pipeline is
    /// off). Diagnostics only — never rendered into the report, so
    /// pipelined reports stay byte-identical.
    pub pipeline_batches: u64,
    /// Frames the super-relay accepted from the regional relay tier (zero
    /// outside `--relays N` federation). Diagnostics only — never rendered
    /// into the report, which stays byte-identical to a single-relay run.
    pub relay_events_forwarded: u64,
    /// Frames the super-relay dropped as cross-relay duplicates (zero in a
    /// clean-partition federated run: each region owns a disjoint PDS
    /// slice, so nothing arrives twice).
    pub relay_duplicates_dropped: u64,
    /// Frame identities admitted into the cross-relay dedup index.
    pub relay_dedup_tracked: u64,
}

impl StreamSummary {
    /// Render a one-line summary for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "pipeline: {} days, {} observations, {} firehose events streamed, peak {} in flight (batch would retain all {}); repo snapshots: {} bytes fetched ({} full, {} delta), {} skipped, {} compaction fallback(s); store: {} bytes resident, {} spilled, {} reclaimed by compaction",
            self.days,
            self.observations,
            self.firehose_events,
            self.peak_in_flight_events,
            self.firehose_events,
            self.snapshot_bytes_fetched,
            self.repo_full_fetches,
            self.repo_delta_fetches,
            self.repo_snapshot_skips,
            self.repo_compaction_fallbacks,
            self.resident_block_bytes,
            self.spilled_block_bytes,
            self.store_bytes_reclaimed,
        );
        out.push_str(&format!(
            "; observatory: {} frames on the wire, {} overhead bytes, {} identity lookups",
            self.wire_frames, self.padding_overhead_bytes, self.identity_lookups
        ));
        if self.observer_trace_drops > 0 {
            out.push_str(&format!(
                ", {} trace frame(s) dropped by full capture buffers",
                self.observer_trace_drops
            ));
        }
        if self.store_corrupt_reads > 0 {
            out.push_str(&format!(
                ", {} corrupt read(s) — snapshots may be incomplete",
                self.store_corrupt_reads
            ));
        }
        if self.appview_labels_preindex > 0 {
            out.push_str(&format!(
                "; appview: {} label(s) targeted unindexed entities",
                self.appview_labels_preindex
            ));
        }
        if self.counter_coalesced_writes > 0 || self.writeback_flushes > 0 {
            out.push_str(&format!(
                "; hot/cold: {} counter write(s) coalesced, write-back {} flush(es), {} hit(s), {} miss(es)",
                self.counter_coalesced_writes,
                self.writeback_flushes,
                self.writeback_hits,
                self.writeback_misses
            ));
        }
        if self.retry_attempts > 0 || self.fetch_retry_giveups > 0 || self.dns_retry_giveups > 0 {
            out.push_str(&format!(
                "; retries: {} attempts over {} ms backoff, {} fetch give-up(s), {} dns give-up(s)",
                self.retry_attempts,
                self.retry_backoff_ms,
                self.fetch_retry_giveups,
                self.dns_retry_giveups
            ));
        }
        if self.dns_servfails > 0 {
            out.push_str(&format!("; dns: {} servfail(s)", self.dns_servfails));
        }
        if self.backfill_full_fetches > 0 {
            out.push_str(&format!(
                "; backfill: {} host-change full fetch(es)",
                self.backfill_full_fetches
            ));
        }
        if self.cursor_gap_drops > 0 || self.cursor_rewind_replays > 0 {
            out.push_str(&format!(
                "; cursor: {} commit(s) lost to gaps, {} event(s) replayed on rewinds",
                self.cursor_gap_drops, self.cursor_rewind_replays
            ));
        }
        if self.pipeline_batches > 0 {
            out.push_str(&format!(
                "; pipeline: {} observation batch(es) to analyzer workers",
                self.pipeline_batches
            ));
        }
        if self.relay_events_forwarded > 0 || self.relay_duplicates_dropped > 0 {
            out.push_str(&format!(
                "; federation: {} frame(s) forwarded to the super-relay, {} tracked, {} duplicate(s) dropped",
                self.relay_events_forwarded,
                self.relay_dedup_tracked,
                self.relay_duplicates_dropped
            ));
        }
        if self.did_doc_fetch_failures > 0 {
            out.push_str(&format!(
                "; did docs: {} fetch failure(s)",
                self.did_doc_fetch_failures
            ));
        }
        if self.outage_migrations > 0
            || self.spam_posts_injected > 0
            || self.storm_labels_applied > 0
            || self.storm_tombstones > 0
        {
            out.push_str(&format!(
                "; injected: {} outage migration(s), {} spam post(s), {} storm label(s), {} storm tombstone(s)",
                self.outage_migrations,
                self.spam_posts_injected,
                self.storm_labels_applied,
                self.storm_tombstones
            ));
        }
        out
    }

    /// Fold another producer's summary into this one (used when merging
    /// per-shard runs: counters add, peaks take the max, per-run constants
    /// take the max so identical values pass through).
    pub fn absorb(&mut self, other: &StreamSummary) {
        self.days = self.days.max(other.days);
        self.observations += other.observations;
        self.firehose_events += other.firehose_events;
        self.peak_in_flight_events = self.peak_in_flight_events.max(other.peak_in_flight_events);
        self.listrepos_snapshots = self.listrepos_snapshots.max(other.listrepos_snapshots);
        self.snapshot_bytes_fetched += other.snapshot_bytes_fetched;
        self.repo_full_fetches += other.repo_full_fetches;
        self.repo_delta_fetches += other.repo_delta_fetches;
        self.repo_snapshot_skips += other.repo_snapshot_skips;
        self.repo_compaction_fallbacks += other.repo_compaction_fallbacks;
        self.store_bytes_reclaimed += other.store_bytes_reclaimed;
        self.resident_block_bytes += other.resident_block_bytes;
        self.spilled_block_bytes += other.spilled_block_bytes;
        self.store_corrupt_reads += other.store_corrupt_reads;
        self.appview_labels_preindex += other.appview_labels_preindex;
        self.counter_coalesced_writes += other.counter_coalesced_writes;
        self.writeback_flushes += other.writeback_flushes;
        self.writeback_hits += other.writeback_hits;
        self.writeback_misses += other.writeback_misses;
        self.identity_lookups += other.identity_lookups;
        self.wire_frames += other.wire_frames;
        self.padding_overhead_bytes += other.padding_overhead_bytes;
        self.observer_trace_drops += other.observer_trace_drops;
        self.retry_attempts += other.retry_attempts;
        self.retry_backoff_ms += other.retry_backoff_ms;
        self.fetch_retry_giveups += other.fetch_retry_giveups;
        self.dns_retry_giveups += other.dns_retry_giveups;
        self.dns_servfails += other.dns_servfails;
        self.backfill_full_fetches += other.backfill_full_fetches;
        self.cursor_gap_drops += other.cursor_gap_drops;
        self.cursor_rewind_replays += other.cursor_rewind_replays;
        self.did_doc_fetch_failures += other.did_doc_fetch_failures;
        self.outage_migrations += other.outage_migrations;
        self.spam_posts_injected += other.spam_posts_injected;
        self.storm_labels_applied += other.storm_labels_applied;
        self.storm_tombstones += other.storm_tombstones;
        self.pipeline_batches += other.pipeline_batches;
        self.relay_events_forwarded += other.relay_events_forwarded;
        self.relay_duplicates_dropped += other.relay_duplicates_dropped;
        self.relay_dedup_tracked += other.relay_dedup_tracked;
    }
}

/// Walk an already-collected [`Datasets`] in the canonical *category* order
/// the live producer uses (window start, firehose, user identifiers, DID
/// documents, labelers with their label streams, feed generators,
/// repositories, wire traces, window end), invoking `emit` for each
/// observation.
pub fn for_each_observation<'a, F: FnMut(Observation<'a>)>(datasets: &'a Datasets, mut emit: F) {
    emit(Observation::WindowStart {
        firehose_collection_start: datasets.firehose_collection_start,
        collection_end: datasets.collection_end,
    });
    for event in &datasets.firehose_events {
        emit(Observation::Firehose(event));
    }
    for (did, rev) in &datasets.user_identifiers {
        emit(Observation::UserIdentifier {
            did,
            rev: rev.as_deref(),
        });
    }
    // did:web documents are appended after the PLC export by the collector;
    // reconstruct the flag from the tail count. Saturate so a hand-built
    // Datasets with an inconsistent did_web_count degrades to labelling
    // every document did:web instead of panicking.
    let plc_docs = datasets
        .did_documents
        .len()
        .saturating_sub(datasets.did_web_count);
    for (index, doc) in datasets.did_documents.iter().enumerate() {
        emit(Observation::DidDocument {
            doc,
            via_web: index >= plc_docs,
        });
    }
    for labeler in &datasets.labelers {
        emit(Observation::Labeler(labeler));
        if !labeler.labels.is_empty() {
            emit(Observation::Labels {
                src: &labeler.did,
                labels: &labeler.labels,
            });
        }
    }
    for feed in &datasets.feed_generators {
        emit(Observation::FeedGenerator(feed));
    }
    for repo in &datasets.repositories {
        emit(Observation::Repo(repo));
    }
    for trace in &datasets.wire_traces {
        emit(Observation::WireTrace(trace));
    }
    emit(Observation::WindowEnd {
        at: datasets.collection_end,
    });
}

/// Re-emit an already-collected [`Datasets`] over the bus in canonical
/// order (see [`for_each_observation`]), then finish the analyzer.
///
/// This is how the batch analysis functions are implemented, which makes
/// "batch result == streaming result" hold by construction for analyzers
/// that depend only on per-category order. Two stream features are *not*
/// reproduced: no [`Observation::DayBoundary`] markers are emitted (so no
/// index aging happens — harmless, because labels always arrive within the
/// bounded reaction window), and the live stream interleaves label batches
/// and weekly identifier snapshots with the firehose while the replay emits
/// whole categories. The built-in analyzers are split-insensitive (the
/// merge law), so both orders produce identical results; the golden test in
/// `tests/pipeline_equivalence.rs` pins this against the live stream.
pub fn replay<A: Analyzer>(mut analyzer: A, datasets: &Datasets, ctx: &StudyCtx<'_>) -> A::Output {
    for_each_observation(datasets, |obs| analyzer.observe(&obs, ctx));
    analyzer.finish(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts observations by coarse kind.
    #[derive(Default)]
    struct CountingAnalyzer {
        firehose: u64,
        snapshots: u64,
        markers: u64,
    }

    #[derive(Debug, PartialEq, Eq)]
    struct Counts {
        firehose: u64,
        snapshots: u64,
        markers: u64,
    }

    impl Analyzer for CountingAnalyzer {
        type Output = Counts;

        fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
            match obs {
                Observation::Firehose(_) => self.firehose += 1,
                Observation::WindowStart { .. }
                | Observation::DayBoundary { .. }
                | Observation::WindowEnd { .. } => self.markers += 1,
                _ => self.snapshots += 1,
            }
        }

        fn merge(&mut self, other: Self) {
            self.firehose += other.firehose;
            self.snapshots += other.snapshots;
            self.markers += other.markers;
        }

        fn finish(self, _ctx: &StudyCtx<'_>) -> Counts {
            Counts {
                firehose: self.firehose,
                snapshots: self.snapshots,
                markers: self.markers,
            }
        }
    }

    #[test]
    fn engine_dispatches_and_returns_typed_outputs() {
        let mut engine = StudyEngine::new();
        engine.register(CountingAnalyzer::default());
        assert_eq!(engine.analyzer_count(), 1);
        let ctx = StudyCtx::detached();
        let day = Datetime::from_ymd(2024, 3, 6).unwrap();
        engine.observe(
            &Observation::WindowStart {
                firehose_collection_start: day,
                collection_end: day,
            },
            &ctx,
        );
        engine.observe(&Observation::DayBoundary { day }, &ctx);
        engine.observe(&Observation::WindowEnd { at: day }, &ctx);
        assert_eq!(engine.observations(), 3);
        let mut outputs = engine.finish(&ctx);
        assert_eq!(outputs.len(), 1);
        let counts = outputs.take::<Counts>().unwrap();
        assert_eq!(
            counts,
            Counts {
                firehose: 0,
                snapshots: 0,
                markers: 3
            }
        );
        assert!(outputs.is_empty());
        assert!(outputs.take::<Counts>().is_none());
    }

    #[test]
    fn replay_emits_canonical_order_and_counts() {
        let datasets = Datasets {
            firehose_collection_start: Datetime::from_ymd(2024, 3, 6).unwrap(),
            collection_end: Datetime::from_ymd(2024, 5, 1).unwrap(),
            ..Datasets::default()
        };
        let counts = replay(
            CountingAnalyzer::default(),
            &datasets,
            &StudyCtx::detached(),
        );
        assert_eq!(
            counts,
            Counts {
                firehose: 0,
                snapshots: 0,
                markers: 2
            }
        );
    }

    #[test]
    fn merged_counting_analyzers_equal_one() {
        let ctx = StudyCtx::detached();
        let day = Datetime::from_ymd(2024, 3, 6).unwrap();
        let mut whole = CountingAnalyzer::default();
        let mut a = CountingAnalyzer::default();
        let mut b = CountingAnalyzer::default();
        for i in 0..5 {
            let obs = Observation::DayBoundary {
                day: day.plus_days(i),
            };
            whole.observe(&obs, &ctx);
            if i < 2 {
                a.observe(&obs, &ctx);
            } else {
                b.observe(&obs, &ctx);
            }
        }
        a.merge(b);
        assert_eq!(a.finish(&ctx), whole.finish(&ctx));
    }

    #[test]
    #[should_panic(expected = "does not implement merge")]
    fn default_merge_panics() {
        struct NoMerge;
        impl Analyzer for NoMerge {
            type Output = ();
            fn observe(&mut self, _obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {}
            fn finish(self, _ctx: &StudyCtx<'_>) {}
        }
        let mut a = NoMerge;
        a.merge(NoMerge);
    }
}
