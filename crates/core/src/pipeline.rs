//! The streaming measurement pipeline: an observation bus plus incremental
//! analyzers.
//!
//! The batch pipeline of the original seed materialized all six §3 datasets
//! into vectors and then re-scanned them once per analysis. The real study
//! consumed the firehose as a *stream* over weeks; this module reproduces
//! that consumption model:
//!
//! * [`Observation`] — one item on the bus: a firehose event, a snapshot row
//!   of one of the §3 datasets, or a collection-window marker. Observations
//!   borrow their payloads, so producers can emit and immediately drop them.
//! * [`Analyzer`] — an incremental consumer: `observe` folds one observation
//!   into internal accumulators, `finish` computes the final result struct.
//! * [`StudyEngine`] — the bus itself: analyzers register, the producer
//!   pushes observations, and `finish` hands back every analyzer's output.
//! * [`StudyCtx`] — read-only access to the simulated [`World`]'s active
//!   measurement surfaces (DNS, WHOIS, Tranco, PSL, AppView), mirroring the
//!   active measurements the study ran alongside the passive collection.
//!
//! The engine computes the full study report in **one pass** without
//! retaining the firehose: events are folded as they arrive (peak in-flight
//! is one day's subscription batch), and only per-entity aggregates survive
//! between observations. Memory is therefore bounded by entity counts —
//! accounts, posts, label values — rather than by firehose volume; the
//! largest remaining index (the moderation analyzer's post-creation times)
//! is a known follow-up in ROADMAP.md. The legacy batch path is kept alive by one optional
//! *materializing* analyzer ([`crate::datasets::Materialize`]) plus
//! [`replay`], which re-emits an already-collected [`Datasets`] over the bus
//! in canonical order so batch and streaming results are identical by
//! construction.

use crate::datasets::{Datasets, FeedGenEntry, LabelerEntry, RepoSnapshot};
use bsky_atproto::firehose::Event;
use bsky_atproto::{Datetime, Did};
use bsky_identity::DidDocument;
use bsky_workload::World;
use std::any::Any;

/// One item on the observation bus.
///
/// Variants borrow their payloads from the producer: the engine dispatches a
/// shared reference to every analyzer and the producer drops the value right
/// after, so nothing is retained unless an analyzer copies it on purpose.
#[derive(Debug, Clone, Copy)]
pub enum Observation<'a> {
    /// Collection is starting. Carries the window boundaries so analyzers
    /// need not reach into the world configuration.
    WindowStart {
        /// When the continuous firehose subscription begins.
        firehose_collection_start: Datetime,
        /// Day after the last collected day.
        collection_end: Datetime,
    },
    /// A new simulated day is about to be observed.
    DayBoundary {
        /// Start of the day.
        day: Datetime,
    },
    /// One firehose event (already filtered to the collection window).
    Firehose(&'a Event),
    /// One row of the user-identifier dataset (`sync.listRepos`), emitted at
    /// most once per DID across all weekly snapshots.
    UserIdentifier {
        /// The account DID.
        did: &'a Did,
        /// Latest repo revision, if any.
        rev: Option<&'a str>,
    },
    /// One DID document (PLC export or did:web fetch).
    DidDocument {
        /// The document.
        doc: &'a DidDocument,
        /// Whether it was fetched over HTTPS as a did:web document.
        via_web: bool,
    },
    /// One labeling service with its full label stream.
    Labeler(&'a LabelerEntry),
    /// One feed generator with its curated posts.
    FeedGenerator(&'a FeedGenEntry),
    /// One decoded repository snapshot.
    Repo(&'a RepoSnapshot),
    /// Collection has ended; `finish` will be called next.
    WindowEnd {
        /// The end of the collection window.
        at: Datetime,
    },
}

/// Read-only context handed to analyzers with every observation and at
/// finish time.
///
/// Wraps the [`World`] so analyzers can run the study's *active*
/// measurements (DNS lookups, well-known fetches, WHOIS queries, Tranco
/// ranking, PSL suffix matching, AppView graph queries) against the same
/// surfaces the collector observed. A detached context (no world) is used
/// when replaying materialized datasets through analyzers that never touch
/// the world.
#[derive(Clone, Copy)]
pub struct StudyCtx<'a> {
    world: Option<&'a World>,
}

impl<'a> StudyCtx<'a> {
    /// Context over a live world.
    pub fn new(world: &'a World) -> StudyCtx<'a> {
        StudyCtx { world: Some(world) }
    }

    /// Context with no world attached (dataset replay only).
    pub fn detached() -> StudyCtx<'static> {
        StudyCtx { world: None }
    }

    /// The world, if one is attached.
    pub fn try_world(&self) -> Option<&'a World> {
        self.world
    }

    /// The world. Panics when the analyzer requires active measurements but
    /// the context is detached.
    pub fn world(&self) -> &'a World {
        self.world
            .expect("this analyzer performs active measurements and needs a StudyCtx with a World")
    }
}

/// An incremental analysis: folds observations as they arrive and produces
/// its result struct once the collection window closes.
pub trait Analyzer {
    /// The analysis result (one of the report's table/figure structs).
    type Output;

    /// Fold one observation into the accumulators.
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>);

    /// Compute the final result. Called exactly once, after the last
    /// observation.
    fn finish(self, ctx: &StudyCtx<'_>) -> Self::Output;
}

/// Object-safe adapter so the engine can hold heterogeneous analyzers.
trait ErasedAnalyzer {
    fn observe_erased(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>);
    fn finish_erased(self: Box<Self>, ctx: &StudyCtx<'_>) -> Box<dyn Any>;
}

impl<A> ErasedAnalyzer for A
where
    A: Analyzer + 'static,
    A::Output: 'static,
{
    fn observe_erased(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        self.observe(obs, ctx);
    }

    fn finish_erased(self: Box<Self>, ctx: &StudyCtx<'_>) -> Box<dyn Any> {
        Box::new((*self).finish(ctx))
    }
}

/// The observation bus: registered analyzers all see every observation.
#[derive(Default)]
pub struct StudyEngine {
    analyzers: Vec<Box<dyn ErasedAnalyzer>>,
    observations: u64,
}

impl StudyEngine {
    /// An engine with no analyzers.
    pub fn new() -> StudyEngine {
        StudyEngine::default()
    }

    /// Register an analyzer. Outputs are retrieved by type from
    /// [`AnalyzerOutputs`] after [`StudyEngine::finish`].
    pub fn register<A>(&mut self, analyzer: A)
    where
        A: Analyzer + 'static,
        A::Output: 'static,
    {
        self.analyzers.push(Box::new(analyzer));
    }

    /// Number of registered analyzers.
    pub fn analyzer_count(&self) -> usize {
        self.analyzers.len()
    }

    /// Number of observations dispatched so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Dispatch one observation to every analyzer.
    pub fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        self.observations += 1;
        for analyzer in &mut self.analyzers {
            analyzer.observe_erased(obs, ctx);
        }
    }

    /// Close the window: finish every analyzer and collect the outputs.
    pub fn finish(self, ctx: &StudyCtx<'_>) -> AnalyzerOutputs {
        AnalyzerOutputs {
            outputs: self
                .analyzers
                .into_iter()
                .map(|a| a.finish_erased(ctx))
                .collect(),
        }
    }
}

impl std::fmt::Debug for StudyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyEngine")
            .field("analyzers", &self.analyzers.len())
            .field("observations", &self.observations)
            .finish()
    }
}

/// The finished analyzers' outputs, retrievable by result type.
#[derive(Default)]
pub struct AnalyzerOutputs {
    outputs: Vec<Box<dyn Any>>,
}

impl AnalyzerOutputs {
    /// Remove and return the first output of type `T`.
    pub fn take<T: 'static>(&mut self) -> Option<T> {
        let index = self.outputs.iter().position(|o| o.is::<T>())?;
        self.outputs
            .remove(index)
            .downcast::<T>()
            .ok()
            .map(|boxed| *boxed)
    }

    /// Number of outputs still held.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether all outputs have been taken.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

/// Statistics of one producer run over the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Days the producer drove the world.
    pub days: u32,
    /// Observations emitted (including markers).
    pub observations: u64,
    /// Firehose events emitted (none retained by the producer).
    pub firehose_events: u64,
    /// Largest subscription batch held at once on the producer side. This
    /// is the producer's true transient buffer: normally one day's events,
    /// except the first in-window read, which also carries the relay's
    /// retained pre-window backlog before filtering. The batch collector by
    /// contrast retains all `firehose_events` until the analyses finish.
    pub peak_in_flight_events: usize,
    /// Weekly `sync.listRepos` snapshots taken inside the collection window
    /// (the final end-of-window sweep is not counted, matching the study's
    /// weekly cadence).
    pub listrepos_snapshots: u32,
}

impl StreamSummary {
    /// Render a one-line summary for CLI output.
    pub fn render(&self) -> String {
        format!(
            "pipeline: {} days, {} observations, {} firehose events streamed, peak {} in flight (batch would retain all {})",
            self.days,
            self.observations,
            self.firehose_events,
            self.peak_in_flight_events,
            self.firehose_events,
        )
    }
}

/// Re-emit an already-collected [`Datasets`] over the bus in the canonical
/// *category* order the live producer uses (window start, firehose, user
/// identifiers, DID documents, labelers, feed generators, repositories,
/// window end), then finish the analyzer.
///
/// This is how the batch analysis functions are implemented, which makes
/// "batch result == streaming result" hold by construction for analyzers
/// that depend only on per-category order. Two stream features are *not*
/// reproduced: no [`Observation::DayBoundary`] markers are emitted, and the
/// live stream interleaves weekly user-identifier snapshots with the
/// firehose while the replay emits the firehose first. An analyzer that
/// counts day boundaries or correlates identifier arrival with firehose
/// timing must therefore be validated against the live stream, not this
/// replay (the golden test in `tests/pipeline_equivalence.rs` does exactly
/// that for the built-in analyzers).
pub fn replay<A: Analyzer>(mut analyzer: A, datasets: &Datasets, ctx: &StudyCtx<'_>) -> A::Output {
    let mut emit = |obs: Observation<'_>| analyzer.observe(&obs, ctx);
    emit(Observation::WindowStart {
        firehose_collection_start: datasets.firehose_collection_start,
        collection_end: datasets.collection_end,
    });
    for event in &datasets.firehose_events {
        emit(Observation::Firehose(event));
    }
    for (did, rev) in &datasets.user_identifiers {
        emit(Observation::UserIdentifier {
            did,
            rev: rev.as_deref(),
        });
    }
    // did:web documents are appended after the PLC export by the collector;
    // reconstruct the flag from the tail count. Saturate so a hand-built
    // Datasets with an inconsistent did_web_count degrades to labelling
    // every document did:web instead of panicking.
    let plc_docs = datasets
        .did_documents
        .len()
        .saturating_sub(datasets.did_web_count);
    for (index, doc) in datasets.did_documents.iter().enumerate() {
        emit(Observation::DidDocument {
            doc,
            via_web: index >= plc_docs,
        });
    }
    for labeler in &datasets.labelers {
        emit(Observation::Labeler(labeler));
    }
    for feed in &datasets.feed_generators {
        emit(Observation::FeedGenerator(feed));
    }
    for repo in &datasets.repositories {
        emit(Observation::Repo(repo));
    }
    emit(Observation::WindowEnd {
        at: datasets.collection_end,
    });
    analyzer.finish(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts observations by coarse kind.
    #[derive(Default)]
    struct CountingAnalyzer {
        firehose: u64,
        snapshots: u64,
        markers: u64,
    }

    #[derive(Debug, PartialEq, Eq)]
    struct Counts {
        firehose: u64,
        snapshots: u64,
        markers: u64,
    }

    impl Analyzer for CountingAnalyzer {
        type Output = Counts;

        fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
            match obs {
                Observation::Firehose(_) => self.firehose += 1,
                Observation::WindowStart { .. }
                | Observation::DayBoundary { .. }
                | Observation::WindowEnd { .. } => self.markers += 1,
                _ => self.snapshots += 1,
            }
        }

        fn finish(self, _ctx: &StudyCtx<'_>) -> Counts {
            Counts {
                firehose: self.firehose,
                snapshots: self.snapshots,
                markers: self.markers,
            }
        }
    }

    #[test]
    fn engine_dispatches_and_returns_typed_outputs() {
        let mut engine = StudyEngine::new();
        engine.register(CountingAnalyzer::default());
        assert_eq!(engine.analyzer_count(), 1);
        let ctx = StudyCtx::detached();
        let day = Datetime::from_ymd(2024, 3, 6).unwrap();
        engine.observe(
            &Observation::WindowStart {
                firehose_collection_start: day,
                collection_end: day,
            },
            &ctx,
        );
        engine.observe(&Observation::DayBoundary { day }, &ctx);
        engine.observe(&Observation::WindowEnd { at: day }, &ctx);
        assert_eq!(engine.observations(), 3);
        let mut outputs = engine.finish(&ctx);
        assert_eq!(outputs.len(), 1);
        let counts = outputs.take::<Counts>().unwrap();
        assert_eq!(
            counts,
            Counts {
                firehose: 0,
                snapshots: 0,
                markers: 3
            }
        );
        assert!(outputs.is_empty());
        assert!(outputs.take::<Counts>().is_none());
    }

    #[test]
    fn replay_emits_canonical_order_and_counts() {
        let datasets = Datasets {
            firehose_collection_start: Datetime::from_ymd(2024, 3, 6).unwrap(),
            collection_end: Datetime::from_ymd(2024, 5, 1).unwrap(),
            ..Datasets::default()
        };
        let counts = replay(
            CountingAnalyzer::default(),
            &datasets,
            &StudyCtx::detached(),
        );
        assert_eq!(
            counts,
            Counts {
                firehose: 0,
                snapshots: 0,
                markers: 2
            }
        );
    }
}
