//! The full study report: run the collector, compute every analysis, and
//! render or serialise the results.

use crate::analysis::{
    activity_series, firehose_volume, identity_report, moderation_report, recommendation_report,
    section4_accounts, table1_firehose_breakdown, table5_feature_matrix, ActivitySeries,
    FirehoseVolume, IdentityReport, ModerationReport, RecommendationReport, Section4, Table1,
};
use crate::datasets::{Collector, Datasets};
use bsky_workload::{ScenarioConfig, World};

/// All analyses of the paper, computed for one simulated run.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// The scenario that produced the report.
    pub config: ScenarioConfig,
    /// Table 1.
    pub table1: Table1,
    /// Figures 1–2 and §4 totals.
    pub activity: ActivitySeries,
    /// §4 account popularity and non-Bluesky content.
    pub section4: Section4,
    /// §5, Table 2, Figure 3.
    pub identity: IdentityReport,
    /// §6, Tables 3/4/6, Figures 4/5/6.
    pub moderation: ModerationReport,
    /// §7, Table 5, Figures 7–12.
    pub recommendation: RecommendationReport,
    /// §9 firehose volume.
    pub firehose_volume: FirehoseVolume,
}

impl StudyReport {
    /// Run the full pipeline: build the world, collect the datasets, compute
    /// every analysis.
    pub fn run(config: ScenarioConfig) -> StudyReport {
        let mut world = World::new(config);
        let datasets = Collector::new().run(&mut world);
        StudyReport::from_collected(config, &world, &datasets)
    }

    /// Compute the analyses from already-collected datasets.
    pub fn from_collected(
        config: ScenarioConfig,
        world: &World,
        datasets: &Datasets,
    ) -> StudyReport {
        StudyReport {
            config,
            table1: table1_firehose_breakdown(datasets),
            activity: activity_series(datasets),
            section4: section4_accounts(datasets),
            identity: identity_report(datasets, world),
            moderation: moderation_report(datasets, world),
            recommendation: recommendation_report(datasets, world),
            firehose_volume: firehose_volume(datasets, world),
        }
    }

    /// Render the whole report as text (every table and figure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Reproduction run: seed {} scale 1:{} ({} → {}) ==\n\n",
            self.config.seed,
            self.config.scale,
            self.config.start.date(),
            self.config.end.date()
        ));
        out.push_str(&self.table1.render());
        out.push('\n');
        out.push_str(&self.activity.render_figure1());
        out.push('\n');
        out.push_str(&self.activity.render_figure2());
        out.push('\n');
        out.push_str(&self.section4.render());
        out.push('\n');
        out.push_str(&self.identity.render());
        out.push('\n');
        out.push_str(&self.moderation.render());
        out.push('\n');
        out.push_str(&self.recommendation.render());
        out.push('\n');
        out.push_str(&table5_feature_matrix());
        out.push('\n');
        out.push_str(&self.firehose_volume.render());
        out
    }

    /// Serialise headline numbers as JSON for EXPERIMENTS.md tooling.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "seed": self.config.seed,
            "scale": self.config.scale,
            "table1": {
                "total_events": self.table1.total,
                "rows": self.table1.rows.iter().map(|(n, c, s)| {
                    serde_json::json!({"type": n, "count": c, "share_pct": s})
                }).collect::<Vec<_>>(),
            },
            "section4": {
                "totals": {
                    "posts": self.activity.totals.0,
                    "likes": self.activity.totals.1,
                    "follows": self.activity.totals.2,
                    "reposts": self.activity.totals.3,
                    "blocks": self.activity.totals.4,
                },
                "non_bsky_records": self.section4.non_bsky_records,
            },
            "section5": {
                "handles": self.identity.total_handles,
                "bsky_social_share_pct": self.identity.bsky_social.1,
                "did_web": self.identity.did_web,
                "dns_txt_share_pct": self.identity.proofs.2,
                "tranco_share_pct": self.identity.tranco_overlap.1,
            },
            "section6": {
                "labelers_announced": self.moderation.labeler_counts.0,
                "labelers_functional": self.moderation.labeler_counts.1,
                "labelers_active": self.moderation.labeler_counts.2,
                "community_share_last_month_pct": self.moderation.community_share_last_month,
                "label_interactions": self.moderation.interactions.0,
                "rescinded": self.moderation.interactions.1,
                "posts_labeled_share_pct": self.moderation.last_month_posts_labeled_share,
            },
            "section7": {
                "feeds": self.recommendation.total_feeds,
                "never_curated_pct": self.recommendation.never_curated.1,
                "r_feeds_followers": self.recommendation.r_feeds_followers,
                "r_likes_followers": self.recommendation.r_likes_followers,
                "skyfeed_share_pct": self.recommendation.platform_shares.first().map(|p| p.2),
            },
            "section9": {
                "firehose_gb_per_day_extrapolated": self.firehose_volume.extrapolated_full_network / 1e9,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::Datetime;

    #[test]
    fn full_report_runs_and_serialises() {
        let mut config = ScenarioConfig::test_scale(21);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.scale = 40_000;
        let report = StudyReport::run(config);
        let text = report.render();
        for needle in [
            "Table 1",
            "Figure 1",
            "Figure 3",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 6",
            "Figure 7",
            "Figure 12",
            "Table 5",
            "firehose volume",
        ] {
            assert!(text.contains(needle), "report missing {needle}");
        }
        let json = report.to_json();
        assert!(json["table1"]["total_events"].as_u64().unwrap() > 0);
        assert!(json["section5"]["bsky_social_share_pct"].as_f64().unwrap() > 90.0);
        assert!(json["section6"]["labelers_announced"].as_u64().unwrap() >= 40);
    }
}
