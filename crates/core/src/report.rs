//! The full study report: stream the world through the analyzers in one
//! pass — serially or sharded across worker threads — and render or
//! serialise the results.
//!
//! Every entry point takes one [`RunSpec`]: [`StudyReport::run`] drives the
//! sharded streaming engine ([`crate::shard::collect_sharded`]) and
//! assembles the report from the merged analyzer states — firehose events
//! are never retained, and the result is byte-identical to the serial
//! run's for any `(shards, jobs)`. [`StudyReport::run_serial`] is the
//! single-shard convenience (report + [`StreamSummary`]).
//! [`StudyReport::run_batch`] is the legacy materializing path: collect
//! [`Datasets`] first, then compute every analysis from the vectors — all
//! paths produce identical reports (the golden equivalence test in
//! `tests/` pins this). [`StudyBatch::from_spec`] expands a spec's
//! seed × scale grid and runs every cell through the streaming engine.

use crate::analysis::{
    activity_series, firehose_volume, identity_report, moderation_report, recommendation_report,
    section4_accounts, table1_firehose_breakdown, table5_feature_matrix, ActivitySeries,
    FirehoseVolume, IdentityReport, ModerationReport, RecommendationReport, Section4, Table1,
};
use crate::datasets::{Collector, Datasets};
use crate::json::Json;
use crate::observatory::{observatory_report, ObservatoryReport};
use crate::pipeline::{Analyzer, StreamSummary, StudyCtx};
use crate::shard::{collect_sharded, ShardedSummary, StudyAnalyzers};
use crate::spec::RunSpec;
use bsky_workload::{ScenarioConfig, World, WorldSpec};

/// The injected-fault impact section of a scenario run's report: the named
/// recovery-path counters from the merged [`StreamSummary`], rendered as
/// their own report section. Present only on runs launched with a non-quiet
/// [`RunSpec::faults`] spec (repro `--scenario` / `--faults`) — quiet runs
/// carry `None` and their reports stay byte-identical to pre-fault-layer
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultImpact {
    /// Scenario name (or `custom` for a `--faults` spec).
    pub scenario: String,
    /// Retries issued across all timeout classes.
    pub retry_attempts: u64,
    /// Simulated milliseconds spent in timeouts + backoff.
    pub retry_backoff_ms: u64,
    /// Repo fetches abandoned after the retry budget.
    pub fetch_retry_giveups: u64,
    /// DNS lookups abandoned after the retry budget.
    pub dns_retry_giveups: u64,
    /// SERVFAIL responses observed on the identity path.
    pub dns_servfails: u64,
    /// Full fetches forced by a repo re-homing to another PDS.
    pub backfill_full_fetches: u64,
    /// Firehose commits lost to injected cursor gaps.
    pub cursor_gap_drops: u64,
    /// Events re-served by injected cursor rewinds.
    pub cursor_rewind_replays: u64,
    /// did:web documents that failed to fetch or parse.
    pub did_doc_fetch_failures: u64,
    /// Repositories skipped at snapshot time (vanished or given up).
    pub repo_snapshot_skips: u64,
    /// Accounts migrated off a failed host by the outage.
    pub outage_migrations: u64,
    /// Spam-wave posts injected into the workload.
    pub spam_posts_injected: u64,
    /// Labels applied by the label storm.
    pub storm_labels_applied: u64,
    /// Accounts deleted + tombstoned by the tombstone storm.
    pub storm_tombstones: u64,
}

impl FaultImpact {
    /// Extract the impact counters from a merged summary.
    pub fn from_summary(scenario: &str, summary: &StreamSummary) -> FaultImpact {
        FaultImpact {
            scenario: scenario.to_string(),
            retry_attempts: summary.retry_attempts,
            retry_backoff_ms: summary.retry_backoff_ms,
            fetch_retry_giveups: summary.fetch_retry_giveups,
            dns_retry_giveups: summary.dns_retry_giveups,
            dns_servfails: summary.dns_servfails,
            backfill_full_fetches: summary.backfill_full_fetches,
            cursor_gap_drops: summary.cursor_gap_drops,
            cursor_rewind_replays: summary.cursor_rewind_replays,
            did_doc_fetch_failures: summary.did_doc_fetch_failures,
            repo_snapshot_skips: summary.repo_snapshot_skips,
            outage_migrations: summary.outage_migrations,
            spam_posts_injected: summary.spam_posts_injected,
            storm_labels_applied: summary.storm_labels_applied,
            storm_tombstones: summary.storm_tombstones,
        }
    }

    /// Render the scenario-impact section.
    pub fn render(&self) -> String {
        let mut out = format!("== Scenario impact: {} ==\n", self.scenario);
        let rows: [(&str, u64); 14] = [
            ("retry attempts", self.retry_attempts),
            ("retry backoff (simulated ms)", self.retry_backoff_ms),
            ("fetch give-ups", self.fetch_retry_giveups),
            ("dns give-ups", self.dns_retry_giveups),
            ("dns servfails", self.dns_servfails),
            (
                "host-change backfill full fetches",
                self.backfill_full_fetches,
            ),
            ("cursor-gap commit drops", self.cursor_gap_drops),
            ("cursor-rewind replayed events", self.cursor_rewind_replays),
            ("did-doc fetch failures", self.did_doc_fetch_failures),
            ("repo snapshot skips", self.repo_snapshot_skips),
            ("outage migrations", self.outage_migrations),
            ("spam posts injected", self.spam_posts_injected),
            ("storm labels applied", self.storm_labels_applied),
            ("storm tombstones", self.storm_tombstones),
        ];
        for (name, value) in rows {
            out.push_str(&format!("{name:>34}: {value}\n"));
        }
        out
    }

    /// Serialise the impact counters.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("scenario", self.scenario.as_str())
            .with("retry_attempts", self.retry_attempts)
            .with("retry_backoff_ms", self.retry_backoff_ms)
            .with("fetch_retry_giveups", self.fetch_retry_giveups)
            .with("dns_retry_giveups", self.dns_retry_giveups)
            .with("dns_servfails", self.dns_servfails)
            .with("backfill_full_fetches", self.backfill_full_fetches)
            .with("cursor_gap_drops", self.cursor_gap_drops)
            .with("cursor_rewind_replays", self.cursor_rewind_replays)
            .with("did_doc_fetch_failures", self.did_doc_fetch_failures)
            .with("repo_snapshot_skips", self.repo_snapshot_skips)
            .with("outage_migrations", self.outage_migrations)
            .with("spam_posts_injected", self.spam_posts_injected)
            .with("storm_labels_applied", self.storm_labels_applied)
            .with("storm_tombstones", self.storm_tombstones)
    }
}

/// All analyses of the paper, computed for one simulated run.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// The scenario that produced the report.
    pub config: ScenarioConfig,
    /// Table 1.
    pub table1: Table1,
    /// Figures 1–2 and §4 totals.
    pub activity: ActivitySeries,
    /// §4 account popularity and non-Bluesky content.
    pub section4: Section4,
    /// §5, Table 2, Figure 3.
    pub identity: IdentityReport,
    /// §6, Tables 3/4/6, Figures 4/5/6.
    pub moderation: ModerationReport,
    /// §7, Table 5, Figures 7–12.
    pub recommendation: RecommendationReport,
    /// §9 firehose volume.
    pub firehose_volume: FirehoseVolume,
    /// §10 wire-traffic observatory (classifier × mitigation sweep).
    pub observatory: ObservatoryReport,
    /// Injected-fault impact (scenario runs only; `None` keeps quiet runs'
    /// rendered/serialised output byte-identical to pre-fault-layer runs).
    pub faults: Option<FaultImpact>,
}

impl StudyReport {
    /// Run the full pipeline described by `spec` through the sharded
    /// streaming engine: the population is split into [`RunSpec::shards`]
    /// DID-hash partitions, each simulated and analyzed independently (at
    /// most [`RunSpec::jobs`] on worker threads at once), and the analyzer
    /// states are merged in shard order. Every observation folds into the
    /// incremental analyzers — the firehose is never retained — and the
    /// report is **byte-identical** to the serial run's for any
    /// `(shards, jobs)`, store backend, AppView sharding, write-back
    /// setting, or framing policy; the golden equivalence test pins this.
    ///
    /// Non-quiet [`RunSpec::faults`] specs attach a [`FaultImpact`] section
    /// labelled by [`RunSpec::scenario`] (`custom` when unlabelled).
    ///
    /// Panics on an invalid or grid spec (see [`RunSpec::validate`]; run
    /// grids via [`StudyBatch::from_spec`]).
    pub fn run(spec: &RunSpec) -> (StudyReport, ShardedSummary) {
        let (analyzers, world, summary) = collect_sharded(spec, StudyAnalyzers::new());
        let mut report = StudyReport::from_analyzers(spec.config, analyzers, &world);
        if !spec.faults.is_quiet() {
            report.faults = Some(FaultImpact::from_summary(
                spec.scenario.as_deref().unwrap_or("custom"),
                &summary.merged,
            ));
        }
        (report, summary)
    }

    /// [`StudyReport::run`] coerced to one shard on one thread, returning
    /// the producer's plain [`StreamSummary`] (days, observation counts,
    /// peak in-flight events) instead of the sharded wrapper.
    pub fn run_serial(spec: &RunSpec) -> (StudyReport, StreamSummary) {
        let serial = spec.clone().shards(1).jobs(1);
        let (report, summary) = StudyReport::run(&serial);
        (report, summary.merged)
    }

    /// Assemble the report from a (merged) analyzer set. The world provides
    /// the finish-time context (scenario constants such as the scale
    /// factor); any shard's world is equivalent.
    pub fn from_analyzers(
        config: ScenarioConfig,
        analyzers: StudyAnalyzers,
        world: &World,
    ) -> StudyReport {
        let ctx = StudyCtx::new(world);
        StudyReport {
            config,
            table1: analyzers.table1.finish(&ctx),
            activity: analyzers.activity.finish(&ctx),
            section4: analyzers.section4.finish(&ctx),
            identity: analyzers.identity.finish(&ctx),
            moderation: analyzers.moderation.finish(&ctx),
            recommendation: analyzers.recommendation.finish(&ctx),
            firehose_volume: analyzers.volume.finish(&ctx),
            observatory: analyzers.observatory.finish(&ctx),
            faults: None,
        }
    }

    /// Run the legacy batch pipeline for `spec`: materialize all six
    /// datasets in memory, then compute every analysis from the vectors.
    /// Runs serially (the spec's `shards`/`jobs`/`faults` are the streaming
    /// engine's concerns) but honors the snapshot mode, store backend,
    /// AppView sharding, write-back cache, and framing policy. Retains the
    /// firehose for the whole run; use [`StudyReport::run`] unless the
    /// materialized [`Datasets`] are needed.
    pub fn run_batch(spec: &RunSpec) -> StudyReport {
        if let Err(err) = spec.validate() {
            panic!("invalid RunSpec: {err}");
        }
        assert!(
            !spec.is_grid(),
            "run_batch runs a single cell; expand grids via StudyBatch::from_spec"
        );
        let mut world = World::from_spec(
            WorldSpec::new(spec.config)
                .store(spec.store.clone())
                .appview_shards(spec.appview_shards)
                .write_back(spec.write_back),
        );
        let datasets = Collector::new()
            .snapshot_mode(spec.snapshots)
            .store(spec.store.clone())
            .framing(spec.framing)
            .run(&mut world);
        StudyReport::from_collected(spec.config, &world, &datasets)
    }

    /// Compute the analyses from already-collected datasets.
    pub fn from_collected(
        config: ScenarioConfig,
        world: &World,
        datasets: &Datasets,
    ) -> StudyReport {
        StudyReport {
            config,
            table1: table1_firehose_breakdown(datasets),
            activity: activity_series(datasets),
            section4: section4_accounts(datasets),
            identity: identity_report(datasets, world),
            moderation: moderation_report(datasets, world),
            recommendation: recommendation_report(datasets, world),
            firehose_volume: firehose_volume(datasets, world),
            observatory: observatory_report(datasets),
            faults: None,
        }
    }

    /// Render the whole report as text (every table and figure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Reproduction run: seed {} scale 1:{} ({} → {}) ==\n\n",
            self.config.seed,
            self.config.scale,
            self.config.start.date(),
            self.config.end.date()
        ));
        out.push_str(&self.table1.render());
        out.push('\n');
        out.push_str(&self.activity.render_figure1());
        out.push('\n');
        out.push_str(&self.activity.render_figure2());
        out.push('\n');
        out.push_str(&self.section4.render());
        out.push('\n');
        out.push_str(&self.identity.render());
        out.push('\n');
        out.push_str(&self.moderation.render());
        out.push('\n');
        out.push_str(&self.recommendation.render());
        out.push('\n');
        out.push_str(&table5_feature_matrix());
        out.push('\n');
        out.push_str(&self.firehose_volume.render());
        out.push('\n');
        out.push_str(&self.observatory.render());
        if let Some(faults) = &self.faults {
            out.push('\n');
            out.push_str(&faults.render());
        }
        out
    }

    /// Serialise headline numbers as JSON for EXPERIMENTS.md tooling.
    pub fn to_json(&self) -> Json {
        let json = Json::object()
            .with("seed", self.config.seed)
            .with("scale", self.config.scale)
            .with(
                "table1",
                Json::object().with("total_events", self.table1.total).with(
                    "rows",
                    Json::Arr(
                        self.table1
                            .rows
                            .iter()
                            .map(|(n, c, s)| {
                                Json::object()
                                    .with("type", n.as_str())
                                    .with("count", *c)
                                    .with("share_pct", *s)
                            })
                            .collect(),
                    ),
                ),
            )
            .with(
                "section4",
                Json::object()
                    .with(
                        "totals",
                        Json::object()
                            .with("posts", self.activity.totals.0)
                            .with("likes", self.activity.totals.1)
                            .with("follows", self.activity.totals.2)
                            .with("reposts", self.activity.totals.3)
                            .with("blocks", self.activity.totals.4),
                    )
                    .with("non_bsky_records", self.section4.non_bsky_records),
            )
            .with(
                "section5",
                Json::object()
                    .with("handles", self.identity.total_handles)
                    .with("bsky_social_share_pct", self.identity.bsky_social.1)
                    .with("did_web", self.identity.did_web)
                    .with("dns_txt_share_pct", self.identity.proofs.2)
                    .with("tranco_share_pct", self.identity.tranco_overlap.1),
            )
            .with(
                "section6",
                Json::object()
                    .with("labelers_announced", self.moderation.labeler_counts.0)
                    .with("labelers_functional", self.moderation.labeler_counts.1)
                    .with("labelers_active", self.moderation.labeler_counts.2)
                    .with(
                        "community_share_last_month_pct",
                        self.moderation.community_share_last_month,
                    )
                    .with("label_interactions", self.moderation.interactions.0)
                    .with("rescinded", self.moderation.interactions.1)
                    .with(
                        "posts_labeled_share_pct",
                        self.moderation.last_month_posts_labeled_share,
                    ),
            )
            .with(
                "section7",
                Json::object()
                    .with("feeds", self.recommendation.total_feeds)
                    .with("never_curated_pct", self.recommendation.never_curated.1)
                    .with("r_feeds_followers", self.recommendation.r_feeds_followers)
                    .with("r_likes_followers", self.recommendation.r_likes_followers)
                    .with(
                        "skyfeed_share_pct",
                        self.recommendation.platform_shares.first().map(|p| p.2),
                    ),
            )
            .with(
                "section9",
                Json::object().with(
                    "firehose_gb_per_day_extrapolated",
                    self.firehose_volume.extrapolated_full_network / 1e9,
                ),
            )
            .with("section10", self.observatory.to_json());
        match &self.faults {
            Some(faults) => json.with("faults", faults.to_json()),
            None => json,
        }
    }
}

/// One scenario's result within a [`StudyBatch`] run.
#[derive(Debug, Clone)]
pub struct StudyRun {
    /// The report.
    pub report: StudyReport,
    /// The producer's stream summary.
    pub summary: StreamSummary,
}

/// A multi-scenario runner: N seeds × M scales computed in one call, each
/// through the streaming engine (so a whole grid fits in bounded memory,
/// one scenario at a time).
#[derive(Debug, Clone, Default)]
pub struct StudyBatch {
    /// The scenarios to run, in order.
    pub configs: Vec<ScenarioConfig>,
}

impl StudyBatch {
    /// An empty batch.
    pub fn new() -> StudyBatch {
        StudyBatch::default()
    }

    /// A batch over explicit scenario configurations.
    pub fn from_configs(configs: Vec<ScenarioConfig>) -> StudyBatch {
        StudyBatch { configs }
    }

    /// The spec's full seed × scale grid (see [`RunSpec::grid_configs`]):
    /// seed-major order, the base config's own seed/scale filling an empty
    /// axis. The spec must be valid — grid specs pin every other knob to
    /// its default, so each cell runs through the plain streaming engine.
    pub fn from_spec(spec: &RunSpec) -> StudyBatch {
        if let Err(err) = spec.validate() {
            panic!("invalid RunSpec: {err}");
        }
        StudyBatch {
            configs: spec.grid_configs(),
        }
    }

    /// Number of scenarios in the batch.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Run every scenario through the streaming engine.
    pub fn run(&self) -> Vec<StudyRun> {
        self.configs
            .iter()
            .map(|config| {
                let (report, summary) = StudyReport::run_serial(&RunSpec::new(*config));
                StudyRun { report, summary }
            })
            .collect()
    }

    /// Render a compact comparison table over a batch's results.
    pub fn render_summary(runs: &[StudyRun]) -> String {
        let mut out = String::from(
            "== Study batch ==\nseed | scale  | users | events     | labels   | feeds | peak in-flight\n",
        );
        for run in runs {
            out.push_str(&format!(
                "{:>4} | {:>6} | {:>5} | {:>10} | {:>8} | {:>5} | {:>8}\n",
                run.report.config.seed,
                run.report.config.scale,
                run.report.config.target_users(),
                run.report.table1.total,
                run.report.moderation.interactions.0,
                run.report.recommendation.total_feeds,
                run.summary.peak_in_flight_events,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::Datetime;

    fn small_config(seed: u64) -> ScenarioConfig {
        let mut config = ScenarioConfig::test_scale(seed);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.scale = 40_000;
        config
    }

    #[test]
    fn full_report_runs_and_serialises() {
        let config = small_config(21);
        let (report, _) = StudyReport::run_serial(&RunSpec::new(config));
        let text = report.render();
        for needle in [
            "Table 1",
            "Figure 1",
            "Figure 3",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 6",
            "Figure 7",
            "Figure 12",
            "Table 5",
            "firehose volume",
            "§10 Wire-level traffic observatory",
            "mitigation cell",
        ] {
            assert!(text.contains(needle), "report missing {needle}");
        }
        let json = report.to_json();
        assert!(json["table1"]["total_events"].as_u64().unwrap() > 0);
        assert!(json["section5"]["bsky_social_share_pct"].as_f64().unwrap() > 90.0);
        assert!(json["section6"]["labelers_announced"].as_u64().unwrap() >= 40);
    }

    #[test]
    fn streaming_summary_shows_bounded_memory() {
        let (report, summary) = StudyReport::run_serial(&RunSpec::new(small_config(22)));
        assert_eq!(summary.firehose_events, report.table1.total);
        assert!(summary.peak_in_flight_events > 0);
        assert!((summary.peak_in_flight_events as u64) < summary.firehose_events);
    }

    #[test]
    fn batch_runner_covers_the_grid() {
        let spec = RunSpec::new(small_config(1))
            .seeds(vec![1, 2])
            .scales(vec![40_000, 80_000]);
        let batch = StudyBatch::from_spec(&spec);
        assert_eq!(batch.len(), 4);
        let runs = batch.run();
        assert_eq!(runs.len(), 4);
        // Same seed, different scale ⇒ different population; same cells are
        // ordered seed-major.
        assert_eq!(runs[0].report.config.seed, 1);
        assert_eq!(runs[1].report.config.scale, 80_000);
        assert!(runs[0].report.table1.total > 0);
        let summary = StudyBatch::render_summary(&runs);
        assert!(summary.contains("Study batch"));
        assert!(summary.lines().count() >= 6);
    }
}
