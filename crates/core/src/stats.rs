//! Statistics helpers used by the analyses.

/// Exact quantile of a slice (linear interpolation). Returns `None` on empty
/// input.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Interquartile distance (Q3 − Q1), the dispersion measure of Table 6.
pub fn iqd(values: &[f64]) -> Option<f64> {
    Some(quantile(values, 0.75)? - quantile(values, 0.25)?)
}

/// Pearson's correlation coefficient between two equally long samples.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mean_x) * (b - mean_y);
        var_x += (a - mean_x).powi(2);
        var_y += (b - mean_y).powi(2);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Percentage share of `part` in `total`.
pub fn share(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64 * 100.0
    }
}

/// Count occurrences and return `(key, count)` pairs sorted by descending
/// count (ties broken by key for determinism).
pub fn top_counts<I, K>(items: I) -> Vec<(K, u64)>
where
    I: IntoIterator<Item = K>,
    K: Ord + Clone,
{
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<K, u64> = BTreeMap::new();
    for item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    let mut out: Vec<(K, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_median() {
        let values: Vec<f64> = (1..=9).map(|v| v as f64).collect();
        assert_eq!(median(&values), Some(5.0));
        assert_eq!(quantile(&values, 0.0), Some(1.0));
        assert_eq!(quantile(&values, 1.0), Some(9.0));
        assert_eq!(iqd(&values), Some(4.0));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[f64::NAN]), None);
    }

    #[test]
    fn quantile_ignores_nan_and_infinities_without_panicking() {
        // Regression: the sort used `partial_cmp(..).unwrap()` and panicked
        // on NaN input; `total_cmp` plus the finite filter must not.
        let values = [3.0, f64::NAN, 1.0, f64::INFINITY, 2.0, f64::NEG_INFINITY];
        assert_eq!(median(&values), Some(2.0));
        assert_eq!(quantile(&values, 0.0), Some(1.0));
        assert_eq!(quantile(&values, 1.0), Some(3.0));
        // All-NaN input degrades to None, not a panic.
        assert_eq!(quantile(&[f64::NAN, f64::NAN], 0.5), None);
    }

    #[test]
    fn pearson_known_values() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let inverse = [10.0, 8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &inverse).unwrap() + 1.0).abs() < 1e-12);
        let constant = [3.0; 5];
        assert_eq!(pearson(&x, &constant), None);
        assert_eq!(pearson(&x, &[1.0]), None);
        // Uncorrelated-ish data gives something between -1 and 1.
        let z = [4.0, 1.0, 3.0, 5.0, 2.0];
        let r = pearson(&x, &z).unwrap();
        assert!(r > -1.0 && r < 1.0);
    }

    #[test]
    fn shares_and_counts() {
        assert_eq!(share(1, 4), 25.0);
        assert_eq!(share(1, 0), 0.0);
        let counts = top_counts(vec!["a", "b", "a", "c", "a", "b"]);
        assert_eq!(counts[0], ("a", 3));
        assert_eq!(counts[1], ("b", 2));
        assert_eq!(counts[2], ("c", 1));
    }
}
