//! Lightweight language detection.
//!
//! §7.1 runs `langdetect` over Feed Generator descriptions. This detector
//! covers the languages the study reports (English, Japanese, German, Korean,
//! French, Portuguese, Spanish) using script ranges and stop-word evidence —
//! intentionally imperfect, like the original tool, but with known behaviour.

/// Detect the language of a short text. Returns a BCP-47 code or `"und"`.
pub fn detect(text: &str) -> &'static str {
    let mut kana_or_kanji = 0usize;
    let mut hangul = 0usize;
    let mut total_alpha = 0usize;
    for c in text.chars() {
        let cp = c as u32;
        if (0x3040..=0x30FF).contains(&cp) || (0x4E00..=0x9FFF).contains(&cp) {
            kana_or_kanji += 1;
        }
        if (0xAC00..=0xD7AF).contains(&cp) || (0x1100..=0x11FF).contains(&cp) {
            hangul += 1;
        }
        if c.is_alphabetic() {
            total_alpha += 1;
        }
    }
    if total_alpha == 0 {
        return "und";
    }
    if kana_or_kanji * 4 >= total_alpha {
        return "ja";
    }
    if hangul * 4 >= total_alpha {
        return "ko";
    }
    let lower = format!(" {} ", text.to_lowercase());
    let evidence: [(&str, &[&str]); 6] = [
        (
            "de",
            &[
                " der ",
                " die ",
                " das ",
                " und ",
                " für ",
                " alle ",
                " über ",
                " beiträge ",
                " rund ",
            ],
        ),
        (
            "pt",
            &[
                " de ",
                " para ",
                " com ",
                " sobre ",
                " tudo ",
                " notícias ",
                " música ",
                " arte ",
            ],
        ),
        (
            "fr",
            &[
                " le ", " la ", " les ", " des ", " pour ", " avec ", " sur ",
            ],
        ),
        (
            "es",
            &[" el ", " los ", " las ", " para ", " sobre ", " todo "],
        ),
        (
            "en",
            &[
                " the ",
                " a ",
                " of ",
                " about ",
                " all ",
                " posts ",
                " feed ",
                " best ",
                " new ",
                " collecting ",
                " tagged ",
            ],
        ),
        ("und", &[]),
    ];
    let mut best = ("und", 0usize);
    for (lang, words) in evidence {
        let hits = words.iter().filter(|w| lower.contains(*w)).count();
        if hits > best.1 {
            best = (lang, hits);
        }
    }
    if best.1 == 0 {
        // Latin script with no stop-word evidence: default to English, the
        // plurality class (matching langdetect's bias on short texts).
        "en"
    } else {
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_major_languages() {
        assert_eq!(detect("a feed collecting posts about art"), "en");
        assert_eq!(detect("の最新ポストを集めたフィード art"), "ja");
        assert_eq!(detect("feed für alle posts über politik"), "de");
        assert_eq!(detect("feed com posts sobre música"), "pt");
        assert_eq!(detect("한국어 포스트 피드"), "ko");
        assert_eq!(detect("le meilleur feed pour les chats"), "fr");
        assert_eq!(detect(""), "und");
        assert_eq!(detect("12345 !!!"), "und");
        assert_eq!(detect("xkcd"), "en");
    }
}
