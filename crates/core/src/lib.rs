//! # bsky-study
//!
//! The paper's primary contribution, reproduced: the measurement pipeline of
//! *Looking AT the Blue Skies of Bluesky* (IMC 2024).
//!
//! * [`datasets`] — the six dataset collectors of §3 (user identifiers, DID
//!   documents, repositories, firehose, feed generators/posts, labelers),
//!   driving a simulated [`bsky_workload::World`] through the same service
//!   interfaces the real study used.
//! * [`analysis`] — every table and figure of §4–§9.
//! * [`stats`] — quantiles, Pearson correlation, share tables.
//! * [`langdetect`] — the language detector used on feed descriptions.
//! * [`report`] — the full study report combining all analyses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod datasets;
pub mod langdetect;
pub mod report;
pub mod stats;

pub use datasets::{Collector, Datasets};
pub use report::StudyReport;
