//! # bsky-study
//!
//! The paper's primary contribution, reproduced as a *streaming* measurement
//! pipeline: the real study consumed the firehose continuously over weeks,
//! and this crate mirrors that consumption model instead of batch-scanning
//! materialized vectors.
//!
//! The architecture is an observation bus with incremental analyzers:
//!
//! * [`pipeline`] — the core abstractions: [`pipeline::Observation`] (one
//!   variant per §3 dataset item plus collection-window markers),
//!   the [`pipeline::Analyzer`] trait (`observe` folds one observation,
//!   `finish` produces the result), [`pipeline::StudyEngine`] (the bus), and
//!   [`pipeline::StudyCtx`] (read-only access to the world's active
//!   measurement surfaces).
//! * [`datasets`] — the §3 *producer*: [`Collector::stream`] drives a
//!   simulated [`bsky_workload::World`] day by day through the same service
//!   interfaces the real study used and emits every dataset item exactly
//!   once. The optional [`datasets::Materialize`] analyzer folds the stream
//!   back into in-memory [`Datasets`] for the legacy batch path.
//! * [`analysis`] — every table and figure of §4–§9 as incremental
//!   analyzers; the batch functions replay materialized datasets through the
//!   same accumulators, so both paths agree by construction.
//! * [`observatory`] — §10, the wire-level traffic observatory: a passive
//!   per-connection `(size, gap)` capture feeds a closed-world 1-NN
//!   activity classifier, swept across padding/batching mitigation cells
//!   evaluated counterfactually from the raw traces.
//! * [`shard`] — the sharded engine: the population is partitioned by DID
//!   hash, one producer + analyzer set runs per shard on worker threads,
//!   and the per-shard states are merged (every analyzer implements an
//!   associative `merge`) into a report byte-identical to the serial run's.
//!
//! * [`spec`] — [`RunSpec`], the one builder every run flows through:
//!   seeds, scales, engine shards and worker threads, snapshot mode,
//!   block-store backend, AppView entity shards, the write-back cache,
//!   wire framing, and fault scenario all live on it, and
//!   [`RunSpec::validate`] rejects inconsistent combinations up front.
//! * [`report`] — the entry points, all taking a `&RunSpec`:
//!   [`StudyReport::run`] computes the full report across worker threads
//!   in **one pass with bounded memory** (firehose events are never
//!   retained), [`StudyReport::run_serial`] produces the byte-identical
//!   report on one thread, [`StudyReport::run_batch`] drives the legacy
//!   materializing collector, and [`report::StudyBatch`] runs whole
//!   seed × scale grids.
//! * [`stats`] — quantiles, Pearson correlation, share tables.
//! * [`langdetect`] — the language detector used on feed descriptions.
//! * [`json`] — a dependency-free JSON tree for the headline-number export.
//!
//! ## The intra-shard pipeline
//!
//! Sharding parallelizes across shards; [`RunSpec::pipeline`] (repro
//! `--pipeline`) parallelizes *inside* each one. The producer materializes
//! its borrowed bus items into owned, sequence-numbered
//! [`pipeline::ObservationBatch`]es and ships them over bounded channels
//! to [`RunSpec::analyzer_threads`] workers, each folding a disjoint
//! subset of the eight analyzers ([`shard::ShardSink::fan_out_parts`]).
//! Backpressure preserves the one-chunk memory bound, sequence assertions
//! make every part fold the exact serial stream, and the parts reassemble
//! through the same merge law at shard end — so the report stays
//! byte-identical for any `(shards, jobs, analyzer_threads)`, while the
//! producer's store I/O overlaps with analyzer CPU. Observations whose
//! analyzers need the live world at observe time (the end-of-window DID
//! documents, [`pipeline::Observation::requires_world_ctx`]) drain the
//! workers and fold inline. `RunSpec::jobs` defaults to the machine's
//! available parallelism clamped to the shard count
//! ([`RunSpec::effective_jobs`]).
//!
//! ## Faults & scenarios
//!
//! The pipeline composes with the deterministic fault-injection layer in
//! [`bsky_simnet::faults`] (re-exported here as [`faults`]). A
//! [`faults::FaultSpec`] — one of the named scenarios (`repro --scenario
//! pds-migration`, `label-storm`, `cursor-gap`, …) or a custom
//! `key=value` spec (`repro --faults flaky=0.2,gap=0.05`) — is attached
//! via [`RunSpec::scenario`] / [`RunSpec::faults`], compiled into a
//! [`faults::FaultPlan`] for the run's day window, and shared by every
//! shard's world and producer.
//!
//! Two invariants make faulted runs first-class citizens of the
//! equivalence suite rather than a separate mode:
//!
//! 1. **Determinism by derivation** — every injected failure (host
//!    outages and mass migrations, flaky `getRepo`/`getRepoSince`, DNS
//!    SERVFAILs, firehose cursor gaps and rewinds, spam waves, label and
//!    tombstone storms) is a pure function of `(seed, key, day)` drawn
//!    from dedicated RNG forks. Fault placement never consumes workload
//!    randomness, so the quiet plan is byte-inert, and every shard
//!    recomputes the same decisions — faulted reports are byte-identical
//!    serial vs. sharded and mem vs. paged (pinned by
//!    `tests/fault_scenarios.rs`).
//! 2. **Never silent** — every retry, backoff, give-up, fallback, and
//!    dropped event lands in a named [`pipeline::StreamSummary`] counter,
//!    and scenario runs render a dedicated [`report::FaultImpact`]
//!    section. Graceful degradation is always visible in the output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod datasets;
pub mod json;
pub mod langdetect;
pub mod observatory;
pub mod pipeline;
pub mod report;
pub mod shard;
pub mod spec;
pub mod stats;

pub use bsky_simnet::faults;
pub use datasets::{Collector, Datasets, IncrementalRepoMirror, SnapshotMode};
pub use observatory::{ActivityClass, ObservatoryAnalyzer, ObservatoryReport, WireTraceDay};
pub use pipeline::{
    Analyzer, Observation, ObservationBatch, ObservationSink, OwnedObservation, StreamSummary,
    StudyCtx, StudyEngine,
};
pub use report::{StudyBatch, StudyReport};
pub use shard::{collect_sharded, PipelinedSink, ShardSink, ShardedSummary, StudyAnalyzers};
pub use spec::RunSpec;
