//! Dataset collection (§3 of the paper), as a streaming producer.
//!
//! [`Collector::stream`] drives a [`World`] day by day and *emits* the same
//! six datasets the study gathered — through the same service interfaces —
//! as [`Observation`]s into an [`ObservationSink`]:
//!
//! * **User Identifier Dataset** — weekly `sync.listRepos` snapshots from the
//!   Relay during March–April 2024, one observation per newly seen DID.
//! * **DID Documents** — a full PLC-directory export plus `did:web`
//!   documents fetched over HTTPS.
//! * **Repositories Dataset** — a snapshot of every repository, downloaded as
//!   CAR archives from the Relay mirror, decoded, emitted, and dropped.
//! * **Firehose Dataset** — a continuous subscription from 2024-03-06. The
//!   producer interleaves chunked day steps ([`World::step_chunk`]) with
//!   subscription reads, so it never holds more than one chunk's worth of
//!   events — peak in-flight is independent of the day's volume.
//! * **Labeling Services** — metadata when each service record is announced,
//!   then a daily `subscribeLabels` read per labeler (including rescinded
//!   labels), so labels stream out close to their publication time.
//! * **Feed Generators / Feed Posts** — generator records discovered in the
//!   repositories, metadata via `getFeedGenerator`, retained entries via
//!   `getFeed` hydration.
//!
//! [`Collector::run`] keeps the original batch API alive: it registers the
//! [`Materialize`] analyzer — which folds the stream back into in-memory
//! [`Datasets`] vectors — and returns its output, so existing callers and
//! golden tests are untouched.
//!
//! ## The incremental snapshot protocol
//!
//! The repositories dataset supports two collection strategies, selected by
//! [`SnapshotMode`]:
//!
//! * [`SnapshotMode::FullRefetch`] — the study's naive reading of §3: every
//!   repository CAR is downloaded and decoded once, at the window end. Cost:
//!   O(total repo bytes).
//! * [`SnapshotMode::Incremental`] (the default) — how a real AT Protocol
//!   mirror stays current. An [`IncrementalRepoMirror`] rides along with the
//!   weekly `sync.listRepos` snapshots:
//!
//!   1. every `listRepos` page carries each repo's latest revision TID; the
//!      mirror compares it with the revision its state is synced to;
//!   2. an unchanged revision costs **zero** fetches; a changed one is
//!      fetched as a `com.atproto.sync.getRepo(did, since=rev)` **delta** —
//!      the head commit plus the record blocks created after the mirror's
//!      revision (`DeltaScope::Records`: this mirror keeps decoded records,
//!      so it skips the MST node blocks a full-fidelity block mirror such
//!      as the Relay's would request — see `bsky_atproto::repo`);
//!   3. new DIDs, revision rewinds, and failed or unverifiable deltas fall
//!      back to a full CAR fetch; DIDs that vanish from `listRepos`
//!      (deletions) drop their mirror state — exactly the repos the full
//!      path fails to fetch at the window end;
//!   4. at the window end the mirror syncs once more and emits one
//!      [`Observation::Repo`] per DID in first-seen order — **byte-identical**
//!      to the full-refetch emission (the golden test in
//!      `tests/pipeline_equivalence.rs` pins this, serial and sharded).
//!
//!   Cost: O(changed bytes) across the window instead of O(total repo bytes
//!   × snapshots); [`crate::pipeline::StreamSummary`] reports the bytes
//!   actually fetched, the full/delta split, and any skipped repos.

use crate::observatory::{cell_trace, ActivityClass, TraceKind, WireTraceDay};
use crate::pipeline::{Analyzer, Observation, ObservationSink, StreamSummary, StudyCtx};
use bsky_atproto::blockstore::{BlockStore, StoreConfig, StoreStats};
use bsky_atproto::cid::Cid;
use bsky_atproto::error::AtError;
use bsky_atproto::firehose::{Event, EventBody};
use bsky_atproto::framing::FramingPolicy;
use bsky_atproto::label::Label;
use bsky_atproto::record::Record;
use bsky_atproto::repo::{commit_summary, DeltaScope, Repository};
use bsky_atproto::{AtUri, Datetime, Did, Nsid, Tid};
use bsky_feedgen::RetentionPolicy;
use bsky_identity::DidDocument;
use bsky_labeler::LabelerOperator;
use bsky_pds::PdsFleet;
use bsky_relay::Relay;
use bsky_simnet::dns::AtprotoResolution;
use bsky_simnet::faults::{FaultPlan, RetryPolicy, TimeoutClass};
use bsky_simnet::http::HttpResponse;
use bsky_simnet::net::HostingClass;
use bsky_workload::World;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A decoded repository snapshot.
#[derive(Debug, Clone)]
pub struct RepoSnapshot {
    /// Repository owner.
    pub did: Did,
    /// All live records: `(collection, rkey, record)`.
    pub records: Vec<(Nsid, String, Record)>,
}

/// One curated post of a feed-generator dataset entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedPost {
    /// The post URI.
    pub uri: AtUri,
    /// The post's self-reported creation time.
    pub created_at: Datetime,
    /// When the generator curated it.
    pub curated_at: Datetime,
}

/// Feed-generator dataset entry.
///
/// In a sharded run every shard emits one entry per feed, carrying only the
/// curation and likes its own population produced; [`FeedGenEntry::absorb`]
/// combines them into exactly the entry the serial crawl produces.
#[derive(Debug, Clone)]
pub struct FeedGenEntry {
    /// The generator's URI.
    pub uri: AtUri,
    /// Creator account.
    pub creator: Did,
    /// Display name.
    pub display_name: String,
    /// Description.
    pub description: String,
    /// Hosting platform name (from the service DID / world metadata).
    pub platform: String,
    /// When the feed was created (declaration record timestamp).
    pub created_at: Datetime,
    /// The generator's retention policy (needed to merge shard-local
    /// retained entry lists into the global retained set).
    pub retention: RetentionPolicy,
    /// Likes observed on the generator record.
    pub like_count: u64,
    /// Whether the crawler is a feed-generator creator account.
    pub creator_is_popular_rank: u64,
    /// Retained, hydrated curated entries in canonical `(curated_at, uri)`
    /// order. Use [`FeedGenEntry::served_posts`] for the capped
    /// `getFeed`-style view.
    pub posts: Vec<FeedPost>,
    /// Whether metadata reported the feed online & valid.
    pub online_and_valid: bool,
}

/// `getFeed` page cap applied when serving a feed's posts.
pub const GET_FEED_LIMIT: usize = 1_000;

impl FeedGenEntry {
    /// Fold another shard's entry for the same feed into this one: likes
    /// add, curated entries merge under the canonical order, and the
    /// retention policy is re-applied so the result equals what a single
    /// generator observing both shards' posts would have retained.
    pub fn absorb(&mut self, other: FeedGenEntry) {
        debug_assert_eq!(self.uri, other.uri);
        self.like_count += other.like_count;
        self.posts.extend(other.posts);
        // Canonical curation order — the same structural (curated_at, uri)
        // comparison `FeedGenerator::push_entry` maintains, so re-applying
        // Count retention below selects exactly the entries a single
        // generator would have kept.
        self.posts
            .sort_by(|a, b| (a.curated_at, &a.uri).cmp(&(b.curated_at, &b.uri)));
        self.posts.dedup_by(|a, b| a.uri == b.uri);
        if let RetentionPolicy::Count(max) = self.retention {
            if self.posts.len() > max {
                let excess = self.posts.len() - max;
                self.posts.drain(0..excess);
            }
        }
    }

    /// The `getFeed` view of the retained entries: newest first by post
    /// creation time (ties broken by URI), capped at [`GET_FEED_LIMIT`].
    pub fn served_posts(&self) -> Vec<&FeedPost> {
        let mut out: Vec<&FeedPost> = self.posts.iter().collect();
        out.sort_by(|a, b| {
            b.created_at
                .cmp(&a.created_at)
                .then_with(|| a.uri.cmp(&b.uri))
        });
        out.truncate(GET_FEED_LIMIT);
        out
    }
}

/// Labeling-service dataset entry.
///
/// On the live stream this carries only metadata (labels arrive separately
/// as [`Observation::Labels`] batches); in the materialized batch
/// representation `labels` holds the full stream.
#[derive(Debug, Clone)]
pub struct LabelerEntry {
    /// The labeler's account DID.
    pub did: Did,
    /// Display name.
    pub name: String,
    /// Operator class.
    pub operator: LabelerOperator,
    /// Endpoint hosting classification (from the active measurements).
    pub hosting: HostingClass,
    /// Whether the endpoint answered.
    pub functional: bool,
    /// When the labeler was announced.
    pub announced_at: Datetime,
    /// Every label interaction on its stream (including negations). Empty
    /// on the live stream; populated in the batch representation.
    pub labels: Vec<Label>,
}

/// The collected datasets (the batch representation).
#[derive(Debug, Clone, Default)]
pub struct Datasets {
    /// `(did, latest revision)` pairs from the weekly listRepos snapshots.
    pub user_identifiers: Vec<(Did, Option<String>)>,
    /// DID documents from the PLC export and did:web fetches.
    pub did_documents: Vec<DidDocument>,
    /// Number of did:web documents among them.
    pub did_web_count: usize,
    /// Decoded repository snapshots.
    pub repositories: Vec<RepoSnapshot>,
    /// Firehose events observed since the collection start.
    pub firehose_events: Vec<Event>,
    /// Feed-generator dataset.
    pub feed_generators: Vec<FeedGenEntry>,
    /// Labeling-services dataset.
    pub labelers: Vec<LabelerEntry>,
    /// Per-connection, per-day wire traces from the §10 observatory tap.
    pub wire_traces: Vec<WireTraceDay>,
    /// When continuous firehose collection started.
    pub firehose_collection_start: Datetime,
    /// When collection ended.
    pub collection_end: Datetime,
}

/// Default number of pending relay events per producer chunk.
pub const DEFAULT_CHUNK_EVENTS: usize = 256;

/// How the §3 repositories dataset is collected (see the module docs for
/// the full protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMode {
    /// Download and decode every repository CAR once, at the window end:
    /// O(total repo bytes), the paper's naive reading of §3.
    FullRefetch,
    /// Rev-aware weekly syncs through an [`IncrementalRepoMirror`]: full
    /// CARs only for new or rewound DIDs, `getRepo(since)` deltas otherwise.
    /// O(changed bytes); emits byte-identical snapshots.
    #[default]
    Incremental,
}

/// Mirrored repository state for one DID, synced to a known revision. The
/// record block bytes live in the mirror's shared [`BlockStore`]; the entry
/// keeps only their CIDs.
#[derive(Debug, Clone, Default)]
struct MirroredRepo {
    /// The revision the state is synced to (`None`: no commits yet).
    rev: Option<String>,
    /// CIDs of every fetched block that decodes as a record — the same
    /// view [`Collector`] takes of a full CAR, so decoding these in CID
    /// order reproduces the full-refetch snapshot exactly.
    record_cids: BTreeSet<Cid>,
    /// The PDS hostname the state was fetched from. A repo that re-homes
    /// (account migration) is backfilled with a full fetch: deltas across
    /// a host change are not trusted.
    host: Option<String>,
}

/// The incremental repository mirror: per-DID repo state maintained across
/// weekly `sync.listRepos` snapshots, with the record blocks in a pluggable
/// [`BlockStore`] (in-memory by default; the paged backend bounds the
/// mirror's resident footprint by spilling cold blocks to disk).
///
/// [`IncrementalRepoMirror::sync`] performs one rev-aware pass: repos whose
/// revision is unchanged cost nothing, advanced repos are fetched as
/// verified `getRepo(since)` deltas, and only new or rewound DIDs (or
/// failed deltas) pay for a full CAR. A delta rejected because the PDS
/// *compacted* the mirror's revision out of its window is counted into
/// [`StreamSummary::repo_compaction_fallbacks`] before the full refetch —
/// never silently. The mirror deliberately speaks to [`Relay`] +
/// [`PdsFleet`] rather than a whole world, so its fallback behaviour is
/// unit-testable in isolation.
#[derive(Debug, Clone)]
pub struct IncrementalRepoMirror {
    repos: BTreeMap<String, MirroredRepo>,
    /// Record blocks, CID-addressed and shared across DIDs.
    store: Box<dyn BlockStore>,
    /// Per-block reference counts: identical records fetched from different
    /// repositories share one block, which must survive until the last
    /// referencing DID is dropped.
    refs: BTreeMap<Cid, u32>,
    /// The deterministic fault schedule (quiet by default).
    faults: Arc<FaultPlan>,
    /// Retry policy for full `getRepo` fetches.
    retry_full: RetryPolicy,
    /// Retry policy for `getRepo(since)` delta fetches.
    retry_delta: RetryPolicy,
}

impl Default for IncrementalRepoMirror {
    fn default() -> IncrementalRepoMirror {
        IncrementalRepoMirror::new()
    }
}

impl IncrementalRepoMirror {
    /// An empty mirror over the default in-memory store.
    pub fn new() -> IncrementalRepoMirror {
        IncrementalRepoMirror::with_store(StoreConfig::default().build())
    }

    /// An empty mirror over an explicit block store.
    pub fn with_store(store: Box<dyn BlockStore>) -> IncrementalRepoMirror {
        IncrementalRepoMirror::with_store_faults(
            store,
            Arc::new(FaultPlan::quiet()),
            RetryPolicy::for_class(TimeoutClass::RepoFetch),
            RetryPolicy::for_class(TimeoutClass::DeltaFetch),
        )
    }

    /// An empty mirror with an explicit [`FaultPlan`] and per-class retry
    /// policies. Faults resolve as pure functions of `(seed, DID, day)`
    /// before any wire traffic; retries, backoff and give-ups are counted
    /// into the sync summary — never silent.
    pub fn with_store_faults(
        store: Box<dyn BlockStore>,
        faults: Arc<FaultPlan>,
        retry_full: RetryPolicy,
        retry_delta: RetryPolicy,
    ) -> IncrementalRepoMirror {
        IncrementalRepoMirror {
            repos: BTreeMap::new(),
            store,
            refs: BTreeMap::new(),
            faults,
            retry_full,
            retry_delta,
        }
    }

    /// Number of repositories currently mirrored.
    pub fn len(&self) -> usize {
        self.repos.len()
    }

    /// Whether no repository is mirrored.
    pub fn is_empty(&self) -> bool {
        self.repos.is_empty()
    }

    /// Drop all mirrored state (the backing store empties with it).
    pub fn clear(&mut self) {
        let keys: Vec<String> = self.repos.keys().cloned().collect();
        for key in keys {
            self.drop_state(&key);
        }
    }

    /// Residency/spill statistics of the mirror's block store.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Reference-counted insert of one DID's freshly fetched record blocks.
    fn insert_records(&mut self, key: &str, records: Vec<(Cid, Vec<u8>)>) {
        let entry = self.repos.entry(key.to_string()).or_default();
        for (cid, bytes) in records {
            if entry.record_cids.insert(cid) {
                *self.refs.entry(cid).or_insert(0) += 1;
                self.store.put(cid, bytes);
            }
        }
    }

    /// Drop one DID's state, deleting blocks that became unreferenced.
    fn drop_state(&mut self, key: &str) {
        if let Some(entry) = self.repos.remove(key) {
            for cid in entry.record_cids {
                let refs = self.refs.entry(cid).or_insert(1);
                *refs -= 1;
                if *refs == 0 {
                    self.refs.remove(&cid);
                    self.store.delete(&cid);
                }
            }
        }
    }

    /// The revision a DID's state is synced to (`Some(None)`: mirrored but
    /// the repo has no commits; `None`: not mirrored).
    pub fn synced_rev(&self, did: &Did) -> Option<Option<&str>> {
        self.repos.get(&did.to_string()).map(|m| m.rev.as_deref())
    }

    /// One rev-aware sync pass over the relay's `listRepos` view. Fetch
    /// traffic and skips are accounted into `summary`.
    pub fn sync(
        &mut self,
        relay: &mut Relay,
        fleet: &mut PdsFleet,
        now: Datetime,
        summary: &mut StreamSummary,
    ) {
        let mut listed: BTreeSet<String> = BTreeSet::new();
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = relay.list_repos(cursor.as_deref(), 500);
            for (did, rev) in page {
                let key = did.to_string();
                listed.insert(key.clone());
                let current = rev.map(|t| t.to_string());
                let host = fleet.locate(&did).map(str::to_string);
                // A repo whose hosting PDS changed since the last sync
                // (mass migration after a host outage, or organic churn)
                // is backfilled with a full fetch even when its revision
                // is unchanged: deltas across a host change are not
                // trusted. Counted — never a silent code path.
                let host_changed = self
                    .repos
                    .get(&key)
                    .map(|entry| entry.host != host)
                    .unwrap_or(false);
                if host_changed {
                    summary.backfill_full_fetches += 1;
                } else if let Some(entry) = self.repos.get(&key) {
                    if entry.rev == current {
                        continue; // unchanged since the last snapshot
                    }
                }
                if host_changed
                    || !self.try_delta(relay, fleet, now, &did, current.as_deref(), summary)
                {
                    self.full_fetch(relay, fleet, now, &did, current, host, summary);
                }
            }
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        // DIDs the relay no longer lists are deleted accounts: their repos
        // are exactly the ones a window-end full refetch fails to download
        // and counts as skips, so the mirror forgets them — and counts them
        // the same way — here.
        let vanished: Vec<String> = self
            .repos
            .keys()
            .filter(|key| !listed.contains(*key))
            .cloned()
            .collect();
        summary.repo_snapshot_skips += vanished.len() as u64;
        for key in vanished {
            self.drop_state(&key);
        }
    }

    /// Attempt a `getRepo(since)` delta sync; `false` means the caller must
    /// fall back to a full fetch (no prior state, rev rewind, fetch error,
    /// or a delta that fails verification).
    fn try_delta(
        &mut self,
        relay: &mut Relay,
        fleet: &mut PdsFleet,
        now: Datetime,
        did: &Did,
        current: Option<&str>,
        summary: &mut StreamSummary,
    ) -> bool {
        let Some(entry) = self.repos.get(&did.to_string()) else {
            return false;
        };
        let Some(since) = entry.rev.as_deref().and_then(|r| Tid::parse(r).ok()) else {
            return false;
        };
        // A revision that did not advance (rewind) cannot be a delta.
        let Some(current) = current else {
            return false;
        };
        if current <= since.to_string().as_str() {
            return false;
        }
        // Injected flakiness resolves before any wire traffic. A permanent
        // give-up abandons the delta; the caller's full fetch retries
        // independently (its own operation class draws its own failures).
        if !resolve_retries(
            &self.faults,
            self.retry_delta,
            "delta",
            &did.to_string(),
            now,
            summary,
        ) {
            return false;
        }
        let delta = match relay.get_repo_since(did, &since, DeltaScope::Records, fleet, now) {
            Ok(delta) => delta,
            Err(AtError::RevisionCompacted(_)) => {
                // The PDS compacted our revision out of its delta window;
                // the caller falls back to a full fetch and the summary
                // records that it happened — never silently.
                summary.repo_compaction_fallbacks += 1;
                return false;
            }
            Err(_) => return false,
        };
        // The bytes were fetched whether or not the delta verifies — a
        // rejected delta still travelled, and the full-fetch fallback adds
        // its own bytes on top.
        summary.snapshot_bytes_fetched += delta.len() as u64;
        let Some(records) = decode_verified_delta(&delta, current) else {
            return false;
        };
        summary.repo_delta_fetches += 1;
        let key = did.to_string();
        self.insert_records(&key, records);
        self.repos
            .get_mut(&key)
            .expect("delta sync requires prior state")
            .rev = Some(current.to_string());
        true
    }

    /// Full CAR fetch, replacing any previous state for the DID. A failed
    /// fetch (account deleted / migrated away mid-snapshot) is counted as a
    /// skip and drops the state.
    #[allow(clippy::too_many_arguments)]
    fn full_fetch(
        &mut self,
        relay: &mut Relay,
        fleet: &mut PdsFleet,
        now: Datetime,
        did: &Did,
        current: Option<String>,
        host: Option<String>,
        summary: &mut StreamSummary,
    ) {
        let key = did.to_string();
        // Injected flakiness: a full fetch abandoned after the retry
        // budget is a counted skip, exactly like a vanished account.
        if !resolve_retries(&self.faults, self.retry_full, "full", &key, now, summary) {
            summary.repo_snapshot_skips += 1;
            self.drop_state(&key);
            return;
        }
        match relay.get_repo(did, fleet, now) {
            Ok(car) => {
                summary.snapshot_bytes_fetched += car.len() as u64;
                summary.repo_full_fetches += 1;
                let records = match Repository::parse_car(&car) {
                    Ok((_, blocks)) => record_blocks(&blocks),
                    Err(_) => {
                        summary.repo_snapshot_skips += 1;
                        self.drop_state(&key);
                        return;
                    }
                };
                // Replace: a full fetch supersedes any previous state
                // (rewound repos must not retain pre-rewind records).
                self.drop_state(&key);
                self.insert_records(&key, records);
                let entry = self.repos.get_mut(&key).expect("just inserted");
                entry.rev = current;
                entry.host = host;
            }
            Err(_) => {
                summary.repo_snapshot_skips += 1;
                self.drop_state(&key);
            }
        }
    }

    /// The decoded records of a mirrored DID in CID order — the exact
    /// contents a full-refetch snapshot would decode — or `None` when the
    /// DID is not mirrored. Reads go through the block store, paging in and
    /// CID-verifying any spilled blocks.
    pub fn records(&self, did: &Did) -> Option<Vec<(Nsid, String, Record)>> {
        let entry = self.repos.get(&did.to_string())?;
        Some(
            entry
                .record_cids
                .iter()
                .filter_map(|cid| {
                    let record = Record::from_cbor(&self.store.get(cid)?).ok()?;
                    Some((record.collection(), String::new(), record))
                })
                .collect(),
        )
    }
}

/// Resolve the injected-failure/retry sequence for one `(op, key, day)`
/// request before it touches the wire: retries and their simulated backoff
/// are counted into the summary; `false` means the retry budget was
/// exhausted (a counted permanent give-up — the caller must not issue the
/// real request, so fetched-byte accounting can never double-count).
fn resolve_retries(
    faults: &FaultPlan,
    policy: RetryPolicy,
    op: &str,
    key: &str,
    now: Datetime,
    summary: &mut StreamSummary,
) -> bool {
    let day = now.timestamp().div_euclid(86_400) as u64;
    let failures = faults.fetch_failures(op, key, day);
    if failures == 0 {
        return true;
    }
    let mut rng = faults.retry_rng(op, key, day);
    let outcome = policy.outcome(failures, &mut rng);
    summary.retry_attempts += u64::from(outcome.retries);
    summary.retry_backoff_ms += outcome.backoff_ms;
    if outcome.gave_up {
        summary.fetch_retry_giveups += 1;
        return false;
    }
    true
}

/// Decode a delta CAR after verifying it: every block must match its CID
/// (checked by the parser), the head commit block must be present, and its
/// revision must be the one `listRepos` reported. Returns the record
/// blocks, or `None` when verification fails (the caller falls back to a
/// full fetch).
fn decode_verified_delta(delta: &[u8], expected_rev: &str) -> Option<Vec<(Cid, Vec<u8>)>> {
    let (roots, blocks) = Repository::parse_car(delta).ok()?;
    let root = roots.first()?;
    let (rev, _data) = commit_summary(blocks.get(root)?).ok()?;
    if rev.to_string() != expected_rev {
        return None;
    }
    Some(record_blocks(&blocks))
}

/// Every block that decodes as a record, with its raw bytes, in CID order.
/// Commit and MST node blocks carry no `$type` and fall out naturally.
fn record_blocks(blocks: &BTreeMap<Cid, Vec<u8>>) -> Vec<(Cid, Vec<u8>)> {
    blocks
        .iter()
        .filter(|(_, bytes)| Record::from_cbor(bytes).is_ok())
        .map(|(cid, bytes)| (*cid, bytes.clone()))
        .collect()
}

/// Days of history the weekly compaction pass keeps in every repository's
/// delta-serving window. Two weekly `listRepos` snapshots fit comfortably,
/// so the incremental mirror's deltas (at most one week old) never hit the
/// fallback in steady state.
pub const COMPACTION_WINDOW_DAYS: i64 = 14;

/// Drives a [`World`] and emits the datasets as observations.
#[derive(Debug)]
pub struct Collector {
    chunk_events: usize,
    mode: SnapshotMode,
    /// Backend for the mirror's record-block store (rebuilt per stream).
    store_config: StoreConfig,
    /// Days of delta-window history repositories retain; `None` disables
    /// the weekly compaction pass.
    compaction_window: Option<i64>,
    mirror: IncrementalRepoMirror,
    firehose_cursor: u64,
    seen_identifiers: BTreeSet<String>,
    identifier_order: Vec<Did>,
    /// Labeler registry entries already announced to the sink.
    labelers_emitted: usize,
    /// Per-labeler `subscribeLabels` cursors.
    label_cursors: Vec<usize>,
    observations: u64,
    /// Active wire framing policy (padding × batching) for this run's
    /// firehose wire. Accounted in the summary; the §10 report sweeps every
    /// mitigation cell counterfactually regardless of this setting.
    framing: FramingPolicy,
    /// Injected-fault plan for the client side of this run (flaky fetches,
    /// DNS failures, cursor gaps/rewinds). The quiet plan draws no
    /// randomness and counts nothing.
    faults: Arc<FaultPlan>,
    /// Retry/backoff policy per timeout class.
    retry_full: RetryPolicy,
    retry_delta: RetryPolicy,
    retry_dns: RetryPolicy,
    /// Observatory ground truth: DID → (handle, activity class), built from
    /// the population plan at stream start.
    identity_map: BTreeMap<String, (String, ActivityClass)>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// Create a collector with the default chunk size.
    pub fn new() -> Collector {
        Collector::with_chunk_size(DEFAULT_CHUNK_EVENTS)
    }

    /// Create a collector that crawls after every `chunk_events` pending
    /// relay events. Smaller chunks bound the in-flight batch tighter at
    /// the cost of more crawl round-trips.
    pub fn with_chunk_size(chunk_events: usize) -> Collector {
        Collector {
            chunk_events: chunk_events.max(1),
            mode: SnapshotMode::default(),
            store_config: StoreConfig::default(),
            compaction_window: Some(COMPACTION_WINDOW_DAYS),
            mirror: IncrementalRepoMirror::new(),
            firehose_cursor: 0,
            seen_identifiers: BTreeSet::new(),
            identifier_order: Vec::new(),
            labelers_emitted: 0,
            label_cursors: Vec::new(),
            observations: 0,
            framing: FramingPolicy::default(),
            faults: Arc::new(FaultPlan::quiet()),
            retry_full: RetryPolicy::for_class(TimeoutClass::RepoFetch),
            retry_delta: RetryPolicy::for_class(TimeoutClass::DeltaFetch),
            retry_dns: RetryPolicy::for_class(TimeoutClass::DnsLookup),
            identity_map: BTreeMap::new(),
        }
    }

    /// Select how the repositories dataset is collected (builder style).
    pub fn snapshot_mode(mut self, mode: SnapshotMode) -> Collector {
        self.mode = mode;
        self
    }

    /// Select the block-store backend for the producer's repo mirror
    /// (builder style). The world's own stores are chosen when the world is
    /// built — see [`bsky_workload::WorldSpec`] / [`crate::RunSpec::store`].
    pub fn store(mut self, store: StoreConfig) -> Collector {
        self.store_config = store;
        self
    }

    /// Override (or with `None` disable) the weekly repository compaction
    /// window (builder style). Cadence and cutoff derive only from
    /// simulated time, so shards and snapshot modes compact identically and
    /// reports stay byte-identical.
    pub fn compaction_window(mut self, days: Option<i64>) -> Collector {
        self.compaction_window = days.map(|d| d.max(1));
        self
    }

    /// Select the active wire framing policy (builder style): the padding
    /// and batching mitigations applied to this run's own firehose wire
    /// (repro `--padding` / `--batch-window`). Deterministic functions of
    /// the frame content, accounted into the summary's wire counters; §4–§10
    /// report bytes are invariant under this knob by construction.
    pub fn framing(mut self, framing: FramingPolicy) -> Collector {
        self.framing = framing;
        self
    }

    /// Select the injected-fault plan driving the *client* side of this run
    /// (builder style): flaky/timed-out repo fetches, DNS failures on the
    /// identity path, firehose cursor gaps and rewinds. Every decision is a
    /// pure function of `(seed, key, day)` — recomputable on any shard —
    /// and every retry, give-up, or dropped event is a named counter in the
    /// [`StreamSummary`], never silent. The quiet plan leaves the stream
    /// byte-identical to a collector built without this call.
    pub fn faults(mut self, faults: Arc<FaultPlan>) -> Collector {
        self.faults = faults;
        self
    }

    /// Override the retry/backoff policy for one timeout class (builder
    /// style). Defaults come from [`RetryPolicy::for_class`].
    pub fn retry(mut self, class: TimeoutClass, policy: RetryPolicy) -> Collector {
        match class {
            TimeoutClass::RepoFetch => self.retry_full = policy,
            TimeoutClass::DeltaFetch => self.retry_delta = policy,
            TimeoutClass::DnsLookup => self.retry_dns = policy,
        }
        self
    }

    /// The configured snapshot mode.
    pub fn mode(&self) -> SnapshotMode {
        self.mode
    }

    fn emit<S: ObservationSink>(&mut self, sink: &mut S, obs: &Observation<'_>, world: &World) {
        self.observations += 1;
        sink.observe(obs, &StudyCtx::new(world));
    }

    /// Run the world to its end date while streaming every observation to
    /// the sink, then emit the final snapshots. One pass; nothing is
    /// retained here beyond per-DID dedup state, and at most one chunk of
    /// firehose events is in flight at any time.
    ///
    /// The sink may itself be concurrent: under `--pipeline` this producer
    /// feeds a [`crate::shard::PipelinedSink`], which materializes each
    /// borrowed [`Observation`] into an owned batch and ships it to analyzer
    /// worker threads. The bounded channel's backpressure transfers the
    /// one-chunk memory bound across the thread boundary unchanged.
    pub fn stream<S: ObservationSink>(&mut self, world: &mut World, sink: &mut S) -> StreamSummary {
        // Each stream is a complete, independent collection: reset the
        // per-run producer state so a reused collector starts fresh.
        self.firehose_cursor = 0;
        self.mirror = IncrementalRepoMirror::with_store_faults(
            self.store_config.build(),
            self.faults.clone(),
            self.retry_full,
            self.retry_delta,
        );
        self.seen_identifiers.clear();
        self.identifier_order.clear();
        self.labelers_emitted = 0;
        self.label_cursors.clear();
        self.observations = 0;
        // Observatory ground truth: the plan's activity weights classify
        // every planned DID; labeler/feed-generator service DIDs fall back
        // to `Lurking` at lookup time.
        self.identity_map = (0..world.plan.len())
            .map(|index| {
                let profile = world.plan.profile(index);
                (
                    profile.did.to_string(),
                    (
                        profile.handle.as_str().to_string(),
                        ActivityClass::of_weight(profile.activity_weight),
                    ),
                )
            })
            .collect();
        let mut summary = StreamSummary::default();
        let firehose_start = world.config.firehose_collection_start;
        let collection_end = world.config.end;
        self.emit(
            sink,
            &Observation::WindowStart {
                firehose_collection_start: firehose_start,
                collection_end,
            },
            world,
        );
        let mut last_listrepos: Option<Datetime> = None;
        while !world.finished() {
            let Some(mut cursor) = world.begin_day() else {
                break;
            };
            let today = cursor.day();
            let day_abs = today.timestamp().div_euclid(86_400) as u64;
            let day_start_cursor = self.firehose_cursor;
            summary.days += 1;
            self.emit(sink, &Observation::DayBoundary { day: today }, world);
            // Interleave chunked simulation with subscription reads: the
            // producer drains the relay continuously (discarding pre-window
            // events), so neither the relay backlog nor a heavy day ever
            // accumulates into one oversized batch.
            loop {
                let done = world.step_chunk(&mut cursor, self.chunk_events);
                let sub = world.relay.subscribe(self.firehose_cursor);
                self.firehose_cursor = sub.cursor;
                summary.peak_in_flight_events = summary.peak_in_flight_events.max(sub.events.len());
                for event in sub.events.iter().filter(|e| e.time >= firehose_start) {
                    // Injected cursor gap: the subscriber's cursor skips
                    // over this commit, so the event never reaches the
                    // analyzers. Counted, never silent; Table 1's
                    // firehose-event total counts only *observed* events,
                    // exactly like a real consumer that lost frames. A
                    // pure function of `(seed, DID, event-day)`, so every
                    // shard drops the same events.
                    if !self.faults.is_quiet() {
                        if let EventBody::Commit { did, .. } = &event.body {
                            let event_day = event.time.timestamp().div_euclid(86_400) as u64;
                            if self.faults.drops_commit(&did.to_string(), event_day) {
                                summary.cursor_gap_drops += 1;
                                continue;
                            }
                        }
                    }
                    summary.firehose_events += 1;
                    self.observations += 1;
                    sink.observe(&Observation::Firehose(event), &StudyCtx::new(world));
                }
                if done {
                    break;
                }
            }
            world.end_day(cursor);
            // Injected cursor rewind: the relay re-serves today's frames
            // from the day-start cursor (as a restarted subscriber would
            // request). The replayed events are counted — they model the
            // duplicate wire traffic a real rewind costs — but not
            // re-observed: the analyzers already consumed them, and
            // idempotent re-observation is exactly what a consumer's dedup
            // layer provides. The real cursor is untouched.
            if !self.faults.is_quiet() && self.faults.rewinds_cursor(day_abs) {
                let replay = world.relay.subscribe(day_start_cursor);
                summary.cursor_rewind_replays += replay
                    .events
                    .iter()
                    .filter(|e| e.time >= firehose_start)
                    .count() as u64;
            }
            // Drain the relay's passive wire tap at the day boundary: one
            // observatory record per traced connection per day. Day-end
            // flushing makes each record a pure function of the day's
            // (time, size) multiset — independent of chunking — and bounds
            // tap memory to a single day of connections.
            self.flush_wire_traces(world, sink, &mut summary, firehose_start);
            // Labeler metadata for services announced today (exactly one
            // shard owns each labeler DID), then today's label batches from
            // every stream.
            self.emit_new_labelers(world, sink);
            self.emit_new_labels(world, sink);
            // Weekly listRepos snapshots during the collection window.
            if today >= firehose_start {
                let due = match last_listrepos {
                    None => true,
                    Some(prev) => today.days_since(prev) >= 7,
                };
                if due {
                    self.snapshot_user_identifiers(world, sink, &mut summary);
                    // The incremental mirror rides along with the weekly
                    // identifier snapshot: the revs just listed tell it
                    // which repos to delta-sync now instead of re-fetching
                    // everything at the window end.
                    if self.mode == SnapshotMode::Incremental {
                        self.mirror
                            .sync(&mut world.relay, &mut world.fleet, today, &mut summary);
                    }
                    // Weekly compaction pass: repositories drop history
                    // that aged out of the delta window. Runs in *both*
                    // snapshot modes on the same simulated-time cadence, so
                    // the emitted snapshots (and the reports) stay
                    // byte-identical across modes, shards and backends.
                    //
                    // Caveat this relies on: the workload only ever
                    // *creates* records (account deletion drops whole
                    // repos), so compaction never removes a record version
                    // the incremental mirror already fetched. If the
                    // workload ever gains record updates/deletes, full
                    // exports would shrink below the mirror's accumulated
                    // view and the two snapshot modes would diverge — the
                    // golden equivalence test recomputes both modes every
                    // run and will fail loudly the moment that happens (at
                    // which point deltas need to carry purged-CID lists).
                    if let Some(window) = self.compaction_window {
                        let cutoff_day = today.plus_days(-window);
                        let cutoff =
                            Tid::from_micros(cutoff_day.timestamp().max(0) as u64 * 1_000_000, 0);
                        let stats = world.compact_repos(&cutoff);
                        summary.store_bytes_reclaimed += stats.bytes_reclaimed as u64;
                    }
                    last_listrepos = Some(today);
                    summary.listrepos_snapshots += 1;
                }
            }
        }
        // Final snapshots at the end of the window.
        self.snapshot_user_identifiers(world, sink, &mut summary);
        self.snapshot_did_documents(world, sink, &mut summary);
        self.snapshot_feed_generators(world, sink);
        self.snapshot_repositories(world, sink, &mut summary);
        self.emit(sink, &Observation::WindowEnd { at: collection_end }, world);
        summary.observations = self.observations;
        // End-of-run storage accounting: fleet repos + relay CAR mirror +
        // the producer's own repo mirror.
        let mut store_stats = world.store_stats();
        store_stats.absorb(&self.mirror.store_stats());
        summary.resident_block_bytes = store_stats.resident_bytes as u64;
        summary.spilled_block_bytes = store_stats.spilled_bytes as u64;
        // Corrupt spill-file blocks read as absent (the store verifies
        // every read-back by CID); any such loss would make the emitted
        // snapshots incomplete, so the count is surfaced — never silent.
        summary.store_corrupt_reads = store_stats.corrupt_reads;
        // Labels the AppView could not apply because their target was not
        // indexed (post deleted, or label raced the post) — counted like
        // `repo_snapshot_skips`, never silently dropped.
        summary.appview_labels_preindex = world.appview.index().labels_preindex();
        // Hot/cold-split accounting: counter writes the dirty maps
        // coalesced, and the write-back caches' hit/flush traffic (the
        // AppView's stores are the only write-back-wrapped ones, so the
        // absorbed totals are AppView totals).
        summary.counter_coalesced_writes = world.appview_counter_coalesced_writes();
        summary.writeback_flushes = store_stats.writeback_flushes;
        summary.writeback_hits = store_stats.writeback_hits;
        summary.writeback_misses = store_stats.writeback_misses;
        // Workload-side injected-fault accounting (outage migrations, spam
        // waves, label/tombstone storms) flows into the same summary so
        // every injected fault in a scenario run shows up as a named
        // counter. All zero under the quiet plan.
        let fault_counters = world.fault_counters();
        summary.outage_migrations = fault_counters.outage_migrations;
        summary.spam_posts_injected = fault_counters.spam_posts_injected;
        summary.storm_labels_applied = fault_counters.storm_labels_applied;
        summary.storm_tombstones = fault_counters.storm_tombstones;
        // Federation accounting: frames the super-relay accepted from the
        // regional tier and cross-relay dedup activity (all zero in a
        // single-relay run). Diagnostics only — the report stays
        // byte-identical to the single-relay topology.
        let relay_stats = world.relay.stats();
        summary.relay_events_forwarded = relay_stats.events_forwarded();
        summary.relay_duplicates_dropped = relay_stats.duplicates_dropped();
        summary.relay_dedup_tracked = relay_stats.dedup_tracked();
        summary
    }

    /// Batch compatibility: stream into a [`Materialize`] analyzer and
    /// return the in-memory datasets (the seed pipeline's representation).
    pub fn run(&mut self, world: &mut World) -> Datasets {
        let mut materialize = Materialize::new();
        self.stream(world, &mut materialize);
        let ctx = StudyCtx::new(world);
        materialize.finish(&ctx)
    }

    fn emit_new_labelers<S: ObservationSink>(&mut self, world: &World, sink: &mut S) {
        while self.labelers_emitted < world.labelers.all().len() {
            let index = self.labelers_emitted;
            self.labelers_emitted += 1;
            self.label_cursors.push(0);
            let labeler = &world.labelers.all()[index];
            let entry = LabelerEntry {
                did: labeler.did().clone(),
                name: labeler.display_name().to_string(),
                operator: labeler.operator(),
                hosting: labeler.hosting(),
                functional: labeler.is_functional(),
                announced_at: labeler.announced_at(),
                labels: Vec::new(),
            };
            // Every shard instantiates every labeler, but the metadata is a
            // global singleton: only the shard owning the labeler's DID
            // announces it. (Label batches, by contrast, flow from every
            // shard — each shard's labeler copy labels that shard's posts.)
            if world.owns_did(&entry.did) {
                self.emit(sink, &Observation::Labeler(&entry), world);
            }
        }
    }

    fn emit_new_labels<S: ObservationSink>(&mut self, world: &World, sink: &mut S) {
        for index in 0..self.labelers_emitted {
            let labeler = &world.labelers.all()[index];
            let (labels, next) = labeler.subscribe_labels(self.label_cursors[index]);
            if !labels.is_empty() {
                self.observations += 1;
                sink.observe(
                    &Observation::Labels {
                        src: labeler.did(),
                        labels,
                    },
                    &StudyCtx::new(world),
                );
            }
            self.label_cursors[index] = next;
        }
    }

    /// Drain the relay's passive wire tap and emit one
    /// [`Observation::WireTrace`] per connection that carried in-window
    /// traffic today. Also accounts the *active* framing policy's wire into
    /// the summary — the one knob-dependent surface; the §10 report itself
    /// sweeps every mitigation cell from the raw captures.
    fn flush_wire_traces<S: ObservationSink>(
        &mut self,
        world: &mut World,
        sink: &mut S,
        summary: &mut StreamSummary,
        firehose_start: Datetime,
    ) {
        let start = firehose_start.timestamp();
        for (conn, trace) in world.relay.take_wire_traces() {
            // Dropped frames are surfaced even when the day itself falls
            // outside the collection window — never silent.
            summary.observer_trace_drops += trace.dropped;
            // Warmup traffic before the firehose window is not collected;
            // drop it exactly as the firehose reader does.
            let frames: Vec<(i64, u64)> = trace
                .frames
                .iter()
                .copied()
                .filter(|&(time, _)| time >= start)
                .collect();
            if frames.is_empty() {
                continue;
            }
            let Ok(did) = Did::parse(&conn) else {
                continue;
            };
            let day = frames[0].0.div_euclid(86_400);
            let class = self
                .identity_map
                .get(&conn)
                .map(|(_, class)| *class)
                .unwrap_or(ActivityClass::Lurking);
            let record =
                WireTraceDay::from_frames(TraceKind::Repo, did, day, class, &frames, trace.dropped);
            let active = cell_trace(
                &frames,
                self.framing.padding,
                self.framing.batch.window_secs,
            );
            summary.wire_frames += active.frames;
            summary.padding_overhead_bytes +=
                active.wire_bytes.saturating_sub(record.payload_bytes);
            self.emit(sink, &Observation::WireTrace(&record), world);
        }
    }

    fn snapshot_user_identifiers<S: ObservationSink>(
        &mut self,
        world: &World,
        sink: &mut S,
        summary: &mut StreamSummary,
    ) {
        // Identity resolution rides along with the listRepos snapshot: for
        // each newly listed planned DID the study client resolves the
        // `_atproto.<handle>` TXT record, like the paper's handle-ownership
        // checks. The lookups form one DNS wire trace per snapshot.
        let mut lookup_frames: Vec<(i64, u64)> = Vec::new();
        let when = world.today.timestamp();
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = world.relay.list_repos(cursor.as_deref(), 500);
            for (did, rev) in page {
                if self.seen_identifiers.insert(did.to_string()) {
                    if let Some((handle, _)) = self.identity_map.get(&did.to_string()) {
                        // Injected DNS flakiness resolves before the real
                        // lookup: transient SERVFAILs are retried under the
                        // DnsLookup policy; a give-up leaves the handle
                        // unverified this snapshot (counted, never silent).
                        // Real resolver SERVFAILs (zone marked failed) are
                        // counted distinctly from healthy lookups too.
                        let day = when.div_euclid(86_400) as u64;
                        let failures = self.faults.dns_failures(handle, day);
                        if failures > 0 {
                            let mut rng = self.faults.retry_rng("dns", handle, day);
                            let outcome = self.retry_dns.outcome(failures, &mut rng);
                            summary.retry_attempts += u64::from(outcome.retries);
                            summary.retry_backoff_ms += outcome.backoff_ms;
                            summary.dns_servfails += u64::from(outcome.retries);
                            if outcome.gave_up {
                                summary.dns_servfails += 1;
                                summary.dns_retry_giveups += 1;
                            } else if world.dns.resolve_atproto(handle)
                                == AtprotoResolution::ServFail
                            {
                                summary.dns_servfails += 1;
                            }
                        } else if world.dns.resolve_atproto(handle) == AtprotoResolution::ServFail {
                            summary.dns_servfails += 1;
                        }
                        summary.identity_lookups += 1;
                        // Modeled DNS query + response bytes for the
                        // `_atproto.<handle>` TXT lookup (one frame per
                        // lookup regardless of injected retries: the
                        // retried queries are simulated-time stalls, not
                        // extra observed wire records).
                        lookup_frames.push((when, 64 + 9 + handle.len() as u64));
                    }
                    self.identifier_order.push(did.clone());
                    let rev = rev.map(|t| t.to_string());
                    self.emit(
                        sink,
                        &Observation::UserIdentifier {
                            did: &did,
                            rev: rev.as_deref(),
                        },
                        world,
                    );
                }
            }
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        if !lookup_frames.is_empty() {
            let record = WireTraceDay::from_frames(
                TraceKind::Dns,
                Did::plc_from_seed(b"dns-resolver-client"),
                when.div_euclid(86_400),
                ActivityClass::Lurking,
                &lookup_frames,
                0,
            );
            self.emit(sink, &Observation::WireTrace(&record), world);
        }
    }

    fn snapshot_did_documents<S: ObservationSink>(
        &mut self,
        world: &World,
        sink: &mut S,
        summary: &mut StreamSummary,
    ) {
        // Full PLC export (paginated).
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = world.plc.export(cursor.as_deref(), 1_000);
            for doc in page {
                self.emit(
                    sink,
                    &Observation::DidDocument {
                        doc,
                        via_web: false,
                    },
                    world,
                );
            }
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        // did:web documents: fetch /.well-known/did.json for did:web users.
        for index in 0..world.users.len() {
            let Some(domain) = world.users[index].did.web_domain() else {
                continue;
            };
            let url = format!("https://{domain}/.well-known/did.json");
            // A non-OK response or an unparseable document leaves this
            // did:web user without a document in the dataset — counted,
            // never a silent `if let` fall-through.
            match world.web.get(&url) {
                HttpResponse::Ok(body) => match DidDocument::from_wire(&body) {
                    Ok(doc) => {
                        self.emit(
                            sink,
                            &Observation::DidDocument {
                                doc: &doc,
                                via_web: true,
                            },
                            world,
                        );
                    }
                    Err(_) => summary.did_doc_fetch_failures += 1,
                },
                _ => summary.did_doc_fetch_failures += 1,
            }
        }
    }

    /// Emit the §3 repositories dataset at the window end: one snapshot per
    /// collected DID in first-seen order, regardless of [`SnapshotMode`] —
    /// the modes differ only in *when* and *how much* they fetched.
    fn snapshot_repositories<S: ObservationSink>(
        &mut self,
        world: &mut World,
        sink: &mut S,
        summary: &mut StreamSummary,
    ) {
        let end = world.config.end;
        if self.mode == SnapshotMode::Incremental {
            // Catch-up sync for anything that changed since the last weekly
            // snapshot, then serve every emission from mirrored state.
            self.mirror
                .sync(&mut world.relay, &mut world.fleet, end, summary);
        }
        // Take the order list out of `self` for the duration of the loop
        // (the body needs `&mut self` to emit) instead of cloning one DID
        // per collected user.
        let order = std::mem::take(&mut self.identifier_order);
        for did in &order {
            let records = match self.mode {
                SnapshotMode::Incremental => match self.mirror.records(did) {
                    Some(records) => records,
                    None => continue, // deleted mid-window; skip counted at sync
                },
                SnapshotMode::FullRefetch => {
                    // Injected flakiness applies to the window-end bulk
                    // download too: a repo abandoned after the retry budget
                    // is a counted skip.
                    if !resolve_retries(
                        &self.faults,
                        self.retry_full,
                        "full",
                        &did.to_string(),
                        end,
                        summary,
                    ) {
                        summary.repo_snapshot_skips += 1;
                        continue;
                    }
                    let car = match world.relay.get_repo(did, &mut world.fleet, end) {
                        Ok(car) => car,
                        Err(_) => {
                            // Deleted / migrated away mid-snapshot.
                            summary.repo_snapshot_skips += 1;
                            continue;
                        }
                    };
                    summary.snapshot_bytes_fetched += car.len() as u64;
                    summary.repo_full_fetches += 1;
                    let Ok((_roots, blocks)) = Repository::parse_car(&car) else {
                        summary.repo_snapshot_skips += 1;
                        continue;
                    };
                    // Decode every block that parses as a known or unknown
                    // record.
                    let mut records = Vec::new();
                    for bytes in blocks.values() {
                        if let Ok(record) = Record::from_cbor(bytes) {
                            let collection = record.collection();
                            records.push((collection, String::new(), record));
                        }
                    }
                    records
                }
            };
            let snapshot = RepoSnapshot {
                did: did.clone(),
                records,
            };
            self.emit(sink, &Observation::Repo(&snapshot), world);
        }
        self.identifier_order = order;
    }

    fn snapshot_feed_generators<S: ObservationSink>(&mut self, world: &World, sink: &mut S) {
        for index in 0..world.feedgens.len() {
            let info = &world.feedgen_info[index];
            let platform = info.platform_name.clone();
            let creator_is_popular_rank = info.plan.creator_popularity_rank;
            let created_at = info.plan.created_at;
            let generator = &world.feedgens[index];
            // Hydrate the retained entries against the post index, as
            // `getFeed` does on the live network: URIs the AppView cannot
            // resolve are silently dropped. `has_post` probes the sharded
            // key index without decoding (or paging in) the post blocks.
            // Personalised feeds serve nothing to the study's anonymous
            // crawler.
            let posts: Vec<FeedPost> = if generator.is_personalized() {
                Vec::new()
            } else {
                generator
                    .entries()
                    .iter()
                    .filter(|entry| world.appview.index().has_post(&entry.uri))
                    .map(|entry| FeedPost {
                        uri: entry.uri.clone(),
                        created_at: entry.post_created_at,
                        curated_at: entry.curated_at,
                    })
                    .collect()
            };
            let record = generator.record();
            let entry = FeedGenEntry {
                uri: generator.uri().clone(),
                creator: generator.creator().clone(),
                display_name: record.display_name.clone(),
                description: record.description.clone(),
                platform,
                created_at,
                retention: generator.retention(),
                like_count: generator.like_count(),
                creator_is_popular_rank,
                posts,
                online_and_valid: true,
            };
            self.emit(sink, &Observation::FeedGenerator(&entry), world);
        }
    }
}

/// The optional materializing analyzer: folds the observation stream back
/// into the batch [`Datasets`] vectors. Register it when the in-memory
/// representation is actually needed (compatibility, golden tests); leave it
/// out for bounded-memory runs.
///
/// Observations are borrowed from the producer, so materializing clones each
/// firehose event and repository snapshot — the batch path pays one extra
/// deep copy of the two largest datasets relative to the pre-streaming
/// collector. That cost is confined to this analyzer by design; the
/// streaming path copies nothing.
#[derive(Debug, Default)]
pub struct Materialize {
    datasets: Datasets,
    labeler_by_did: BTreeMap<String, usize>,
    feed_by_uri: BTreeMap<String, usize>,
    /// Labels that arrived before their labeler's metadata (only possible
    /// on artificial stream splits; the live stream and the replay always
    /// announce metadata first).
    orphan_labels: BTreeMap<String, Vec<Label>>,
}

impl Materialize {
    /// A materializer with empty datasets.
    pub fn new() -> Materialize {
        Materialize::default()
    }
}

impl ObservationSink for Materialize {
    fn observe(&mut self, obs: &Observation<'_>, ctx: &StudyCtx<'_>) {
        Analyzer::observe(self, obs, ctx);
    }
}

impl Analyzer for Materialize {
    type Output = Datasets;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        match obs {
            Observation::WindowStart {
                firehose_collection_start,
                collection_end,
            } => {
                self.datasets.firehose_collection_start = *firehose_collection_start;
                self.datasets.collection_end = *collection_end;
            }
            Observation::DayBoundary { .. } => {}
            Observation::Firehose(event) => {
                self.datasets.firehose_events.push((*event).clone());
            }
            Observation::UserIdentifier { did, rev } => {
                self.datasets
                    .user_identifiers
                    .push(((*did).clone(), rev.map(str::to_string)));
            }
            Observation::DidDocument { doc, via_web } => {
                self.datasets.did_documents.push((*doc).clone());
                if *via_web {
                    self.datasets.did_web_count += 1;
                }
            }
            Observation::Labeler(entry) => {
                let key = entry.did.to_string();
                let mut entry = (*entry).clone();
                if let Some(orphans) = self.orphan_labels.remove(&key) {
                    entry.labels.extend(orphans);
                }
                self.labeler_by_did
                    .insert(key, self.datasets.labelers.len());
                self.datasets.labelers.push(entry);
            }
            Observation::Labels { src, labels } => {
                let key = src.to_string();
                match self.labeler_by_did.get(&key) {
                    Some(&index) => self.datasets.labelers[index]
                        .labels
                        .extend(labels.iter().cloned()),
                    None => self
                        .orphan_labels
                        .entry(key)
                        .or_default()
                        .extend(labels.iter().cloned()),
                }
            }
            Observation::FeedGenerator(entry) => {
                self.feed_by_uri
                    .insert(entry.uri.to_string(), self.datasets.feed_generators.len());
                self.datasets.feed_generators.push((*entry).clone());
            }
            Observation::Repo(snapshot) => {
                self.datasets.repositories.push((*snapshot).clone());
            }
            Observation::WireTrace(trace) => {
                self.datasets.wire_traces.push((*trace).clone());
            }
            Observation::WindowEnd { .. } => {}
        }
    }

    /// Merge another shard's materialized datasets. Per-entity categories
    /// are keyed (labelers by DID, feeds by URI) and re-sorted into a
    /// canonical order; the firehose is ordered by `(time, repo DID)` —
    /// deterministic, though not the serial interleaving, which no analyzer
    /// depends on.
    fn merge(&mut self, other: Self) {
        let Materialize {
            datasets: other_data,
            orphan_labels: other_orphans,
            ..
        } = other;
        if self.datasets.collection_end == Datetime::default() {
            self.datasets.firehose_collection_start = other_data.firehose_collection_start;
            self.datasets.collection_end = other_data.collection_end;
        }
        // Identifiers, documents, repositories: disjoint across shards.
        self.datasets
            .user_identifiers
            .extend(other_data.user_identifiers);
        self.datasets
            .user_identifiers
            .sort_by_key(|a| a.0.to_string());
        let plc_self = self.datasets.did_documents.len() - self.datasets.did_web_count;
        let plc_other = other_data.did_documents.len() - other_data.did_web_count;
        let mut docs = std::mem::take(&mut self.datasets.did_documents);
        let web_self = docs.split_off(plc_self);
        let mut other_docs = other_data.did_documents;
        let web_other = other_docs.split_off(plc_other);
        docs.extend(other_docs);
        docs.sort_by_key(|a| a.did.to_string());
        let mut web = web_self;
        web.extend(web_other);
        web.sort_by_key(|a| a.did.to_string());
        docs.extend(web);
        self.datasets.did_documents = docs;
        self.datasets.did_web_count += other_data.did_web_count;
        self.datasets.repositories.extend(other_data.repositories);
        self.datasets
            .repositories
            .sort_by_key(|a| a.did.to_string());
        // Firehose: canonical (time, did) order.
        self.datasets
            .firehose_events
            .extend(other_data.firehose_events);
        self.datasets.firehose_events.sort_by(|a, b| {
            (
                a.time,
                a.did().map(|d| d.to_string()).unwrap_or_default(),
                a.seq,
            )
                .cmp(&(
                    b.time,
                    b.did().map(|d| d.to_string()).unwrap_or_default(),
                    b.seq,
                ))
        });
        // Labelers: keyed by DID, label streams concatenated and ordered.
        for mut entry in other_data.labelers {
            match self.labeler_by_did.get(&entry.did.to_string()) {
                Some(&index) => self.datasets.labelers[index]
                    .labels
                    .append(&mut entry.labels),
                None => {
                    self.labeler_by_did
                        .insert(entry.did.to_string(), self.datasets.labelers.len());
                    self.datasets.labelers.push(entry);
                }
            }
        }
        for (did, orphans) in other_orphans {
            match self.labeler_by_did.get(&did) {
                Some(&index) => self.datasets.labelers[index].labels.extend(orphans),
                None => self.orphan_labels.entry(did).or_default().extend(orphans),
            }
        }
        for entry in &mut self.datasets.labelers {
            entry.labels.sort_by(|a, b| {
                (a.created_at, a.target.uri(), &a.value, a.negated).cmp(&(
                    b.created_at,
                    b.target.uri(),
                    &b.value,
                    b.negated,
                ))
            });
        }
        self.datasets.labelers.sort_by(|a, b| {
            a.announced_at
                .cmp(&b.announced_at)
                .then_with(|| a.did.to_string().cmp(&b.did.to_string()))
        });
        self.labeler_by_did = self
            .datasets
            .labelers
            .iter()
            .enumerate()
            .map(|(i, e)| (e.did.to_string(), i))
            .collect();
        // Feed generators: keyed by URI, absorbed pairwise.
        for entry in other_data.feed_generators {
            match self.feed_by_uri.get(&entry.uri.to_string()) {
                Some(&index) => self.datasets.feed_generators[index].absorb(entry),
                None => {
                    self.feed_by_uri
                        .insert(entry.uri.to_string(), self.datasets.feed_generators.len());
                    self.datasets.feed_generators.push(entry);
                }
            }
        }
        self.datasets
            .feed_generators
            .sort_by_key(|a| a.uri.to_string());
        self.feed_by_uri = self
            .datasets
            .feed_generators
            .iter()
            .enumerate()
            .map(|(i, e)| (e.uri.to_string(), i))
            .collect();
        // Wire traces: keyed by (kind, did, day). Repo connections are
        // disjoint across shards; the shared DNS resolver client's per-shard
        // halves of the same snapshot day absorb into one record.
        let mut traces = std::mem::take(&mut self.datasets.wire_traces);
        traces.extend(other_data.wire_traces);
        traces.sort_by(|a, b| {
            (a.kind, a.did.to_string(), a.day).cmp(&(b.kind, b.did.to_string(), b.day))
        });
        let mut merged: Vec<WireTraceDay> = Vec::with_capacity(traces.len());
        for trace in traces {
            match merged.last_mut() {
                Some(last)
                    if last.kind == trace.kind
                        && last.did == trace.did
                        && last.day == trace.day =>
                {
                    last.absorb(&trace);
                }
                _ => merged.push(trace),
            }
        }
        self.datasets.wire_traces = merged;
    }

    fn finish(self, _ctx: &StudyCtx<'_>) -> Datasets {
        self.datasets
    }
}

impl Datasets {
    /// Total number of label interactions collected (including negations).
    pub fn total_label_interactions(&self) -> usize {
        self.labelers.iter().map(|l| l.labels.len()).sum()
    }

    /// Total number of feed posts collected.
    pub fn total_feed_posts(&self) -> usize {
        self.feed_generators.iter().map(|f| f.posts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyEngine;
    use bsky_workload::ScenarioConfig;

    fn collected() -> (World, Datasets) {
        let mut config = ScenarioConfig::test_scale(5);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.firehose_collection_start = Datetime::from_ymd(2024, 3, 6).unwrap();
        config.scale = 40_000;
        let mut world = World::new(config);
        let datasets = Collector::new().run(&mut world);
        (world, datasets)
    }

    #[test]
    fn collector_gathers_all_datasets() {
        let (world, datasets) = collected();
        assert!(!datasets.user_identifiers.is_empty());
        assert!(!datasets.did_documents.is_empty());
        assert!(!datasets.repositories.is_empty());
        assert!(!datasets.firehose_events.is_empty());
        assert!(!datasets.feed_generators.is_empty());
        assert!(!datasets.labelers.is_empty());
        // Identifiers are unique.
        let mut dids: Vec<String> = datasets
            .user_identifiers
            .iter()
            .map(|(d, _)| d.to_string())
            .collect();
        let before = dids.len();
        dids.sort();
        dids.dedup();
        assert_eq!(dids.len(), before);
        // Firehose events all postdate the collection start.
        assert!(datasets
            .firehose_events
            .iter()
            .all(|e| e.time >= datasets.firehose_collection_start));
        // Every repository snapshot decoded at least one record.
        assert!(datasets.repositories.iter().any(|r| !r.records.is_empty()));
        // Label interactions were observed.
        assert!(datasets.total_label_interactions() > 0);
        // The world is still usable afterwards.
        assert!(world.finished());
    }

    #[test]
    fn repositories_cover_most_identifiers() {
        let (_, datasets) = collected();
        let ratio = datasets.repositories.len() as f64 / datasets.user_identifiers.len() as f64;
        assert!(ratio > 0.9, "repo coverage {ratio}");
    }

    #[test]
    fn collector_can_be_reused_across_worlds() {
        let mut config = ScenarioConfig::test_scale(5);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.scale = 40_000;
        let mut collector = Collector::new();
        let first = collector.run(&mut World::new(config));
        let second = collector.run(&mut World::new(config));
        // Per-run producer state resets, so the second collection sees the
        // same world from scratch instead of deduplicating against run one.
        assert_eq!(first.user_identifiers.len(), second.user_identifiers.len());
        assert_eq!(first.repositories.len(), second.repositories.len());
        assert!(!second.user_identifiers.is_empty());
    }

    #[test]
    fn stream_summary_reports_bounded_inflight() {
        let mut config = ScenarioConfig::test_scale(5);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.scale = 40_000;
        let mut world = World::new(config);
        let mut engine = StudyEngine::new();
        engine.register(Materialize::new());
        let summary = Collector::new().stream(&mut world, &mut engine);
        let ctx = StudyCtx::new(&world);
        let datasets = engine.finish(&ctx).take::<Datasets>().unwrap();
        assert_eq!(
            summary.firehose_events as usize,
            datasets.firehose_events.len()
        );
        assert!(summary.peak_in_flight_events > 0);
        // The producer never holds more than one chunk, which is far
        // smaller than the full firehose dataset the batch path retains.
        assert!(summary.peak_in_flight_events < datasets.firehose_events.len());
        assert!(summary.observations > summary.firehose_events);
        assert!(summary.days > 0);
        assert!(summary.render().contains("in flight"));
    }

    #[test]
    fn chunk_size_bounds_in_flight_events() {
        let mut config = ScenarioConfig::test_scale(5);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 10).unwrap();
        config.scale = 40_000;
        let mut world = World::new(config);
        let mut sink = Materialize::new();
        let summary = Collector::with_chunk_size(32).stream(&mut world, &mut sink);
        // One chunk plus one user's commit burst bounds the batch.
        assert!(
            summary.peak_in_flight_events < 32 + 64,
            "peak {} not bounded by chunk",
            summary.peak_in_flight_events
        );
    }

    #[test]
    fn incremental_and_full_refetch_repositories_are_identical() {
        let mut config = ScenarioConfig::test_scale(7);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.firehose_collection_start = Datetime::from_ymd(2024, 3, 6).unwrap();
        config.scale = 40_000;
        let (full, full_summary) = {
            let mut world = World::new(config);
            let mut sink = Materialize::new();
            let summary = Collector::new()
                .snapshot_mode(SnapshotMode::FullRefetch)
                .stream(&mut world, &mut sink);
            (sink.finish(&StudyCtx::detached()), summary)
        };
        let (incremental, inc_summary) = {
            let mut world = World::new(config);
            let mut sink = Materialize::new();
            let summary = Collector::new()
                .snapshot_mode(SnapshotMode::Incremental)
                .stream(&mut world, &mut sink);
            (sink.finish(&StudyCtx::detached()), summary)
        };
        // The emitted repository snapshots are byte-identical: same DIDs in
        // the same order, same decoded records.
        assert_eq!(incremental.repositories.len(), full.repositories.len());
        for (a, b) in incremental.repositories.iter().zip(&full.repositories) {
            assert_eq!(a.did, b.did);
            assert_eq!(a.records, b.records, "records diverge for {}", a.did);
        }
        // The incremental mode actually used deltas and fetched strictly
        // fewer bytes than the window-end full refetch.
        assert!(inc_summary.repo_delta_fetches > 0, "{inc_summary:?}");
        assert!(full_summary.repo_full_fetches > 0);
        assert_eq!(full_summary.repo_delta_fetches, 0);
        assert!(
            inc_summary.snapshot_bytes_fetched < full_summary.snapshot_bytes_fetched,
            "incremental {} vs full {}",
            inc_summary.snapshot_bytes_fetched,
            full_summary.snapshot_bytes_fetched
        );
    }

    mod mirror {
        use super::*;
        use bsky_atproto::nsid::known;
        use bsky_atproto::record::PostRecord;
        use bsky_atproto::Handle;
        use bsky_pds::PdsFleet;
        use bsky_relay::Relay;

        fn now() -> Datetime {
            Datetime::from_ymd_hms(2024, 4, 2, 9, 0, 0).unwrap()
        }

        fn post(text: &str) -> Record {
            Record::Post(PostRecord::simple(text, "en", now()))
        }

        fn post_on(fleet: &mut PdsFleet, did: &Did, text: &str, at: Datetime) {
            fleet
                .pds_for_mut(did)
                .unwrap()
                .create_record(did, Nsid::parse(known::POST).unwrap(), post(text), at)
                .unwrap();
        }

        fn setup(users: usize) -> (Relay, PdsFleet, Vec<Did>) {
            let mut fleet = PdsFleet::with_default_servers(2);
            let mut dids = Vec::new();
            for i in 0..users {
                let did = Did::plc_from_seed(format!("mirror-user{i}").as_bytes());
                fleet
                    .create_account_on(
                        "pds001.host.bsky.network",
                        did.clone(),
                        Handle::parse(&format!("mu{i}.bsky.social")).unwrap(),
                        now(),
                    )
                    .unwrap();
                for p in 0..10 {
                    post_on(&mut fleet, &did, &format!("u{i} post {p}"), now());
                }
                dids.push(did);
            }
            let mut relay = Relay::default();
            relay.crawl(&fleet, now());
            (relay, fleet, dids)
        }

        #[test]
        fn unchanged_revs_cost_no_fetches() {
            let (mut relay, mut fleet, dids) = setup(3);
            let mut mirror = IncrementalRepoMirror::new();
            let mut summary = StreamSummary::default();
            mirror.sync(&mut relay, &mut fleet, now(), &mut summary);
            assert_eq!(mirror.len(), 3);
            assert_eq!(summary.repo_full_fetches, 3);
            let after_first = summary;
            // Nothing changed: the second weekly sync is free.
            mirror.sync(&mut relay, &mut fleet, now(), &mut summary);
            assert_eq!(summary, after_first);
            assert!(mirror.records(&dids[0]).unwrap().len() >= 10);
        }

        #[test]
        fn advanced_revs_sync_with_deltas() {
            let (mut relay, mut fleet, dids) = setup(3);
            let mut mirror = IncrementalRepoMirror::new();
            let mut summary = StreamSummary::default();
            mirror.sync(&mut relay, &mut fleet, now(), &mut summary);
            let full_bytes = summary.snapshot_bytes_fetched;

            // One user posts; only that repo is re-synced, as a delta.
            post_on(&mut fleet, &dids[1], "fresh", now().plus_days(1));
            relay.crawl(&fleet, now().plus_days(1));
            mirror.sync(&mut relay, &mut fleet, now().plus_days(1), &mut summary);
            assert_eq!(summary.repo_full_fetches, 3, "no extra full fetch");
            assert_eq!(summary.repo_delta_fetches, 1);
            let delta_bytes = summary.snapshot_bytes_fetched - full_bytes;
            assert!(delta_bytes > 0);
            assert!(delta_bytes < full_bytes / 3, "delta must be small");
            // The mirrored state now includes the new record.
            let records = mirror.records(&dids[1]).unwrap();
            assert!(records.iter().any(|(_, _, r)| *r == post("fresh")));
        }

        #[test]
        fn deleted_accounts_drop_mirrored_state() {
            let (mut relay, mut fleet, dids) = setup(2);
            let mut mirror = IncrementalRepoMirror::new();
            let mut summary = StreamSummary::default();
            mirror.sync(&mut relay, &mut fleet, now(), &mut summary);
            assert_eq!(mirror.len(), 2);
            fleet
                .pds_for_mut(&dids[0])
                .unwrap()
                .delete_account(&dids[0], now().plus_days(1))
                .unwrap();
            relay.crawl(&fleet, now().plus_days(1));
            mirror.sync(&mut relay, &mut fleet, now().plus_days(1), &mut summary);
            assert_eq!(mirror.len(), 1);
            assert!(mirror.records(&dids[0]).is_none());
            assert!(mirror.records(&dids[1]).is_some());
            // The dropped repo is a dataset gap, accounted exactly like the
            // full-refetch path's failed window-end fetch.
            assert_eq!(summary.repo_snapshot_skips, 1);
        }

        #[test]
        fn replaced_repo_falls_back_to_full_refetch() {
            let (mut relay, mut fleet, dids) = setup(2);
            let did = dids[0].clone();
            let mut mirror = IncrementalRepoMirror::new();
            let mut summary = StreamSummary::default();
            mirror.sync(&mut relay, &mut fleet, now(), &mut summary);
            assert_eq!(summary.repo_full_fetches, 2);
            let old_rev = mirror.synced_rev(&did).unwrap().unwrap().to_string();

            // The account is deleted on pds001 and re-created from scratch
            // on pds002 before the next snapshot: its repository history —
            // and its revision sequence — restarts. pds001 sorts first, so
            // the crawl sees the tombstone before the re-registration.
            fleet
                .pds_for_mut(&did)
                .unwrap()
                .delete_account(&did, now().plus_days(1))
                .unwrap();
            fleet
                .create_account_on(
                    "pds002.host.bsky.network",
                    did.clone(),
                    Handle::parse("mu0-reborn.bsky.social").unwrap(),
                    now().plus_days(1),
                )
                .unwrap();
            post_on(&mut fleet, &did, "rewound", now().plus_days(1));
            relay.crawl(&fleet, now().plus_days(1));

            mirror.sync(&mut relay, &mut fleet, now().plus_days(1), &mut summary);
            // The mirror could not delta from a revision the new repo never
            // had: it re-fetched the whole (new) repository.
            assert_eq!(summary.repo_full_fetches, 3);
            let new_rev = mirror.synced_rev(&did).unwrap().unwrap().to_string();
            assert_ne!(new_rev, old_rev);
            let records = mirror.records(&did).unwrap();
            assert!(records.iter().any(|(_, _, r)| *r == post("rewound")));
            assert!(
                !records.iter().any(|(_, _, r)| *r == post("u0 post 0")),
                "replaced repos must not retain pre-rewind records"
            );
        }

        #[test]
        fn compacted_source_revisions_fall_back_to_full_fetch_counted() {
            let (mut relay, mut fleet, dids) = setup(2);
            let mut mirror = IncrementalRepoMirror::new();
            let mut summary = StreamSummary::default();
            mirror.sync(&mut relay, &mut fleet, now(), &mut summary);
            assert_eq!(summary.repo_full_fetches, 2);

            // One repo advances, then the source compacts the mirror's
            // synced revision out of its delta-serving window.
            let later = now().plus_days(30);
            post_on(&mut fleet, &dids[0], "after window", later);
            let head = fleet
                .pds_for(&dids[0])
                .unwrap()
                .repo(&dids[0])
                .unwrap()
                .rev()
                .unwrap();
            let cutoff = Tid::from_micros(head.timestamp_micros(), 0);
            let stats = fleet.compact_all(&cutoff);
            assert!(stats.commits_dropped > 0);
            relay.crawl(&fleet, later);

            mirror.sync(&mut relay, &mut fleet, later, &mut summary);
            // The delta attempt failed because of compaction — counted,
            // then satisfied by a full fetch.
            assert_eq!(summary.repo_compaction_fallbacks, 1, "{summary:?}");
            assert_eq!(summary.repo_delta_fetches, 0);
            assert_eq!(summary.repo_full_fetches, 3);
            let records = mirror.records(&dids[0]).unwrap();
            assert!(records.iter().any(|(_, _, r)| *r == post("after window")));
        }

        #[test]
        fn paged_mirror_serves_identical_records_while_spilling() {
            use bsky_atproto::blockstore::StoreConfig;
            let (mut relay, mut fleet, dids) = setup(4);
            let mut mem = IncrementalRepoMirror::new();
            let paged_config = StoreConfig::paged().page_size(512).resident_pages(1);
            let mut paged = IncrementalRepoMirror::with_store(paged_config.build());
            let mut s1 = StreamSummary::default();
            let mut s2 = StreamSummary::default();
            mem.sync(&mut relay, &mut fleet, now(), &mut s1);
            paged.sync(&mut relay, &mut fleet, now(), &mut s2);
            assert!(
                paged.store_stats().spilled_bytes > 0,
                "mirror must spill: {:?}",
                paged.store_stats()
            );
            assert!(paged.store_stats().resident_bytes < mem.store_stats().resident_bytes);
            for did in &dids {
                assert_eq!(paged.records(did), mem.records(did), "{did}");
            }
            // Dropping every DID empties the store (refcounts balance).
            paged.clear();
            assert_eq!(paged.store_stats().blocks, 0);
            assert_eq!(paged.store_stats().logical_bytes, 0);
        }

        #[test]
        fn repos_without_commits_are_mirrored_once() {
            let mut fleet = PdsFleet::with_default_servers(1);
            let did = Did::plc_from_seed(b"mirror-quiet");
            fleet
                .create_account_on(
                    "pds001.host.bsky.network",
                    did.clone(),
                    Handle::parse("quiet.bsky.social").unwrap(),
                    now(),
                )
                .unwrap();
            let mut relay = Relay::default();
            relay.crawl(&fleet, now());
            let mut mirror = IncrementalRepoMirror::new();
            let mut summary = StreamSummary::default();
            mirror.sync(&mut relay, &mut fleet, now(), &mut summary);
            assert_eq!(summary.repo_full_fetches, 1);
            assert_eq!(mirror.synced_rev(&did), Some(None));
            // No commits, no rev change: the next sync is free; the first
            // commit then syncs as a full fetch (no `since` to delta from).
            mirror.sync(&mut relay, &mut fleet, now(), &mut summary);
            assert_eq!(summary.repo_full_fetches, 1);
            post_on(&mut fleet, &did, "first", now().plus_days(1));
            relay.crawl(&fleet, now().plus_days(1));
            mirror.sync(&mut relay, &mut fleet, now().plus_days(1), &mut summary);
            assert_eq!(summary.repo_full_fetches, 2);
            assert_eq!(summary.repo_delta_fetches, 0);
        }
    }

    #[test]
    fn sharded_materialize_merges_to_serial_datasets() {
        let mut config = ScenarioConfig::test_scale(9);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 5).unwrap();
        config.scale = 40_000;
        let (_, serial) = {
            let mut world = World::new(config);
            let d = Collector::new().run(&mut world);
            (world, d)
        };
        let shards = 2usize;
        let mut merged: Option<Materialize> = None;
        for index in 0..shards {
            let mut world = World::new_shard(config, index, shards);
            let mut sink = Materialize::new();
            Collector::new().stream(&mut world, &mut sink);
            merged = Some(match merged {
                None => sink,
                Some(mut acc) => {
                    Analyzer::merge(&mut acc, sink);
                    acc
                }
            });
        }
        let merged = merged.unwrap().finish(&StudyCtx::detached());
        assert_eq!(merged.user_identifiers.len(), serial.user_identifiers.len());
        assert_eq!(merged.did_web_count, serial.did_web_count);
        assert_eq!(merged.firehose_events.len(), serial.firehose_events.len());
        assert_eq!(merged.repositories.len(), serial.repositories.len());
        assert_eq!(merged.labelers.len(), serial.labelers.len());
        assert_eq!(
            merged.total_label_interactions(),
            serial.total_label_interactions()
        );
        assert_eq!(merged.feed_generators.len(), serial.feed_generators.len());
        assert_eq!(merged.total_feed_posts(), serial.total_feed_posts());
    }
}
