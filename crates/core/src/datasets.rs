//! Dataset collection (§3 of the paper), as a streaming producer.
//!
//! [`Collector::stream`] drives a [`World`] day by day and *emits* the same
//! six datasets the study gathered — through the same service interfaces —
//! as [`Observation`]s on a [`StudyEngine`] bus:
//!
//! * **User Identifier Dataset** — weekly `sync.listRepos` snapshots from the
//!   Relay during March–April 2024, one observation per newly seen DID.
//! * **DID Documents** — a full PLC-directory export plus `did:web`
//!   documents fetched over HTTPS.
//! * **Repositories Dataset** — a snapshot of every repository, downloaded as
//!   CAR archives from the Relay mirror, decoded, emitted, and dropped.
//! * **Firehose Dataset** — a continuous subscription from 2024-03-06,
//!   emitted one event at a time; the producer never retains more than one
//!   day's subscription batch.
//! * **Feed Generators / Feed Posts** — generator records discovered in the
//!   repositories, metadata via `getFeedGenerator`, posts via `getFeed`.
//! * **Labeling Services** — every labeler stream consumed from the start
//!   (including rescinded labels).
//!
//! [`Collector::run`] keeps the original batch API alive: it registers the
//! [`Materialize`] analyzer — which folds the stream back into in-memory
//! [`Datasets`] vectors — and returns its output, so existing callers and
//! golden tests are untouched.

use crate::pipeline::{Analyzer, Observation, StreamSummary, StudyCtx, StudyEngine};
use bsky_atproto::firehose::Event;
use bsky_atproto::label::Label;
use bsky_atproto::record::Record;
use bsky_atproto::repo::Repository;
use bsky_atproto::{AtUri, Datetime, Did, Nsid};
use bsky_identity::DidDocument;
use bsky_labeler::LabelerOperator;
use bsky_simnet::http::HttpResponse;
use bsky_simnet::net::HostingClass;
use bsky_workload::World;
use std::collections::BTreeSet;

/// A decoded repository snapshot.
#[derive(Debug, Clone)]
pub struct RepoSnapshot {
    /// Repository owner.
    pub did: Did,
    /// All live records: `(collection, rkey, record)`.
    pub records: Vec<(Nsid, String, Record)>,
}

/// Feed-generator dataset entry.
#[derive(Debug, Clone)]
pub struct FeedGenEntry {
    /// The generator's URI.
    pub uri: AtUri,
    /// Creator account.
    pub creator: Did,
    /// Display name.
    pub display_name: String,
    /// Description.
    pub description: String,
    /// Hosting platform name (from the service DID / world metadata).
    pub platform: String,
    /// Likes observed on the generator record.
    pub like_count: u64,
    /// Whether the crawler is a feed-generator creator account.
    pub creator_is_popular_rank: u64,
    /// Curated posts returned by `getFeed`: `(post URI, post created_at)`.
    pub posts: Vec<(AtUri, Datetime)>,
    /// Whether metadata reported the feed online & valid.
    pub online_and_valid: bool,
}

/// Labeling-service dataset entry.
#[derive(Debug, Clone)]
pub struct LabelerEntry {
    /// The labeler's account DID.
    pub did: Did,
    /// Display name.
    pub name: String,
    /// Operator class.
    pub operator: LabelerOperator,
    /// Endpoint hosting classification (from the active measurements).
    pub hosting: HostingClass,
    /// Whether the endpoint answered.
    pub functional: bool,
    /// When the labeler was announced.
    pub announced_at: Datetime,
    /// Every label interaction on its stream (including negations).
    pub labels: Vec<Label>,
}

/// The collected datasets (the batch representation).
#[derive(Debug, Clone, Default)]
pub struct Datasets {
    /// `(did, latest revision)` pairs from the weekly listRepos snapshots.
    pub user_identifiers: Vec<(Did, Option<String>)>,
    /// DID documents from the PLC export and did:web fetches.
    pub did_documents: Vec<DidDocument>,
    /// Number of did:web documents among them.
    pub did_web_count: usize,
    /// Decoded repository snapshots.
    pub repositories: Vec<RepoSnapshot>,
    /// Firehose events observed since the collection start.
    pub firehose_events: Vec<Event>,
    /// Feed-generator dataset.
    pub feed_generators: Vec<FeedGenEntry>,
    /// Labeling-services dataset.
    pub labelers: Vec<LabelerEntry>,
    /// When continuous firehose collection started.
    pub firehose_collection_start: Datetime,
    /// When collection ended.
    pub collection_end: Datetime,
}

/// Drives a [`World`] and emits the datasets as observations.
#[derive(Debug, Default)]
pub struct Collector {
    firehose_cursor: u64,
    seen_identifiers: BTreeSet<String>,
    identifier_order: Vec<Did>,
}

impl Collector {
    /// Create a collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Run the world to its end date while streaming every observation to
    /// the engine's analyzers, then emit the final snapshots. One pass;
    /// nothing is retained here beyond per-DID dedup state.
    pub fn stream(&mut self, world: &mut World, engine: &mut StudyEngine) -> StreamSummary {
        // Each stream is a complete, independent collection: reset the
        // per-run producer state so a reused collector starts fresh.
        self.firehose_cursor = 0;
        self.seen_identifiers.clear();
        self.identifier_order.clear();
        let mut summary = StreamSummary::default();
        // The engine counts observations for its whole lifetime; report only
        // this stream's share so reusing an engine across windows stays
        // accurate.
        let observations_before = engine.observations();
        let firehose_start = world.config.firehose_collection_start;
        let collection_end = world.config.end;
        engine.observe(
            &Observation::WindowStart {
                firehose_collection_start: firehose_start,
                collection_end,
            },
            &StudyCtx::new(world),
        );
        let mut last_listrepos: Option<Datetime> = None;
        while !world.finished() {
            world.step_day();
            summary.days += 1;
            let today = world.today;
            engine.observe(
                &Observation::DayBoundary { day: today },
                &StudyCtx::new(world),
            );
            // Continuous firehose subscription from the configured start.
            if today >= firehose_start {
                let sub = world.relay.subscribe(self.firehose_cursor);
                self.firehose_cursor = sub.cursor;
                // The first read also returns the retained backlog from
                // before the subscription started; the study only counts
                // events from the collection start onwards.
                let ctx = StudyCtx::new(world);
                summary.peak_in_flight_events = summary.peak_in_flight_events.max(sub.events.len());
                for event in sub.events.iter().filter(|e| e.time >= firehose_start) {
                    summary.firehose_events += 1;
                    engine.observe(&Observation::Firehose(event), &ctx);
                }
                // Weekly listRepos snapshots during the collection window.
                let due = match last_listrepos {
                    None => true,
                    Some(prev) => today.days_since(prev) >= 7,
                };
                if due {
                    self.snapshot_user_identifiers(world, engine);
                    last_listrepos = Some(today);
                    summary.listrepos_snapshots += 1;
                }
            }
        }
        // Final snapshots at the end of the window.
        self.snapshot_user_identifiers(world, engine);
        self.snapshot_did_documents(world, engine);
        self.snapshot_labelers(world, engine);
        self.snapshot_feed_generators(world, engine);
        self.snapshot_repositories(world, engine);
        engine.observe(
            &Observation::WindowEnd { at: collection_end },
            &StudyCtx::new(world),
        );
        summary.observations = engine.observations() - observations_before;
        summary
    }

    /// Batch compatibility: stream into a [`Materialize`] analyzer and
    /// return the in-memory datasets (the seed pipeline's representation).
    pub fn run(&mut self, world: &mut World) -> Datasets {
        let mut engine = StudyEngine::new();
        engine.register(Materialize::new());
        self.stream(world, &mut engine);
        let ctx = StudyCtx::new(world);
        engine
            .finish(&ctx)
            .take::<Datasets>()
            .expect("Materialize produces Datasets")
    }

    fn snapshot_user_identifiers(&mut self, world: &mut World, engine: &mut StudyEngine) {
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = world.relay.list_repos(cursor.as_deref(), 500);
            for (did, rev) in page {
                if self.seen_identifiers.insert(did.to_string()) {
                    self.identifier_order.push(did.clone());
                    let rev = rev.map(|t| t.to_string());
                    engine.observe(
                        &Observation::UserIdentifier {
                            did: &did,
                            rev: rev.as_deref(),
                        },
                        &StudyCtx::new(world),
                    );
                }
            }
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
    }

    fn snapshot_did_documents(&mut self, world: &mut World, engine: &mut StudyEngine) {
        // Full PLC export (paginated).
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = world.plc.export(cursor.as_deref(), 1_000);
            for doc in page {
                engine.observe(
                    &Observation::DidDocument {
                        doc,
                        via_web: false,
                    },
                    &StudyCtx::new(world),
                );
            }
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        // did:web documents: fetch /.well-known/did.json for did:web users.
        for index in 0..world.users.len() {
            let Some(domain) = world.users[index].did.web_domain() else {
                continue;
            };
            let url = format!("https://{domain}/.well-known/did.json");
            if let HttpResponse::Ok(body) = world.web.get(&url) {
                if let Ok(doc) = DidDocument::from_wire(&body) {
                    engine.observe(
                        &Observation::DidDocument {
                            doc: &doc,
                            via_web: true,
                        },
                        &StudyCtx::new(world),
                    );
                }
            }
        }
    }

    fn snapshot_repositories(&self, world: &mut World, engine: &mut StudyEngine) {
        let end = world.config.end;
        for did in &self.identifier_order {
            let car = match world.relay.get_repo(did, &mut world.fleet, end) {
                Ok(car) => car,
                Err(_) => continue, // deleted / migrated away mid-snapshot
            };
            let Ok((_roots, blocks)) = Repository::parse_car(&car) else {
                continue;
            };
            // Decode every block that parses as a known or unknown record.
            let mut records = Vec::new();
            for bytes in blocks.values() {
                if let Ok(record) = Record::from_cbor(bytes) {
                    let collection = record.collection();
                    records.push((collection, String::new(), record));
                }
            }
            let snapshot = RepoSnapshot {
                did: did.clone(),
                records,
            };
            engine.observe(&Observation::Repo(&snapshot), &StudyCtx::new(world));
        }
    }

    fn snapshot_feed_generators(&mut self, world: &mut World, engine: &mut StudyEngine) {
        for index in 0..world.feedgens.len() {
            let info = &world.feedgen_info[index];
            let platform = info.platform_name.clone();
            let creator_is_popular_rank = info.plan.creator_popularity_rank;
            let generator = &mut world.feedgens[index];
            let view = world.appview.get_feed_generator(generator);
            // Crawl the feed with an "empty" viewer account, as the study did.
            let posts: Vec<(AtUri, Datetime)> = world
                .appview
                .get_feed(generator, 1_000, None)
                .into_iter()
                .map(|p| (p.uri.clone(), p.record.created_at))
                .collect();
            let entry = FeedGenEntry {
                uri: view.uri,
                creator: view.creator,
                display_name: view.display_name,
                description: view.description,
                platform,
                like_count: view.like_count,
                creator_is_popular_rank,
                posts,
                online_and_valid: view.is_online && view.is_valid,
            };
            engine.observe(&Observation::FeedGenerator(&entry), &StudyCtx::new(world));
        }
    }

    fn snapshot_labelers(&mut self, world: &mut World, engine: &mut StudyEngine) {
        for index in 0..world.labelers.all().len() {
            let entry = {
                let labeler = &world.labelers.all()[index];
                let (labels, _) = labeler.subscribe_labels(0);
                LabelerEntry {
                    did: labeler.did().clone(),
                    name: labeler.display_name().to_string(),
                    operator: labeler.operator(),
                    hosting: labeler.hosting(),
                    functional: labeler.is_functional(),
                    announced_at: labeler.announced_at(),
                    labels: labels.to_vec(),
                }
            };
            engine.observe(&Observation::Labeler(&entry), &StudyCtx::new(world));
        }
    }
}

/// The optional materializing analyzer: folds the observation stream back
/// into the batch [`Datasets`] vectors. Register it when the in-memory
/// representation is actually needed (compatibility, golden tests); leave it
/// out for bounded-memory runs.
///
/// Observations are borrowed from the producer, so materializing clones each
/// firehose event and repository snapshot — the batch path pays one extra
/// deep copy of the two largest datasets relative to the pre-streaming
/// collector. That cost is confined to this analyzer by design; the
/// streaming path copies nothing.
#[derive(Debug, Default)]
pub struct Materialize {
    datasets: Datasets,
}

impl Materialize {
    /// A materializer with empty datasets.
    pub fn new() -> Materialize {
        Materialize::default()
    }
}

impl Analyzer for Materialize {
    type Output = Datasets;

    fn observe(&mut self, obs: &Observation<'_>, _ctx: &StudyCtx<'_>) {
        match obs {
            Observation::WindowStart {
                firehose_collection_start,
                collection_end,
            } => {
                self.datasets.firehose_collection_start = *firehose_collection_start;
                self.datasets.collection_end = *collection_end;
            }
            Observation::DayBoundary { .. } => {}
            Observation::Firehose(event) => {
                self.datasets.firehose_events.push((*event).clone());
            }
            Observation::UserIdentifier { did, rev } => {
                self.datasets
                    .user_identifiers
                    .push(((*did).clone(), rev.map(str::to_string)));
            }
            Observation::DidDocument { doc, via_web } => {
                self.datasets.did_documents.push((*doc).clone());
                if *via_web {
                    self.datasets.did_web_count += 1;
                }
            }
            Observation::Labeler(entry) => {
                self.datasets.labelers.push((*entry).clone());
            }
            Observation::FeedGenerator(entry) => {
                self.datasets.feed_generators.push((*entry).clone());
            }
            Observation::Repo(snapshot) => {
                self.datasets.repositories.push((*snapshot).clone());
            }
            Observation::WindowEnd { .. } => {}
        }
    }

    fn finish(self, _ctx: &StudyCtx<'_>) -> Datasets {
        self.datasets
    }
}

impl Datasets {
    /// Total number of label interactions collected (including negations).
    pub fn total_label_interactions(&self) -> usize {
        self.labelers.iter().map(|l| l.labels.len()).sum()
    }

    /// Total number of feed posts collected.
    pub fn total_feed_posts(&self) -> usize {
        self.feed_generators.iter().map(|f| f.posts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_workload::ScenarioConfig;

    fn collected() -> (World, Datasets) {
        let mut config = ScenarioConfig::test_scale(5);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.firehose_collection_start = Datetime::from_ymd(2024, 3, 6).unwrap();
        config.scale = 40_000;
        let mut world = World::new(config);
        let datasets = Collector::new().run(&mut world);
        (world, datasets)
    }

    #[test]
    fn collector_gathers_all_datasets() {
        let (world, datasets) = collected();
        assert!(!datasets.user_identifiers.is_empty());
        assert!(!datasets.did_documents.is_empty());
        assert!(!datasets.repositories.is_empty());
        assert!(!datasets.firehose_events.is_empty());
        assert!(!datasets.feed_generators.is_empty());
        assert!(!datasets.labelers.is_empty());
        // Identifiers are unique.
        let mut dids: Vec<String> = datasets
            .user_identifiers
            .iter()
            .map(|(d, _)| d.to_string())
            .collect();
        let before = dids.len();
        dids.sort();
        dids.dedup();
        assert_eq!(dids.len(), before);
        // Firehose events all postdate the collection start.
        assert!(datasets
            .firehose_events
            .iter()
            .all(|e| e.time >= datasets.firehose_collection_start));
        // Every repository snapshot decoded at least one record.
        assert!(datasets.repositories.iter().any(|r| !r.records.is_empty()));
        // Label interactions were observed.
        assert!(datasets.total_label_interactions() > 0);
        // The world is still usable afterwards.
        assert!(world.finished());
    }

    #[test]
    fn repositories_cover_most_identifiers() {
        let (_, datasets) = collected();
        let ratio = datasets.repositories.len() as f64 / datasets.user_identifiers.len() as f64;
        assert!(ratio > 0.9, "repo coverage {ratio}");
    }

    #[test]
    fn collector_can_be_reused_across_worlds() {
        let mut config = ScenarioConfig::test_scale(5);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.scale = 40_000;
        let mut collector = Collector::new();
        let first = collector.run(&mut World::new(config));
        let second = collector.run(&mut World::new(config));
        // Per-run producer state resets, so the second collection sees the
        // same world from scratch instead of deduplicating against run one.
        assert_eq!(first.user_identifiers.len(), second.user_identifiers.len());
        assert_eq!(first.repositories.len(), second.repositories.len());
        assert!(!second.user_identifiers.is_empty());
    }

    #[test]
    fn stream_summary_reports_bounded_inflight() {
        let mut config = ScenarioConfig::test_scale(5);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.scale = 40_000;
        let mut world = World::new(config);
        let mut engine = StudyEngine::new();
        engine.register(Materialize::new());
        let summary = Collector::new().stream(&mut world, &mut engine);
        let ctx = StudyCtx::new(&world);
        let datasets = engine.finish(&ctx).take::<Datasets>().unwrap();
        assert_eq!(
            summary.firehose_events as usize,
            datasets.firehose_events.len()
        );
        assert!(summary.peak_in_flight_events > 0);
        // The producer never holds more than one day's batch, which is far
        // smaller than the full firehose dataset the batch path retains.
        assert!(summary.peak_in_flight_events < datasets.firehose_events.len());
        assert!(summary.observations > summary.firehose_events);
        assert!(summary.days > 0);
        assert!(summary.render().contains("in flight"));
    }
}
