//! Dataset collection (§3 of the paper).
//!
//! The collector drives a [`World`] day by day and gathers the same six
//! datasets the study gathered, through the same service interfaces:
//!
//! * **User Identifier Dataset** — weekly `sync.listRepos` snapshots from the
//!   Relay during March–April 2024.
//! * **DID Documents** — a full PLC-directory export plus `did:web`
//!   documents fetched over HTTPS.
//! * **Repositories Dataset** — a snapshot of every repository, downloaded as
//!   CAR archives from the Relay mirror and decoded.
//! * **Firehose Dataset** — a continuous subscription from 2024-03-06.
//! * **Feed Generators / Feed Posts** — generator records discovered in the
//!   repositories, metadata via `getFeedGenerator`, posts via `getFeed`.
//! * **Labeling Services** — every labeler stream consumed from the start
//!   (including rescinded labels).

use bsky_atproto::firehose::Event;
use bsky_atproto::label::Label;
use bsky_atproto::record::Record;
use bsky_atproto::repo::Repository;
use bsky_atproto::{AtUri, Datetime, Did, Nsid};
use bsky_identity::DidDocument;
use bsky_labeler::LabelerOperator;
use bsky_simnet::http::HttpResponse;
use bsky_simnet::net::HostingClass;
use bsky_workload::World;

/// A decoded repository snapshot.
#[derive(Debug, Clone)]
pub struct RepoSnapshot {
    /// Repository owner.
    pub did: Did,
    /// All live records: `(collection, rkey, record)`.
    pub records: Vec<(Nsid, String, Record)>,
}

/// Feed-generator dataset entry.
#[derive(Debug, Clone)]
pub struct FeedGenEntry {
    /// The generator's URI.
    pub uri: AtUri,
    /// Creator account.
    pub creator: Did,
    /// Display name.
    pub display_name: String,
    /// Description.
    pub description: String,
    /// Hosting platform name (from the service DID / world metadata).
    pub platform: String,
    /// Likes observed on the generator record.
    pub like_count: u64,
    /// Whether the crawler is a feed-generator creator account.
    pub creator_is_popular_rank: u64,
    /// Curated posts returned by `getFeed`: `(post URI, post created_at)`.
    pub posts: Vec<(AtUri, Datetime)>,
    /// Whether metadata reported the feed online & valid.
    pub online_and_valid: bool,
}

/// Labeling-service dataset entry.
#[derive(Debug, Clone)]
pub struct LabelerEntry {
    /// The labeler's account DID.
    pub did: Did,
    /// Display name.
    pub name: String,
    /// Operator class.
    pub operator: LabelerOperator,
    /// Endpoint hosting classification (from the active measurements).
    pub hosting: HostingClass,
    /// Whether the endpoint answered.
    pub functional: bool,
    /// When the labeler was announced.
    pub announced_at: Datetime,
    /// Every label interaction on its stream (including negations).
    pub labels: Vec<Label>,
}

/// The collected datasets.
#[derive(Debug, Clone, Default)]
pub struct Datasets {
    /// `(did, latest revision)` pairs from the weekly listRepos snapshots.
    pub user_identifiers: Vec<(Did, Option<String>)>,
    /// DID documents from the PLC export and did:web fetches.
    pub did_documents: Vec<DidDocument>,
    /// Number of did:web documents among them.
    pub did_web_count: usize,
    /// Decoded repository snapshots.
    pub repositories: Vec<RepoSnapshot>,
    /// Firehose events observed since the collection start.
    pub firehose_events: Vec<Event>,
    /// Feed-generator dataset.
    pub feed_generators: Vec<FeedGenEntry>,
    /// Labeling-services dataset.
    pub labelers: Vec<LabelerEntry>,
    /// When continuous firehose collection started.
    pub firehose_collection_start: Datetime,
    /// When collection ended.
    pub collection_end: Datetime,
}

/// Drives a [`World`] and collects the datasets.
#[derive(Debug, Default)]
pub struct Collector {
    firehose_cursor: u64,
    listrepos_snapshots: u32,
}

impl Collector {
    /// Create a collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Run the world to its end date while collecting, then take the final
    /// snapshots. Returns the datasets.
    pub fn run(&mut self, world: &mut World) -> Datasets {
        let mut datasets = Datasets {
            firehose_collection_start: world.config.firehose_collection_start,
            collection_end: world.config.end,
            ..Datasets::default()
        };
        let mut last_listrepos: Option<Datetime> = None;
        while !world.finished() {
            world.step_day();
            let today = world.today;
            // Continuous firehose subscription from the configured start.
            if today >= world.config.firehose_collection_start {
                let sub = world.relay.subscribe(self.firehose_cursor);
                self.firehose_cursor = sub.cursor;
                // The first read also returns the retained backlog from
                // before the subscription started; the study only counts
                // events from the collection start onwards.
                datasets.firehose_events.extend(
                    sub.events
                        .into_iter()
                        .filter(|e| e.time >= world.config.firehose_collection_start),
                );
                // Weekly listRepos snapshots during the collection window.
                let due = match last_listrepos {
                    None => true,
                    Some(prev) => today.days_since(prev) >= 7,
                };
                if due {
                    self.snapshot_user_identifiers(world, &mut datasets);
                    last_listrepos = Some(today);
                    self.listrepos_snapshots += 1;
                }
            }
        }
        // Final snapshots at the end of the window.
        self.snapshot_user_identifiers(world, &mut datasets);
        self.snapshot_did_documents(world, &mut datasets);
        self.snapshot_repositories(world, &mut datasets);
        self.snapshot_feed_generators(world, &mut datasets);
        self.snapshot_labelers(world, &mut datasets);
        datasets
    }

    fn snapshot_user_identifiers(&mut self, world: &mut World, datasets: &mut Datasets) {
        let mut cursor: Option<String> = None;
        let mut seen: std::collections::BTreeSet<String> = datasets
            .user_identifiers
            .iter()
            .map(|(did, _)| did.to_string())
            .collect();
        loop {
            let (page, next) = world.relay.list_repos(cursor.as_deref(), 500);
            for (did, rev) in page {
                if seen.insert(did.to_string()) {
                    datasets
                        .user_identifiers
                        .push((did, rev.map(|t| t.to_string())));
                }
            }
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
    }

    fn snapshot_did_documents(&mut self, world: &mut World, datasets: &mut Datasets) {
        // Full PLC export (paginated).
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = world.plc.export(cursor.as_deref(), 1_000);
            datasets.did_documents.extend(page.into_iter().cloned());
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        // did:web documents: fetch /.well-known/did.json for did:web users.
        for user in &world.users {
            if let Some(domain) = user.did.web_domain() {
                let url = format!("https://{domain}/.well-known/did.json");
                if let HttpResponse::Ok(body) = world.web.get(&url) {
                    if let Ok(doc) = DidDocument::from_wire(&body) {
                        datasets.did_documents.push(doc);
                        datasets.did_web_count += 1;
                    }
                }
            }
        }
    }

    fn snapshot_repositories(&mut self, world: &mut World, datasets: &mut Datasets) {
        let dids: Vec<Did> = datasets
            .user_identifiers
            .iter()
            .map(|(did, _)| did.clone())
            .collect();
        let end = world.config.end;
        for did in dids {
            let car = match world.relay.get_repo(&did, &mut world.fleet, end) {
                Ok(car) => car,
                Err(_) => continue, // deleted / migrated away mid-snapshot
            };
            let Ok((_roots, blocks)) = Repository::parse_car(&car) else {
                continue;
            };
            // Decode every block that parses as a known or unknown record.
            let mut records = Vec::new();
            for bytes in blocks.values() {
                if let Ok(record) = Record::from_cbor(bytes) {
                    let collection = record.collection();
                    records.push((collection, String::new(), record));
                }
            }
            datasets.repositories.push(RepoSnapshot { did, records });
        }
    }

    fn snapshot_feed_generators(&mut self, world: &mut World, datasets: &mut Datasets) {
        for (index, info) in world.feedgen_info.iter().enumerate() {
            let generator = &mut world.feedgens[index];
            let view = world.appview.get_feed_generator(generator);
            // Crawl the feed with an "empty" viewer account, as the study did.
            let posts: Vec<(AtUri, Datetime)> = world
                .appview
                .get_feed(generator, 1_000, None)
                .into_iter()
                .map(|p| (p.uri.clone(), p.record.created_at))
                .collect();
            datasets.feed_generators.push(FeedGenEntry {
                uri: view.uri,
                creator: view.creator,
                display_name: view.display_name,
                description: view.description,
                platform: info.platform_name.clone(),
                like_count: view.like_count,
                creator_is_popular_rank: info.plan.creator_popularity_rank,
                posts,
                online_and_valid: view.is_online && view.is_valid,
            });
        }
    }

    fn snapshot_labelers(&mut self, world: &mut World, datasets: &mut Datasets) {
        for labeler in world.labelers.all() {
            let (labels, _) = labeler.subscribe_labels(0);
            datasets.labelers.push(LabelerEntry {
                did: labeler.did().clone(),
                name: labeler.display_name().to_string(),
                operator: labeler.operator(),
                hosting: labeler.hosting(),
                functional: labeler.is_functional(),
                announced_at: labeler.announced_at(),
                labels: labels.to_vec(),
            });
        }
    }
}

impl Datasets {
    /// Total number of label interactions collected (including negations).
    pub fn total_label_interactions(&self) -> usize {
        self.labelers.iter().map(|l| l.labels.len()).sum()
    }

    /// Total number of feed posts collected.
    pub fn total_feed_posts(&self) -> usize {
        self.feed_generators.iter().map(|f| f.posts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_workload::ScenarioConfig;

    fn collected() -> (World, Datasets) {
        let mut config = ScenarioConfig::test_scale(5);
        config.start = Datetime::from_ymd(2024, 2, 20).unwrap();
        config.end = Datetime::from_ymd(2024, 4, 20).unwrap();
        config.firehose_collection_start = Datetime::from_ymd(2024, 3, 6).unwrap();
        config.scale = 40_000;
        let mut world = World::new(config);
        let datasets = Collector::new().run(&mut world);
        (world, datasets)
    }

    #[test]
    fn collector_gathers_all_datasets() {
        let (world, datasets) = collected();
        assert!(!datasets.user_identifiers.is_empty());
        assert!(!datasets.did_documents.is_empty());
        assert!(!datasets.repositories.is_empty());
        assert!(!datasets.firehose_events.is_empty());
        assert!(!datasets.feed_generators.is_empty());
        assert!(!datasets.labelers.is_empty());
        // Identifiers are unique.
        let mut dids: Vec<String> = datasets
            .user_identifiers
            .iter()
            .map(|(d, _)| d.to_string())
            .collect();
        let before = dids.len();
        dids.sort();
        dids.dedup();
        assert_eq!(dids.len(), before);
        // Firehose events all postdate the collection start.
        assert!(datasets
            .firehose_events
            .iter()
            .all(|e| e.time >= datasets.firehose_collection_start));
        // Every repository snapshot decoded at least one record.
        assert!(datasets.repositories.iter().any(|r| !r.records.is_empty()));
        // Label interactions were observed.
        assert!(datasets.total_label_interactions() > 0);
        // The world is still usable afterwards.
        assert!(world.finished());
    }

    #[test]
    fn repositories_cover_most_identifiers() {
        let (_, datasets) = collected();
        let ratio = datasets.repositories.len() as f64 / datasets.user_identifiers.len() as f64;
        assert!(ratio > 0.9, "repo coverage {ratio}");
    }
}
