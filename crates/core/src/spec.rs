//! [`RunSpec`]: one declarative description of a study run.
//!
//! Every knob the pipeline understands — scenario seed/scale (or a whole
//! seed × scale grid), engine shards and worker threads, repository
//! [`SnapshotMode`], block-store backend, AppView entity shards and the
//! write-back cache, wire [`FramingPolicy`], fault injection and retry
//! policies — lives in one builder. The entry points
//! ([`crate::report::StudyReport::run`],
//! [`crate::report::StudyReport::run_serial`],
//! [`crate::report::StudyReport::run_batch`],
//! [`crate::shard::collect_sharded`], [`crate::report::StudyBatch`]) all
//! take a `&RunSpec`, so a new knob is one field + one builder method —
//! never a new suffix-combinated function variant.
//!
//! [`RunSpec::validate`] centralizes the cross-knob conflict rules the
//! repro CLI used to scatter across `parse_args` (grid runs exclude
//! scenarios, paged stores, framing mitigations, sharding and AppView
//! sharding; `jobs <= shards`; positive scales). The CLI maps a
//! `validate()` error to exit code 2; library callers get the same checks
//! for free.

use crate::datasets::SnapshotMode;
use bsky_atproto::blockstore::StoreConfig;
use bsky_atproto::framing::FramingPolicy;
use bsky_simnet::faults::{FaultSpec, RetryPolicy, TimeoutClass};
use bsky_workload::ScenarioConfig;

/// A full, validated-on-demand description of one study run (or one grid
/// of runs). Construct with [`RunSpec::new`], refine with the builder
/// methods, hand to an entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The base scenario (seed, dates, scale, mix). Grid runs override
    /// `seed`/`scale` per cell from [`RunSpec::seeds`]/[`RunSpec::scales`].
    pub config: ScenarioConfig,
    /// Grid seeds; empty means a single run at `config.seed`.
    pub seeds: Vec<u64>,
    /// Grid scales; empty means a single run at `config.scale`.
    pub scales: Vec<u64>,
    /// Engine shards: the population is partitioned by DID hash into this
    /// many independently simulated shards.
    pub shards: usize,
    /// Worker threads simulating shards concurrently (`1..=shards`).
    /// `None` (the default, repro `--jobs auto`) resolves to
    /// [`std::thread::available_parallelism`] clamped to the shard count —
    /// see [`RunSpec::effective_jobs`].
    pub jobs: Option<usize>,
    /// Decouple each shard's producer from its analyzers: the producer
    /// pushes owned observation batches into a bounded channel while
    /// [`RunSpec::analyzer_threads`] workers fold disjoint subsets of the
    /// analyzer set (repro `--pipeline`). Observationally transparent —
    /// reports are byte-identical either way.
    pub pipeline: bool,
    /// Analyzer worker threads per shard when [`RunSpec::pipeline`] is on
    /// (clamped to the sink's fan-out part count at run time; inert when
    /// the pipeline is off).
    pub analyzer_threads: usize,
    /// Repository snapshot strategy for the §3 dataset.
    pub snapshots: SnapshotMode,
    /// Block-store backend for every repository, relay mirror, producer
    /// mirror and AppView entity store.
    pub store: StoreConfig,
    /// AppView entity-shard count per engine shard.
    pub appview_shards: usize,
    /// Relay tiers: `1` (the default) runs the classic single relay; `N > 1`
    /// runs a federated hierarchy of N regional relays forwarding into one
    /// super-relay with cross-relay dedup (repro `--relays N`). Federated
    /// runs are byte-identical to single-relay runs by construction — see
    /// `bsky_relay::federation`.
    pub relays: usize,
    /// Wrap the AppView's entity stores in a write-back cache (repro
    /// `--writeback on|off`; on by default). Observationally transparent —
    /// reports are byte-identical either way.
    pub write_back: bool,
    /// Wire framing policy (padding / batching mitigations, §10).
    pub framing: FramingPolicy,
    /// Fault injection spec (quiet by default).
    pub faults: FaultSpec,
    /// Scenario label for the report's fault-impact section (`None` renders
    /// a non-quiet custom spec as `custom`).
    pub scenario: Option<String>,
    /// Per-timeout-class retry policies for the producer's fetch/DNS paths
    /// (empty keeps the defaults).
    pub retries: Vec<(TimeoutClass, RetryPolicy)>,
}

impl RunSpec {
    /// A single serial run of `config` with every default: one shard, auto
    /// jobs (which one shard clamps to one worker), incremental snapshots,
    /// in-memory store, monolithic AppView with the write-back cache on,
    /// no intra-shard pipeline, unmitigated wire, quiet faults.
    pub fn new(config: ScenarioConfig) -> RunSpec {
        RunSpec {
            config,
            seeds: Vec::new(),
            scales: Vec::new(),
            shards: 1,
            jobs: None,
            pipeline: false,
            analyzer_threads: 2,
            snapshots: SnapshotMode::default(),
            store: StoreConfig::default(),
            appview_shards: 1,
            relays: 1,
            write_back: true,
            framing: FramingPolicy::default(),
            faults: FaultSpec::default(),
            scenario: None,
            retries: Vec::new(),
        }
    }

    /// Run a grid over these seeds (with [`RunSpec::scales`], the full
    /// cross product).
    pub fn seeds(mut self, seeds: Vec<u64>) -> RunSpec {
        self.seeds = seeds;
        self
    }

    /// Run a grid over these scales.
    pub fn scales(mut self, scales: Vec<u64>) -> RunSpec {
        self.scales = scales;
        self
    }

    /// Partition the population into `shards` engine shards.
    pub fn shards(mut self, shards: usize) -> RunSpec {
        self.shards = shards;
        self
    }

    /// Simulate up to `jobs` shards concurrently.
    pub fn jobs(mut self, jobs: usize) -> RunSpec {
        self.jobs = Some(jobs);
        self
    }

    /// Resolve the worker-thread count automatically (the default):
    /// [`std::thread::available_parallelism`] clamped to the shard count.
    pub fn jobs_auto(mut self) -> RunSpec {
        self.jobs = None;
        self
    }

    /// Toggle the intra-shard producer/analyzer pipeline.
    pub fn pipeline(mut self, pipeline: bool) -> RunSpec {
        self.pipeline = pipeline;
        self
    }

    /// Set the analyzer worker-thread count used when the pipeline is on.
    pub fn analyzer_threads(mut self, threads: usize) -> RunSpec {
        self.analyzer_threads = threads;
        self
    }

    /// The worker-thread count this spec resolves to: the explicit
    /// [`RunSpec::jobs`] value, or — for auto — the machine's
    /// [`std::thread::available_parallelism`] clamped to
    /// [`RunSpec::shards`] (at least 1).
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            Some(jobs) => jobs,
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, self.shards.max(1)),
        }
    }

    /// Select the repository snapshot strategy.
    pub fn snapshots(mut self, mode: SnapshotMode) -> RunSpec {
        self.snapshots = mode;
        self
    }

    /// Select the block-store backend.
    pub fn store(mut self, store: StoreConfig) -> RunSpec {
        self.store = store;
        self
    }

    /// Select the AppView entity-shard count.
    pub fn appview_shards(mut self, shards: usize) -> RunSpec {
        self.appview_shards = shards;
        self
    }

    /// Select the relay topology: `1` for the classic single relay, `N > 1`
    /// for N regional relays federated under one super-relay.
    pub fn relays(mut self, relays: usize) -> RunSpec {
        self.relays = relays;
        self
    }

    /// Whether this spec runs the federated (multi-tier) relay topology.
    pub fn federation(&self) -> bool {
        self.relays > 1
    }

    /// Toggle the AppView write-back cache.
    pub fn write_back(mut self, write_back: bool) -> RunSpec {
        self.write_back = write_back;
        self
    }

    /// Select the wire framing policy.
    pub fn framing(mut self, framing: FramingPolicy) -> RunSpec {
        self.framing = framing;
        self
    }

    /// Inject faults (optionally labelled via [`RunSpec::scenario`]).
    pub fn faults(mut self, faults: FaultSpec) -> RunSpec {
        self.faults = faults;
        self
    }

    /// Label the fault spec for the report's scenario-impact section.
    pub fn scenario(mut self, name: impl Into<String>) -> RunSpec {
        self.scenario = Some(name.into());
        self
    }

    /// Override the retry policy for one timeout class.
    pub fn retry(mut self, class: TimeoutClass, policy: RetryPolicy) -> RunSpec {
        self.retries.push((class, policy));
        self
    }

    /// Whether this spec describes a seed × scale grid rather than a single
    /// run.
    pub fn is_grid(&self) -> bool {
        !self.seeds.is_empty() || !self.scales.is_empty()
    }

    /// The grid cells this spec expands to: `seeds × scales` over the base
    /// config (the base's own seed/scale fill in an empty axis).
    pub fn grid_configs(&self) -> Vec<ScenarioConfig> {
        let seeds = if self.seeds.is_empty() {
            vec![self.config.seed]
        } else {
            self.seeds.clone()
        };
        let scales = if self.scales.is_empty() {
            vec![self.config.scale]
        } else {
            self.scales.clone()
        };
        let mut configs = Vec::with_capacity(seeds.len() * scales.len());
        for &seed in &seeds {
            for &scale in &scales {
                configs.push(ScenarioConfig {
                    seed,
                    scale,
                    ..self.config
                });
            }
        }
        configs
    }

    /// Check every cross-knob conflict rule. The repro CLI maps an error to
    /// exit code 2 (the messages name the CLI flags); library callers get
    /// the identical rules. Entry points assert a valid spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.config.scale == 0 {
            return Err("--scale must be positive".into());
        }
        if self.scales.contains(&0) {
            return Err("--scales entries must be positive".into());
        }
        if self.jobs == Some(0) {
            return Err("--jobs must be at least 1 (or auto)".into());
        }
        if self.shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        if let Some(jobs) = self.jobs {
            if jobs > self.shards {
                return Err(format!(
                    "--jobs ({}) exceeds the shard count ({}); use --shards {} or fewer jobs",
                    jobs, self.shards, jobs
                ));
            }
        }
        if self.analyzer_threads == 0 {
            return Err("--analyzer-threads must be at least 1".into());
        }
        if self.analyzer_threads > 8 {
            return Err(format!(
                "--analyzer-threads ({}) exceeds the analyzer fan-out limit (8)",
                self.analyzer_threads
            ));
        }
        if self.appview_shards == 0 {
            return Err("--appview-shards must be at least 1".into());
        }
        if self.relays == 0 {
            return Err("--relays must be at least 1".into());
        }
        if self.is_grid() {
            // Grid runs sweep seed × scale through the plain streaming
            // engine; every other knob must stay at its default.
            if self.appview_shards > 1 {
                return Err("--appview-shards cannot be combined with --seeds/--scales".into());
            }
            if self.relays > 1 {
                return Err("--relays cannot be combined with --seeds/--scales".into());
            }
            if self.snapshots != SnapshotMode::default() {
                return Err("--full-snapshots cannot be combined with --seeds/--scales".into());
            }
            if self.shards > 1 || self.jobs.unwrap_or(1) > 1 {
                return Err("--jobs/--shards cannot be combined with --seeds/--scales".into());
            }
            if self.pipeline {
                return Err("--pipeline cannot be combined with --seeds/--scales".into());
            }
            if !self.write_back {
                return Err("--writeback off cannot be combined with --seeds/--scales".into());
            }
            if self.store != StoreConfig::mem() {
                return Err("--store paged cannot be combined with --seeds/--scales".into());
            }
            if self.framing.is_mitigating() {
                return Err(
                    "--padding/--batch-window cannot be combined with --seeds/--scales".into(),
                );
            }
            if !self.faults.is_quiet() {
                return Err("--scenario/--faults cannot be combined with --seeds/--scales".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RunSpec {
        RunSpec::new(ScenarioConfig::test_scale(7))
    }

    #[test]
    fn defaults_are_valid_and_serial() {
        let spec = base();
        assert!(spec.validate().is_ok());
        assert!(!spec.is_grid());
        assert_eq!(spec.shards, 1);
        assert_eq!(spec.jobs, None);
        // Auto jobs clamp to the shard count, so the default stays serial.
        assert_eq!(spec.effective_jobs(), 1);
        assert!(!spec.pipeline);
        assert!(spec.write_back);
        assert!(spec.faults.is_quiet());
    }

    #[test]
    fn auto_jobs_resolve_to_available_parallelism_clamped_to_shards() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let spec = base().shards(4);
        assert_eq!(spec.effective_jobs(), cores.clamp(1, 4));
        // An explicit value always wins over auto resolution.
        assert_eq!(base().shards(4).jobs(2).effective_jobs(), 2);
        assert_eq!(base().shards(4).jobs(2).jobs_auto().jobs, None);
        // Auto never resolves above the shard count or below one worker.
        let wide = base().shards(1024);
        assert_eq!(wide.effective_jobs(), cores.clamp(1, 1024));
        assert!(base().effective_jobs() >= 1);
    }

    #[test]
    fn pipeline_knobs_are_validated() {
        assert!(base().pipeline(true).validate().is_ok());
        assert!(base().pipeline(true).analyzer_threads(8).validate().is_ok());
        let err = base().analyzer_threads(0).validate().unwrap_err();
        assert!(err.contains("--analyzer-threads"), "{err}");
        let err = base()
            .pipeline(true)
            .analyzer_threads(9)
            .validate()
            .unwrap_err();
        assert!(err.contains("fan-out limit"), "{err}");
        // Pipelined sharded runs are a supported combination.
        assert!(base()
            .shards(4)
            .jobs(4)
            .pipeline(true)
            .analyzer_threads(2)
            .validate()
            .is_ok());
    }

    #[test]
    fn grid_expansion_is_seed_major() {
        let spec = base().seeds(vec![1, 2]).scales(vec![40_000, 80_000]);
        assert!(spec.is_grid());
        let cells = spec.grid_configs();
        assert_eq!(cells.len(), 4);
        assert_eq!((cells[0].seed, cells[0].scale), (1, 40_000));
        assert_eq!((cells[1].seed, cells[1].scale), (1, 80_000));
        assert_eq!((cells[3].seed, cells[3].scale), (2, 80_000));
        // A missing axis falls back to the base config's value.
        let cells = base().seeds(vec![5, 6]).grid_configs();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scale, ScenarioConfig::test_scale(7).scale);
    }

    #[test]
    fn sharding_bounds_are_enforced() {
        assert!(base().shards(4).jobs(2).validate().is_ok());
        assert!(base().shards(2).jobs(2).validate().is_ok());
        let err = base().shards(2).jobs(4).validate().unwrap_err();
        assert!(err.contains("exceeds the shard count"), "{err}");
        assert!(base().jobs(0).validate().is_err());
        assert!(base().shards(0).jobs(0).validate().is_err());
        assert!(base().appview_shards(0).validate().is_err());
        assert!(base().relays(0).validate().is_err());
    }

    #[test]
    fn relay_topology_knob() {
        assert!(!base().federation(), "single relay by default");
        assert_eq!(base().relays, 1);
        let fed = base().relays(2);
        assert!(fed.federation());
        assert!(fed.validate().is_ok());
        assert!(base().relays(2).shards(4).jobs(4).validate().is_ok());
    }

    #[test]
    fn zero_scales_are_rejected() {
        let mut spec = base();
        spec.config.scale = 0;
        assert!(spec.validate().is_err());
        assert!(base().scales(vec![40_000, 0]).validate().is_err());
    }

    #[test]
    fn grids_reject_every_non_default_knob() {
        let grid = || base().seeds(vec![1, 2]);
        assert!(grid().validate().is_ok());
        let err = grid().appview_shards(2).validate().unwrap_err();
        assert!(err.contains("--appview-shards"), "{err}");
        let err = grid().relays(2).validate().unwrap_err();
        assert!(err.contains("--relays"), "{err}");
        let err = grid()
            .snapshots(SnapshotMode::FullRefetch)
            .validate()
            .unwrap_err();
        assert!(err.contains("--full-snapshots"), "{err}");
        let err = grid().shards(2).jobs(2).validate().unwrap_err();
        assert!(err.contains("--jobs/--shards"), "{err}");
        let err = grid().store(StoreConfig::paged()).validate().unwrap_err();
        assert!(err.contains("--store paged"), "{err}");
        let err = grid()
            .faults(FaultSpec::scenario("label-storm").unwrap())
            .validate()
            .unwrap_err();
        assert!(err.contains("--scenario/--faults"), "{err}");
        let err = grid().pipeline(true).validate().unwrap_err();
        assert!(err.contains("--pipeline"), "{err}");
        let err = grid().write_back(false).validate().unwrap_err();
        assert!(err.contains("--writeback"), "{err}");
        // The same knobs are fine outside a grid.
        assert!(base()
            .appview_shards(4)
            .snapshots(SnapshotMode::FullRefetch)
            .store(StoreConfig::paged())
            .faults(FaultSpec::scenario("label-storm").unwrap())
            .scenario("label-storm")
            .validate()
            .is_ok());
    }
}
