//! Label value catalogues.
//!
//! There is no official list of label values beyond a handful of reserved and
//! hardcoded ones (§6.2); Labelers declare their own. These catalogues mirror
//! the values the paper observes: the official Bluesky Labeler's NSFW /
//! community-standards values, and the niche values of the most active
//! community Labelers (Tables 3, 4 and 6).

/// Values the official Bluesky Labeler applies automatically (fast reaction
/// times in Figure 6: porn, nudity, corpse, ...).
pub const BLUESKY_AUTOMATED_VALUES: &[&str] = &[
    "porn",
    "sexual",
    "nudity",
    "graphic-media",
    "gore",
    "corpse",
    "self-harm",
];

/// Values the official Bluesky Labeler applies through manual review (slow
/// reaction times in Figure 6: spam, !takedown, intolerant, ...).
pub const BLUESKY_MANUAL_VALUES: &[&str] = &[
    "spam",
    "!takedown",
    "!warn",
    "sexual-figurative",
    "intolerant",
    "icon-intolerant",
    "rude",
    "threat",
    "impersonation",
];

/// Representative community labeler profiles observed in Table 3 / Table 6:
/// `(display name, primary values)`.
pub const COMMUNITY_LABELER_PROFILES: &[(&str, &[&str])] = &[
    (
        "Bad Accessibility / Alt Text Labeler",
        &["no-alt-text", "non-alt-text", "mis-alt-text"],
    ),
    (
        "XBlock Screenshot Labeler",
        &[
            "twitter-screenshot",
            "bluesky-screenshot",
            "uncategorised-screenshot",
        ],
    ),
    ("No GIFS Please", &["tenor-gif", "tenor-gif-no-text"]),
    ("AI Imagery Labeler", &["ai-imagery"]),
    (
        "FF14 Spoiler Labeler",
        &["shadowbringers", "endwalker", "dawntrail"],
    ),
    (
        "Community Topic Labeler",
        &["ai-related-content", "spoiler", "test-label"],
    ),
    (
        "Moderation Collective",
        &["trolling", "transphobia", "racial-intolerance"],
    ),
    ("Furry Content Tagger", &["pup", "fatfur", "diaper"]),
    ("Beans", &["beans"]),
    ("Cringe Curator", &["simping", "bad-selfies", "cringe"]),
    (
        "Quality Filter",
        &["lowquality", "shorturl", "unknown-source"],
    ),
    ("Meme Historian", &["alf", "sensual-alf", "the-format"]),
    (
        "Severity Tester",
        &[
            "severity-alert-blurs-content",
            "severity-alert-blurs-media",
            "severity-alert-blurs-none",
        ],
    ),
    ("JA Spam Watch", &["spam-aff-ja", "spam", "porn"]),
    ("Vibes Labeler", &["so-true", "epic", "based"]),
    ("Trigger Warnings", &["!warn", "threat", "triggerwarning"]),
    ("Phobia Tagger", &["coulro", "arachno", "lepidoptero"]),
    (
        "Discourse Meter",
        &["neutral-pro-discourse", "anti-discourse"],
    ),
    (
        "Spoiler Shield",
        &["spoilers", "!no-promote", "!no-unauthenticated"],
    ),
    ("Nipps", &["nipps", "no-church", "non-handshake"]),
    ("General Purpose", &["!warn", "porn", "spam"]),
    ("Disinfo Watch", &["amplifying-disinfo"]),
    ("Bean Sceptics", &["beanhate", "feature-scold"]),
];

/// Every distinct label value in the catalogues above.
pub fn all_catalogue_values() -> Vec<&'static str> {
    let mut values: Vec<&'static str> = BLUESKY_AUTOMATED_VALUES
        .iter()
        .chain(BLUESKY_MANUAL_VALUES)
        .copied()
        .collect();
    for (_, vals) in COMMUNITY_LABELER_PROFILES {
        values.extend_from_slice(vals);
    }
    values.sort_unstable();
    values.dedup();
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::label::validate_value;

    #[test]
    fn all_catalogue_values_are_valid_labels() {
        for value in all_catalogue_values() {
            assert!(validate_value(value).is_ok(), "{value}");
        }
    }

    #[test]
    fn catalogues_are_disjoint_enough() {
        // Official automated and manual sets do not overlap.
        for v in BLUESKY_AUTOMATED_VALUES {
            assert!(!BLUESKY_MANUAL_VALUES.contains(v), "{v} in both sets");
        }
    }

    #[test]
    fn profile_count_matches_paper_scale() {
        // The paper observes 36 labelers that issued at least one label; our
        // profile list covers the 24 with distinguishable behaviour
        // (Table 6) minus the official one.
        assert!(COMMUNITY_LABELER_PROFILES.len() >= 23);
        assert!(all_catalogue_values().len() >= 50);
    }
}
