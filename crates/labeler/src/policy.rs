//! Issuance policies: what a Labeler labels and how fast it reacts.
//!
//! §6.3 finds a clear split between automated Labelers (sub-10-second median
//! reaction times, high volume) and manual ones (minutes to days, low volume,
//! high variability). A policy couples a set of *triggers* — predicates over
//! post content — with a *reaction-time model*.

use bsky_atproto::record::{MediaKind, PostRecord};
use bsky_simnet::SimRng;

/// How quickly the labeler reacts once it sees a post.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReactionModel {
    /// Automated pipeline: log-normal around a sub-minute median.
    Automated {
        /// Median reaction time in seconds.
        median_secs: f64,
        /// Log-normal sigma (dispersion).
        sigma: f64,
    },
    /// Manual review: log-normal around a much larger median.
    Manual {
        /// Median reaction time in seconds.
        median_secs: f64,
        /// Log-normal sigma (dispersion).
        sigma: f64,
    },
}

impl ReactionModel {
    /// A typical automated pipeline (~1 s median).
    pub fn fast_automated() -> ReactionModel {
        ReactionModel::Automated {
            median_secs: 1.0,
            sigma: 0.4,
        }
    }

    /// A typical human-in-the-loop process (hours).
    pub fn slow_manual() -> ReactionModel {
        ReactionModel::Manual {
            median_secs: 6.0 * 3600.0,
            sigma: 1.5,
        }
    }

    /// Whether this model represents automation.
    pub fn is_automated(&self) -> bool {
        matches!(self, ReactionModel::Automated { .. })
    }

    /// Sample a reaction delay in seconds.
    pub fn sample_delay_secs(&self, rng: &mut SimRng) -> f64 {
        let (median, sigma) = match self {
            ReactionModel::Automated { median_secs, sigma }
            | ReactionModel::Manual { median_secs, sigma } => (*median_secs, *sigma),
        };
        rng.log_normal(median.max(0.05), sigma.max(0.01))
    }
}

/// A predicate over post content that triggers a label value.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Post has attached media missing alternative text.
    MissingAltText {
        /// Value to apply (e.g. `no-alt-text`).
        value: String,
    },
    /// Post has attached media of a specific kind.
    Media {
        /// The media kind to match.
        kind: MediaKind,
        /// Value to apply.
        value: String,
    },
    /// Post carries a specific hashtag.
    Hashtag {
        /// The tag (without `#`).
        tag: String,
        /// Value to apply.
        value: String,
    },
    /// Post text contains a keyword (case-insensitive).
    Keyword {
        /// The keyword.
        keyword: String,
        /// Value to apply.
        value: String,
    },
    /// Post is written in a given language *and* contains a keyword.
    LanguageKeyword {
        /// BCP-47 language tag.
        lang: String,
        /// The keyword.
        keyword: String,
        /// Value to apply.
        value: String,
    },
    /// Random sampling: label a fraction of all observed posts (models
    /// experimental / low-signal labelers).
    Sample {
        /// Probability of labelling any given post.
        probability: f64,
        /// Value to apply.
        value: String,
    },
}

impl Trigger {
    /// The value this trigger applies.
    pub fn value(&self) -> &str {
        match self {
            Trigger::MissingAltText { value }
            | Trigger::Media { value, .. }
            | Trigger::Hashtag { value, .. }
            | Trigger::Keyword { value, .. }
            | Trigger::LanguageKeyword { value, .. }
            | Trigger::Sample { value, .. } => value,
        }
    }

    /// Evaluate the trigger against a post.
    pub fn matches(&self, post: &PostRecord, rng: &mut SimRng) -> bool {
        match self {
            Trigger::MissingAltText { .. } => post.has_media_missing_alt(),
            Trigger::Media { kind, .. } => post.media_kinds().contains(kind),
            Trigger::Hashtag { tag, .. } => post.tags.iter().any(|t| t.eq_ignore_ascii_case(tag)),
            Trigger::Keyword { keyword, .. } => post
                .text
                .to_ascii_lowercase()
                .contains(&keyword.to_ascii_lowercase()),
            Trigger::LanguageKeyword { lang, keyword, .. } => {
                post.langs.iter().any(|l| l.eq_ignore_ascii_case(lang))
                    && post
                        .text
                        .to_ascii_lowercase()
                        .contains(&keyword.to_ascii_lowercase())
            }
            Trigger::Sample { probability, .. } => rng.chance(*probability),
        }
    }
}

/// A labeler's full issuance policy.
#[derive(Debug, Clone, PartialEq)]
pub struct IssuancePolicy {
    /// Content triggers, evaluated in order; every matching trigger fires.
    pub triggers: Vec<Trigger>,
    /// Reaction-time model.
    pub reaction: ReactionModel,
    /// Probability that an applied label is later rescinded (false positive
    /// cleanup; the paper observes 23,394 rescinded labels).
    pub rescind_probability: f64,
}

impl IssuancePolicy {
    /// Create a policy.
    pub fn new(triggers: Vec<Trigger>, reaction: ReactionModel) -> IssuancePolicy {
        IssuancePolicy {
            triggers,
            reaction,
            rescind_probability: 0.0,
        }
    }

    /// Set the rescind probability.
    pub fn with_rescind_probability(mut self, p: f64) -> IssuancePolicy {
        self.rescind_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Values this policy may emit.
    pub fn declared_values(&self) -> Vec<String> {
        let mut values: Vec<String> = self
            .triggers
            .iter()
            .map(|t| t.value().to_string())
            .collect();
        values.sort();
        values.dedup();
        values
    }

    /// Evaluate every trigger against a post, returning the values to apply.
    pub fn evaluate(&self, post: &PostRecord, rng: &mut SimRng) -> Vec<String> {
        let mut values: Vec<String> = self
            .triggers
            .iter()
            .filter(|t| t.matches(post, rng))
            .map(|t| t.value().to_string())
            .collect();
        values.dedup();
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::record::{Embed, ImageEmbed};
    use bsky_atproto::Datetime;

    fn rng() -> SimRng {
        SimRng::new(99)
    }

    fn now() -> Datetime {
        Datetime::from_ymd(2024, 4, 1).unwrap()
    }

    fn post_with_media(alt: Option<&str>, kind: MediaKind) -> PostRecord {
        PostRecord {
            text: "look at this".into(),
            created_at: now(),
            langs: vec!["en".into()],
            reply_parent: None,
            embed: Some(Embed::Images(vec![ImageEmbed {
                alt: alt.map(str::to_string),
                kind,
            }])),
            tags: vec![],
        }
    }

    #[test]
    fn alt_text_trigger() {
        let trigger = Trigger::MissingAltText {
            value: "no-alt-text".into(),
        };
        let mut r = rng();
        assert!(trigger.matches(&post_with_media(None, MediaKind::Photo), &mut r));
        assert!(!trigger.matches(&post_with_media(Some("a cat"), MediaKind::Photo), &mut r));
        assert!(!trigger.matches(&PostRecord::simple("no media", "en", now()), &mut r));
    }

    #[test]
    fn media_hashtag_keyword_triggers() {
        let mut r = rng();
        let gif = Trigger::Media {
            kind: MediaKind::GifTenor,
            value: "tenor-gif".into(),
        };
        assert!(gif.matches(&post_with_media(Some("gif"), MediaKind::GifTenor), &mut r));
        assert!(!gif.matches(&post_with_media(Some("img"), MediaKind::Photo), &mut r));

        let hashtag = Trigger::Hashtag {
            tag: "aiart".into(),
            value: "ai-imagery".into(),
        };
        let mut tagged = PostRecord::simple("my new piece", "en", now());
        tagged.tags.push("AIArt".into());
        assert!(hashtag.matches(&tagged, &mut r));
        assert!(!hashtag.matches(&PostRecord::simple("plain", "en", now()), &mut r));

        let keyword = Trigger::Keyword {
            keyword: "ramen".into(),
            value: "food".into(),
        };
        assert!(keyword.matches(
            &PostRecord::simple("Best RAMEN in town", "ja", now()),
            &mut r
        ));
        assert!(!keyword.matches(&PostRecord::simple("sushi only", "ja", now()), &mut r));

        let lang_kw = Trigger::LanguageKeyword {
            lang: "ja".into(),
            keyword: "dawntrail".into(),
            value: "dawntrail".into(),
        };
        assert!(lang_kw.matches(
            &PostRecord::simple("Dawntrail spoilers!", "ja", now()),
            &mut r
        ));
        assert!(!lang_kw.matches(
            &PostRecord::simple("Dawntrail spoilers!", "en", now()),
            &mut r
        ));
    }

    #[test]
    fn sample_trigger_rate() {
        let trigger = Trigger::Sample {
            probability: 0.1,
            value: "test-label".into(),
        };
        let mut r = rng();
        let post = PostRecord::simple("anything", "en", now());
        let hits = (0..10_000)
            .filter(|_| trigger.matches(&post, &mut r))
            .count();
        assert!((700..1_400).contains(&hits), "hits {hits}");
    }

    #[test]
    fn reaction_models_differ_by_orders_of_magnitude() {
        let mut r = rng();
        let fast = ReactionModel::fast_automated();
        let slow = ReactionModel::slow_manual();
        assert!(fast.is_automated());
        assert!(!slow.is_automated());
        let fast_samples: Vec<f64> = (0..500).map(|_| fast.sample_delay_secs(&mut r)).collect();
        let slow_samples: Vec<f64> = (0..500).map(|_| slow.sample_delay_secs(&mut r)).collect();
        let fast_mean = fast_samples.iter().sum::<f64>() / 500.0;
        let slow_mean = slow_samples.iter().sum::<f64>() / 500.0;
        assert!(fast_mean < 10.0, "fast mean {fast_mean}");
        assert!(slow_mean > 1_000.0, "slow mean {slow_mean}");
        assert!(fast_samples.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn policy_evaluation_collects_all_matches() {
        let policy = IssuancePolicy::new(
            vec![
                Trigger::MissingAltText {
                    value: "no-alt-text".into(),
                },
                Trigger::Media {
                    kind: MediaKind::GifTenor,
                    value: "tenor-gif".into(),
                },
            ],
            ReactionModel::fast_automated(),
        )
        .with_rescind_probability(0.01);
        assert_eq!(policy.declared_values(), vec!["no-alt-text", "tenor-gif"]);
        assert!((policy.rescind_probability - 0.01).abs() < 1e-12);
        let mut r = rng();
        let values = policy.evaluate(&post_with_media(None, MediaKind::GifTenor), &mut r);
        assert_eq!(values, vec!["no-alt-text", "tenor-gif"]);
        let none = policy.evaluate(&PostRecord::simple("plain", "en", now()), &mut r);
        assert!(none.is_empty());
    }
}
