//! Labeler services.
//!
//! A Labeler is a regular account with a service record in its repository and
//! a public label-stream endpoint in its DID document (§2, §6). The service
//! observes posts (and accounts), decides whether to label them according to
//! its [`IssuancePolicy`], waits out its modelled reaction delay, and then
//! publishes the label on its stream. Consumers (the AppView, the study's
//! collector) read the stream with a cursor and can backfill from the start.

use crate::policy::IssuancePolicy;
use bsky_atproto::error::Result;
use bsky_atproto::label::{Label, LabelTarget};
use bsky_atproto::record::{LabelValueDefinition, LabelerServiceRecord, PostRecord};
use bsky_atproto::{AtUri, Datetime, Did};
use bsky_simnet::net::HostingClass;
use bsky_simnet::SimRng;
use std::collections::VecDeque;

/// Upper bound on a labeler's reaction delay, in days. Every sampled delay
/// is clamped to this window, which gives downstream consumers a hard
/// guarantee: a label for a post always surfaces within
/// `REACTION_WINDOW_DAYS` of the post's publication. The study pipeline
/// relies on this to age out its post-creation index without losing any
/// reaction-time measurement.
pub const REACTION_WINDOW_DAYS: i64 = 14;

/// Who operates a labeler (for the Bluesky-vs-community split in §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabelerOperator {
    /// The official, mandatory Bluesky moderation service.
    BlueskyOfficial,
    /// A community-run labeler.
    Community,
}

/// A labeler service instance.
#[derive(Debug, Clone)]
pub struct LabelerService {
    did: Did,
    display_name: String,
    operator: LabelerOperator,
    endpoint: String,
    hosting: HostingClass,
    policy: IssuancePolicy,
    announced_at: Datetime,
    /// Labels awaiting their reaction delay, ordered by due time. The flag
    /// marks labels that will be rescinded right after publication.
    pending: VecDeque<(Datetime, Label, bool)>,
    /// The published stream, in publication order.
    stream: Vec<Label>,
    rng: SimRng,
    /// Whether the endpoint currently answers (dead endpoints never publish).
    functional: bool,
}

impl LabelerService {
    /// Create a labeler service.
    pub fn new(
        did: Did,
        display_name: impl Into<String>,
        operator: LabelerOperator,
        hosting: HostingClass,
        policy: IssuancePolicy,
        announced_at: Datetime,
        rng: SimRng,
    ) -> LabelerService {
        let display_name = display_name.into();
        let endpoint = format!(
            "https://labeler-{}.example/xrpc/com.atproto.label.subscribeLabels",
            did.identifier()
        );
        LabelerService {
            functional: hosting != HostingClass::Dead,
            did,
            display_name,
            operator,
            endpoint,
            hosting,
            policy,
            announced_at,
            pending: VecDeque::new(),
            stream: Vec::new(),
            rng,
        }
    }

    /// The labeler's account DID.
    pub fn did(&self) -> &Did {
        &self.did
    }

    /// Human-readable name (Table 3).
    pub fn display_name(&self) -> &str {
        &self.display_name
    }

    /// Operator class.
    pub fn operator(&self) -> LabelerOperator {
        self.operator
    }

    /// The public label-stream endpoint placed in the DID document.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Hosting classification of the endpoint (§6.1).
    pub fn hosting(&self) -> HostingClass {
        self.hosting
    }

    /// When the service record was first announced.
    pub fn announced_at(&self) -> Datetime {
        self.announced_at
    }

    /// Whether the endpoint answers at all.
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Mark the endpoint as (non-)functional.
    pub fn set_functional(&mut self, functional: bool) {
        self.functional = functional;
    }

    /// The issuance policy.
    pub fn policy(&self) -> &IssuancePolicy {
        &self.policy
    }

    /// The `app.bsky.labeler.service` record announcing this labeler.
    pub fn service_record(&self) -> LabelerServiceRecord {
        LabelerServiceRecord {
            policies: self
                .policy
                .declared_values()
                .into_iter()
                .map(|value| LabelValueDefinition {
                    value,
                    severity: "inform".into(),
                    blurs: "content".into(),
                })
                .collect(),
            created_at: self.announced_at,
        }
    }

    /// Observe a freshly published post. Matching triggers enqueue labels
    /// that will surface on the stream after the reaction delay.
    ///
    /// Every stochastic decision — trigger sampling, reaction delay, the
    /// rescind coin — is drawn from a generator derived from this labeler's
    /// seed *and the post URI*, never from a sequential stream. The verdict
    /// on a given post is therefore identical no matter which other posts
    /// this service instance has seen, which is what lets a sharded run
    /// (each shard's labeler copy sees only that shard's posts) reproduce
    /// the single-instance label stream exactly.
    pub fn observe_post(&mut self, uri: &AtUri, post: &PostRecord, observed_at: Datetime) {
        if !self.functional {
            return;
        }
        let mut rng = self.rng.fork(&uri.to_string());
        let values = self.policy.evaluate(post, &mut rng);
        for value in values {
            let delay = self
                .policy
                .reaction
                .sample_delay_secs(&mut rng)
                .min((REACTION_WINDOW_DAYS * 86_400) as f64);
            let due = observed_at.plus_seconds(delay.round() as i64);
            let label = match Label::new(
                self.did.clone(),
                LabelTarget::Record(uri.clone()),
                value,
                due,
            ) {
                Ok(l) => l,
                Err(_) => continue,
            };
            let rescind = rng.chance(self.policy.rescind_probability);
            self.schedule(due, label, rescind);
        }
    }

    /// Directly apply a label to an arbitrary target (account-level
    /// moderation, profile media, retroactive labelling).
    pub fn apply_label(
        &mut self,
        target: LabelTarget,
        value: &str,
        observed_at: Datetime,
    ) -> Result<()> {
        let mut rng = self.rng.fork(&target.uri());
        let delay = self
            .policy
            .reaction
            .sample_delay_secs(&mut rng)
            .min((REACTION_WINDOW_DAYS * 86_400) as f64);
        let due = observed_at.plus_seconds(delay.round() as i64);
        let label = Label::new(self.did.clone(), target, value, due)?;
        let rescind = rng.chance(self.policy.rescind_probability);
        self.schedule(due, label, rescind);
        Ok(())
    }

    fn schedule(&mut self, due: Datetime, label: Label, rescind: bool) {
        // Keep the pending queue sorted by due time (insertion point search).
        let idx = self
            .pending
            .iter()
            .position(|(t, _, _)| *t > due)
            .unwrap_or(self.pending.len());
        self.pending.insert(idx, (due, label, rescind));
    }

    /// Release every pending label whose reaction delay has elapsed onto the
    /// public stream. Labels drawn for rescission (false-positive cleanup)
    /// are followed by their negation. Returns how many stream entries were
    /// added.
    pub fn poll(&mut self, now: Datetime) -> usize {
        if !self.functional {
            return 0;
        }
        let mut published = 0usize;
        while matches!(self.pending.front(), Some((due, _, _)) if *due <= now) {
            let (_, label, rescind) = self.pending.pop_front().expect("checked front");
            self.stream.push(label.clone());
            published += 1;
            if rescind {
                self.stream.push(label.negation(now));
                published += 1;
            }
        }
        published
    }

    /// Read the public stream from a cursor (index into the stream). Returns
    /// the new entries and the next cursor. Unavailable endpoints return an
    /// empty read without advancing the cursor.
    pub fn subscribe_labels(&self, cursor: usize) -> (&[Label], usize) {
        if !self.functional {
            return (&[], cursor);
        }
        let start = cursor.min(self.stream.len());
        (&self.stream[start..], self.stream.len())
    }

    /// Total labels (including negations) published so far.
    pub fn published_count(&self) -> usize {
        self.stream.len()
    }

    /// Labels still waiting on their reaction delay.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Whether the labeler has ever published anything.
    pub fn has_issued(&self) -> bool {
        !self.stream.is_empty()
    }
}

/// The registry of all labelers known to the network (the set the study
/// compiles from repositories and firehose updates).
#[derive(Debug, Clone, Default)]
pub struct LabelerRegistry {
    labelers: Vec<LabelerService>,
}

impl LabelerRegistry {
    /// Create an empty registry.
    pub fn new() -> LabelerRegistry {
        LabelerRegistry::default()
    }

    /// Register a labeler.
    pub fn register(&mut self, labeler: LabelerService) {
        self.labelers.push(labeler);
    }

    /// All labelers.
    pub fn all(&self) -> &[LabelerService] {
        &self.labelers
    }

    /// Mutable access to all labelers.
    pub fn all_mut(&mut self) -> &mut [LabelerService] {
        &mut self.labelers
    }

    /// Look up a labeler by DID.
    pub fn by_did(&self, did: &Did) -> Option<&LabelerService> {
        self.labelers.iter().find(|l| l.did() == did)
    }

    /// Number of announced labelers.
    pub fn announced_count(&self) -> usize {
        self.labelers.len()
    }

    /// Number of labelers with functional endpoints.
    pub fn functional_count(&self) -> usize {
        self.labelers.iter().filter(|l| l.is_functional()).count()
    }

    /// Number of labelers that issued at least one label.
    pub fn active_count(&self) -> usize {
        self.labelers.iter().filter(|l| l.has_issued()).count()
    }

    /// The official Bluesky labeler, if registered.
    pub fn official(&self) -> Option<&LabelerService> {
        self.labelers
            .iter()
            .find(|l| l.operator() == LabelerOperator::BlueskyOfficial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ReactionModel, Trigger};
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{Embed, ImageEmbed, MediaKind};
    use bsky_atproto::Nsid;

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 1, 0, 0, 0).unwrap()
    }

    fn post_uri(n: u32) -> AtUri {
        AtUri::record(
            Did::plc_from_seed(b"author"),
            Nsid::parse(known::POST).unwrap(),
            format!("rkey{n:09}"),
        )
    }

    fn media_post(alt: Option<&str>) -> PostRecord {
        PostRecord {
            text: "pic".into(),
            created_at: now(),
            langs: vec!["en".into()],
            reply_parent: None,
            embed: Some(Embed::Images(vec![ImageEmbed {
                alt: alt.map(str::to_string),
                kind: MediaKind::Photo,
            }])),
            tags: vec![],
        }
    }

    fn alt_text_labeler() -> LabelerService {
        LabelerService::new(
            Did::plc_from_seed(b"alt-labeler"),
            "Bad Accessibility / Alt Text Labeler",
            LabelerOperator::Community,
            HostingClass::Cloud,
            IssuancePolicy::new(
                vec![Trigger::MissingAltText {
                    value: "no-alt-text".into(),
                }],
                ReactionModel::Automated {
                    median_secs: 0.6,
                    sigma: 0.1,
                },
            ),
            now(),
            SimRng::new(1),
        )
    }

    #[test]
    fn observe_then_poll_publishes_after_delay() {
        let mut labeler = alt_text_labeler();
        labeler.observe_post(&post_uri(1), &media_post(None), now());
        labeler.observe_post(&post_uri(2), &media_post(Some("described")), now());
        assert_eq!(labeler.pending_count(), 1);
        assert_eq!(labeler.poll(now()), 0, "reaction delay has not elapsed");
        let published = labeler.poll(now().plus_seconds(120));
        assert_eq!(published, 1);
        let (labels, cursor) = labeler.subscribe_labels(0);
        assert_eq!(labels.len(), 1);
        assert_eq!(labels[0].value, "no-alt-text");
        assert_eq!(labels[0].target, LabelTarget::Record(post_uri(1)));
        assert!(!labels[0].negated);
        assert!(labeler.has_issued());
        // Cursor semantics.
        let (rest, _) = labeler.subscribe_labels(cursor);
        assert!(rest.is_empty());
    }

    #[test]
    fn reaction_time_is_observable_from_stream() {
        let mut labeler = alt_text_labeler();
        for i in 0..200 {
            labeler.observe_post(&post_uri(i), &media_post(None), now());
        }
        labeler.poll(now().plus_days(1));
        let (labels, _) = labeler.subscribe_labels(0);
        assert_eq!(labels.len(), 200);
        // Median reaction time (label time − post observation time) is close
        // to the configured 0.6 s median (rounded to whole seconds).
        let mut delays: Vec<i64> = labels
            .iter()
            .map(|l| l.created_at.timestamp() - now().timestamp())
            .collect();
        delays.sort();
        let median = delays[delays.len() / 2];
        assert!((0..=2).contains(&median), "median delay {median}");
    }

    #[test]
    fn dead_endpoints_never_publish() {
        let mut labeler = LabelerService::new(
            Did::plc_from_seed(b"dead"),
            "Dead Labeler",
            LabelerOperator::Community,
            HostingClass::Dead,
            IssuancePolicy::new(
                vec![Trigger::Sample {
                    probability: 1.0,
                    value: "test-label".into(),
                }],
                ReactionModel::fast_automated(),
            ),
            now(),
            SimRng::new(2),
        );
        assert!(!labeler.is_functional());
        labeler.observe_post(&post_uri(1), &media_post(None), now());
        assert_eq!(labeler.poll(now().plus_days(1)), 0);
        assert_eq!(labeler.subscribe_labels(0).0.len(), 0);
        assert!(!labeler.has_issued());
        // Bringing it up later lets it work.
        labeler.set_functional(true);
        labeler.observe_post(&post_uri(2), &media_post(None), now());
        labeler.poll(now().plus_days(1));
        assert!(labeler.has_issued());
    }

    #[test]
    fn rescissions_appear_as_negations() {
        let mut labeler = LabelerService::new(
            Did::plc_from_seed(b"rescinder"),
            "Rescinding Labeler",
            LabelerOperator::Community,
            HostingClass::Cloud,
            IssuancePolicy::new(
                vec![Trigger::Sample {
                    probability: 1.0,
                    value: "test-label".into(),
                }],
                ReactionModel::fast_automated(),
            )
            .with_rescind_probability(0.5),
            now(),
            SimRng::new(3),
        );
        for i in 0..200 {
            labeler.observe_post(&post_uri(i), &media_post(None), now());
        }
        labeler.poll(now().plus_days(1));
        let (labels, _) = labeler.subscribe_labels(0);
        let negated = labels.iter().filter(|l| l.negated).count();
        assert!(negated > 50 && negated < 150, "negated {negated}");
        // Effective labels honour the negations.
        let effective = bsky_atproto::label::effective_labels(labels);
        assert_eq!(effective.len(), 200 - negated);
    }

    #[test]
    fn account_level_labels_and_service_record() {
        let mut labeler = alt_text_labeler();
        labeler
            .apply_label(
                LabelTarget::Account(Did::plc_from_seed(b"spammer")),
                "spam",
                now(),
            )
            .unwrap();
        assert!(labeler
            .apply_label(
                LabelTarget::Account(Did::plc_from_seed(b"spammer")),
                "NOT VALID",
                now()
            )
            .is_err());
        labeler.poll(now().plus_days(1));
        let (labels, _) = labeler.subscribe_labels(0);
        assert_eq!(labels.len(), 1);
        assert_eq!(labels[0].target.kind().display_name(), "Account");

        let record = labeler.service_record();
        assert_eq!(record.policies.len(), 1);
        assert_eq!(record.policies[0].value, "no-alt-text");
    }

    #[test]
    fn registry_counts() {
        let mut registry = LabelerRegistry::new();
        let mut active = alt_text_labeler();
        active.observe_post(&post_uri(1), &media_post(None), now());
        active.poll(now().plus_days(1));
        registry.register(active);
        registry.register(LabelerService::new(
            Did::plc_from_seed(b"official"),
            "Bluesky Moderation",
            LabelerOperator::BlueskyOfficial,
            HostingClass::Cloud,
            IssuancePolicy::new(vec![], ReactionModel::fast_automated()),
            Datetime::from_ymd(2023, 4, 1).unwrap(),
            SimRng::new(4),
        ));
        registry.register(LabelerService::new(
            Did::plc_from_seed(b"dead2"),
            "Dead",
            LabelerOperator::Community,
            HostingClass::Dead,
            IssuancePolicy::new(vec![], ReactionModel::fast_automated()),
            now(),
            SimRng::new(5),
        ));
        assert_eq!(registry.announced_count(), 3);
        assert_eq!(registry.functional_count(), 2);
        assert_eq!(registry.active_count(), 1);
        assert!(registry.official().is_some());
        assert!(registry
            .by_did(&Did::plc_from_seed(b"alt-labeler"))
            .is_some());
        assert!(registry.by_did(&Did::plc_from_seed(b"nobody")).is_none());
        assert_eq!(registry.all().len(), registry.all_mut().len());
    }
}
