//! # bsky-labeler
//!
//! Labelers: the decentralized content-moderation services of §6 of the
//! paper.
//!
//! * [`values`] — label value catalogues for the official Bluesky Labeler and
//!   the community labelers of Tables 3/4/6.
//! * [`policy`] — issuance policies: content triggers plus the
//!   automated-vs-manual reaction-time models behind Figures 5 and 6.
//! * [`service`] — the labeler service itself: service records, pending
//!   queues, label streams with cursors, rescissions, hosting classes and the
//!   network-wide registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod service;
pub mod values;

pub use policy::{IssuancePolicy, ReactionModel, Trigger};
pub use service::{LabelerOperator, LabelerRegistry, LabelerService, REACTION_WINDOW_DAYS};
