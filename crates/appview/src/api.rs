//! The AppView's public API.
//!
//! The AppView collates the data produced across the network and exposes it
//! to clients (§2): profile views, feed-generator metadata
//! (`getFeedGenerator`), and hydrated feeds (`getFeed`) that join a
//! generator's skeleton with the post index. There is one Bluesky AppView,
//! operated by Bluesky PBC; the study crawls exactly these endpoints (§3).

use crate::index::PostInfo;
use crate::shards::AppViewShards;
use bsky_atproto::blockstore::{StoreConfig, StoreStats};
use bsky_atproto::error::{AtError, Result};
use bsky_atproto::{AtUri, Did, Handle};
use bsky_feedgen::FeedGenerator;

/// Metadata returned by `app.bsky.feed.getFeedGenerator`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedGeneratorView {
    /// The generator's `at://` URI.
    pub uri: AtUri,
    /// The creator account.
    pub creator: Did,
    /// Display name.
    pub display_name: String,
    /// Description.
    pub description: String,
    /// Like count.
    pub like_count: u64,
    /// Whether the AppView believes the generator's endpoint is online.
    pub is_online: bool,
    /// Whether the declaration record is valid.
    pub is_valid: bool,
}

/// A profile view (`app.bsky.actor.getProfile`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileView {
    /// The account DID.
    pub did: Did,
    /// Current handle.
    pub handle: Handle,
    /// Display name from the profile record, if any.
    pub display_name: Option<String>,
    /// Description from the profile record, if any.
    pub description: Option<String>,
    /// Followers count.
    pub followers: u64,
    /// Follows count.
    pub follows: u64,
    /// Posts count.
    pub posts: u64,
}

/// The AppView service: the (entity-sharded) index plus API methods.
#[derive(Debug, Clone, Default)]
pub struct AppView {
    index: AppViewShards,
    api_requests: u64,
}

impl AppView {
    /// Create an empty AppView (one in-memory entity shard).
    pub fn new() -> AppView {
        AppView::default()
    }

    /// Create an AppView with `shards` entity shards, each over its own
    /// block store built from `store` — the NUMA-scale configuration (repro
    /// `--appview-shards N --store paged`) — with or without the write-back
    /// cache (`write_back`). Queries and ingestion behave identically for
    /// every shard count and cache setting; only residency and backend op
    /// counts change.
    pub fn with_shards(shards: usize, store: &StoreConfig, write_back: bool) -> AppView {
        AppView {
            index: AppViewShards::with_shards(shards, store, write_back),
            api_requests: 0,
        }
    }

    /// Flush dirty counter state and write-back buffers on every shard
    /// (called at day boundaries).
    pub fn flush(&mut self) {
        self.index.flush();
    }

    /// The underlying sharded index (ingestion surface).
    pub fn index(&self) -> &AppViewShards {
        &self.index
    }

    /// Mutable access to the underlying sharded index (ingestion surface).
    pub fn index_mut(&mut self) -> &mut AppViewShards {
        &mut self.index
    }

    /// Aggregate block-store statistics over every entity shard.
    pub fn store_stats(&self) -> StoreStats {
        self.index.store_stats()
    }

    /// `app.bsky.actor.getProfile`.
    pub fn get_profile(&mut self, did: &Did) -> Result<ProfileView> {
        self.api_requests += 1;
        let actor = self
            .index
            .actor(did)
            .ok_or_else(|| AtError::RepoError(format!("unknown actor {did}")))?;
        if actor.deleted {
            return Err(AtError::RepoError(format!("actor {did} deleted")));
        }
        Ok(ProfileView {
            did: actor.did,
            handle: actor.handle,
            display_name: actor.profile.as_ref().map(|p| p.display_name.clone()),
            description: actor.profile.as_ref().map(|p| p.description.clone()),
            followers: actor.followers,
            follows: actor.follows,
            posts: actor.posts,
        })
    }

    /// `app.bsky.feed.getFeedGenerator`.
    pub fn get_feed_generator(&mut self, generator: &FeedGenerator) -> FeedGeneratorView {
        self.api_requests += 1;
        FeedGeneratorView {
            uri: generator.uri().clone(),
            creator: generator.creator().clone(),
            display_name: generator.record().display_name.clone(),
            description: generator.record().description.clone(),
            like_count: generator.like_count(),
            is_online: true,
            is_valid: true,
        }
    }

    /// `app.bsky.feed.getFeed`: ask the generator for its skeleton and
    /// hydrate each URI from the post index. URIs the AppView cannot resolve
    /// are silently dropped, as on the live network.
    pub fn get_feed(
        &mut self,
        generator: &mut FeedGenerator,
        limit: usize,
        viewer: Option<&Did>,
    ) -> Vec<PostInfo> {
        self.api_requests += 1;
        generator
            .get_feed(limit, viewer)
            .into_iter()
            .filter_map(|entry| self.index.post(&entry.uri))
            .collect()
    }

    /// Number of API requests served.
    pub fn api_requests(&self) -> u64 {
        self.api_requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{FeedGeneratorRecord, PostRecord, ProfileRecord, Record};
    use bsky_atproto::{Datetime, Nsid};
    use bsky_feedgen::{CurationMode, FeedPipeline, RetentionPolicy};

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 20, 12, 0, 0).unwrap()
    }

    fn did(name: &str) -> Did {
        Did::plc_from_seed(name.as_bytes())
    }

    fn seeded_appview() -> (AppView, Did) {
        let mut appview = AppView::new();
        let alice = did("alice");
        appview
            .index_mut()
            .upsert_actor(&alice, &Handle::parse("alice.bsky.social").unwrap());
        appview.index_mut().index_record(
            &alice,
            &Nsid::parse(known::PROFILE).unwrap(),
            "self",
            &Record::Profile(ProfileRecord {
                display_name: "Alice".into(),
                description: "artist".into(),
                has_avatar: true,
                has_banner: true,
                created_at: now(),
            }),
            now(),
        );
        for i in 0..5 {
            appview.index_mut().index_record(
                &alice,
                &Nsid::parse(known::POST).unwrap(),
                &format!("post{i:08}"),
                &Record::Post(PostRecord::simple(
                    format!("post number {i}"),
                    "en",
                    now().plus_seconds(i as i64),
                )),
                now(),
            );
        }
        (appview, alice)
    }

    #[test]
    fn profile_view_reflects_index() {
        let (mut appview, alice) = seeded_appview();
        let profile = appview.get_profile(&alice).unwrap();
        assert_eq!(profile.display_name.as_deref(), Some("Alice"));
        assert_eq!(profile.posts, 5);
        assert_eq!(profile.followers, 0);
        assert!(appview.get_profile(&did("nobody")).is_err());
        assert_eq!(appview.api_requests(), 2);
    }

    #[test]
    fn get_feed_hydrates_skeleton() {
        let (mut appview, alice) = seeded_appview();
        let mut generator = FeedGenerator::new(
            alice.clone(),
            "everything",
            FeedGeneratorRecord {
                service_did: Did::web("skyfeed.example").unwrap(),
                display_name: "everything".into(),
                description: "all posts".into(),
                created_at: now(),
            },
            CurationMode::Pipeline(FeedPipeline::everything()),
            RetentionPolicy::All,
        );
        // Feed observes the same posts the AppView indexed, plus one the
        // AppView does not know about (dropped on hydration).
        for i in 0..5 {
            let uri = AtUri::record(
                alice.clone(),
                Nsid::parse(known::POST).unwrap(),
                format!("post{i:08}"),
            );
            generator.observe_post(
                &uri,
                &alice,
                &PostRecord::simple(
                    format!("post number {i}"),
                    "en",
                    now().plus_seconds(i as i64),
                ),
                now(),
            );
        }
        generator.curate_manually(
            AtUri::record(
                alice.clone(),
                Nsid::parse(known::POST).unwrap(),
                "missing0001",
            ),
            now().plus_seconds(100),
            now(),
        );

        let hydrated = appview.get_feed(&mut generator, 10, None);
        assert_eq!(hydrated.len(), 5, "unresolvable URIs are dropped");
        assert!(hydrated
            .windows(2)
            .all(|w| w[0].record.created_at >= w[1].record.created_at));

        let view = appview.get_feed_generator(&generator);
        assert_eq!(view.display_name, "everything");
        assert!(view.is_online && view.is_valid);
        assert_eq!(view.creator, alice);
    }

    /// Build the same timeline fixture at several entity-shard counts: bob
    /// follows alice, alice has three posts — two sharing one `created_at`
    /// (the tie the canonical order must break on URI) and one newer.
    fn timeline_fixture(shards: usize) -> (AppView, Did, Did, Vec<AtUri>) {
        let mut appview =
            AppView::with_shards(shards, &bsky_atproto::blockstore::StoreConfig::mem(), true);
        let alice = did("alice");
        let bob = did("bob");
        for (d, h) in [(&alice, "alice.bsky.social"), (&bob, "bob.bsky.social")] {
            appview
                .index_mut()
                .upsert_actor(d, &Handle::parse(h).unwrap());
        }
        // rkeys chosen so URI order differs from insertion order.
        let tied = now();
        let newer = now().plus_seconds(60);
        let posts = [
            ("zzz00000001", tied),
            ("aaa00000001", tied),
            ("mmm00000001", newer),
        ];
        let mut uris = Vec::new();
        for (rkey, at) in posts {
            appview.index_mut().index_record(
                &alice,
                &Nsid::parse(known::POST).unwrap(),
                rkey,
                &Record::Post(PostRecord::simple(rkey, "en", at)),
                at,
            );
            uris.push(AtUri::record(
                alice.clone(),
                Nsid::parse(known::POST).unwrap(),
                rkey,
            ));
        }
        appview.index_mut().index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "f1",
            &Record::Follow(bsky_atproto::record::FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        (appview, alice, bob, uris)
    }

    #[test]
    fn following_timeline_with_zero_limit_is_empty() {
        for shards in [1, 4] {
            let (appview, _alice, bob, _uris) = timeline_fixture(shards);
            assert!(
                appview.index().following_timeline(&bob, 0).is_empty(),
                "{shards} shard(s): limit 0 must serve nothing"
            );
        }
    }

    #[test]
    fn viewer_with_no_follow_edges_gets_an_empty_timeline() {
        for shards in [1, 4] {
            let (appview, alice, _bob, _uris) = timeline_fixture(shards);
            // Alice follows nobody; an entirely unknown viewer follows
            // nobody either — both see empty timelines, no panic.
            assert!(appview.index().following_timeline(&alice, 10).is_empty());
            assert!(appview
                .index()
                .following_timeline(&did("stranger"), 10)
                .is_empty());
        }
    }

    #[test]
    fn timeline_ties_on_created_at_break_on_uri() {
        for shards in [1, 4] {
            let (appview, _alice, bob, uris) = timeline_fixture(shards);
            let timeline = appview.index().following_timeline(&bob, 10);
            // Newest first; the two tied posts then order by URI ascending
            // (aaa… before zzz…), regardless of insertion order or shard
            // placement.
            let got: Vec<String> = timeline.iter().map(|p| p.uri.to_string()).collect();
            let want = vec![
                uris[2].to_string(),
                uris[1].to_string(),
                uris[0].to_string(),
            ];
            assert_eq!(got, want, "{shards} shard(s)");
            // The limit truncates *after* the canonical sort, so a limit of
            // 2 keeps the newest post plus the URI-smaller tied post.
            let top2: Vec<String> = appview
                .index()
                .following_timeline(&bob, 2)
                .iter()
                .map(|p| p.uri.to_string())
                .collect();
            assert_eq!(top2, want[..2].to_vec(), "{shards} shard(s)");
        }
    }

    #[test]
    fn timeline_crosses_a_remove_post_deletion() {
        for shards in [1, 4] {
            let (mut appview, alice, bob, uris) = timeline_fixture(shards);
            assert_eq!(appview.index().following_timeline(&bob, 10).len(), 3);
            // Delete the newest post: the timeline drops it, keeps the
            // canonical order of the remainder, and the author's post
            // counter debits — whichever shards the post and the author
            // live on.
            appview.index_mut().remove_post(&uris[2]);
            let timeline = appview.index().following_timeline(&bob, 10);
            let got: Vec<String> = timeline.iter().map(|p| p.uri.to_string()).collect();
            assert_eq!(got, vec![uris[1].to_string(), uris[0].to_string()]);
            assert_eq!(appview.index().actor(&alice).unwrap().posts, 2);
            assert!(!appview.index().has_post(&uris[2]));
            // Deleting the rest empties the timeline.
            appview.index_mut().remove_post(&uris[0]);
            appview.index_mut().remove_post(&uris[1]);
            assert!(appview.index().following_timeline(&bob, 10).is_empty());
            assert_eq!(appview.index().actor(&alice).unwrap().posts, 0);
        }
    }

    #[test]
    fn deleted_actors_have_no_profile() {
        let (mut appview, alice) = seeded_appview();
        appview
            .index_mut()
            .process_event(&bsky_atproto::firehose::Event {
                seq: 1,
                time: now(),
                body: bsky_atproto::firehose::EventBody::Tombstone { did: alice.clone() },
            });
        assert!(appview.get_profile(&alice).is_err());
    }
}
