//! Entity-sharded AppView indices.
//!
//! [`AppViewShards`] partitions the AppView's state by *entity hash*:
//!
//! * **posts** live on the shard selected by the FNV-1a hash of their
//!   `at://` URI;
//! * **actors** and their outgoing **graph edges** (follows, blocks — keyed
//!   by the originating DID) live on the shard selected by
//!   [`Did::shard_hash`] — the very hash the workload's `PopulationPlan`
//!   partitions the population by, so the two sharding layers agree on DID
//!   ownership.
//!
//! Each shard is a complete [`AppViewIndex`] over its own block store, so a
//! shard's cold entities spill independently (paged backend) and the
//! per-shard resident footprint is `1/N` of the monolithic index — the last
//! per-shard memory ceiling the ROADMAP's NUMA item named.
//!
//! ## Correctness contract
//!
//! A logical ingestion step decomposes into per-entity *primitives* (see
//! [`crate::index`]), each routed to the shard owning the touched entity.
//! Decisions that gate cross-entity effects (edge dedup for follow/block
//! counters) are made on the edge-owning shard, so they are identical for
//! every shard count. Merging all shards with the associative
//! [`AppViewIndex::merge`] — mirroring the study pipeline's
//! `Analyzer::merge` — therefore reproduces the monolithic index exactly:
//! counts, per-entity state, timelines and label sets. The property test
//! below pins this for random event/label interleavings across shard
//! counts 1, 2, 4 and 7, and every query the shards serve fans out and
//! re-merges under the canonical `(created_at desc, uri)` order, so the
//! answers match the monolithic index without materializing the merge.

use crate::index::{sort_timeline, ActorInfo, AppViewIndex, PostInfo};
use bsky_atproto::blockstore::{StoreConfig, StoreStats};
use bsky_atproto::firehose::{Event, EventBody};
use bsky_atproto::label::{Label, LabelTarget};
use bsky_atproto::record::{ProfileRecord, Record};
use bsky_atproto::{AtUri, Datetime, Did, Handle, Nsid};
use std::collections::BTreeSet;

/// The AppView's indices, sharded by entity hash. A 1-shard set behaves
/// exactly like a bare [`AppViewIndex`]; see the module docs for the
/// routing and merge contract.
#[derive(Debug, Clone)]
pub struct AppViewShards {
    shards: Vec<AppViewIndex>,
}

impl Default for AppViewShards {
    fn default() -> AppViewShards {
        AppViewShards::new()
    }
}

impl AppViewShards {
    /// A single in-memory shard (the monolithic default), write-back cache
    /// on.
    pub fn new() -> AppViewShards {
        AppViewShards::with_shards(1, &StoreConfig::default(), true)
    }

    /// `count` shards (clamped to at least 1), each over its own block
    /// store built from `store`, each wrapped in a write-back cache when
    /// `write_back` is set.
    pub fn with_shards(count: usize, store: &StoreConfig, write_back: bool) -> AppViewShards {
        AppViewShards {
            shards: (0..count.max(1))
                .map(|_| AppViewIndex::with_store(store, write_back))
                .collect(),
        }
    }

    /// Flush every shard's dirty counter state and write-back buffer (see
    /// [`AppViewIndex::flush`]); called at day boundaries.
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            shard.flush();
        }
    }

    /// Number of entity shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves, in shard order (read-only).
    pub fn shards(&self) -> &[AppViewIndex] {
        &self.shards
    }

    /// The shard owning a post URI.
    fn post_home(&self, uri: &AtUri) -> usize {
        (uri.shard_hash() % self.shards.len() as u64) as usize
    }

    /// The shard owning an actor DID (and its outgoing edges).
    fn actor_home(&self, did: &Did) -> usize {
        (did.shard_hash() % self.shards.len() as u64) as usize
    }

    // -- ingestion ---------------------------------------------------------

    /// Register an account (routed to the actor's shard).
    pub fn upsert_actor(&mut self, did: &Did, handle: &Handle) {
        let home = self.actor_home(did);
        self.shards[home].upsert_actor(did, handle);
    }

    /// Index a record: the record counter lands on the author's shard and
    /// each per-entity effect is routed to the shard owning that entity.
    pub fn index_record(
        &mut self,
        author: &Did,
        collection: &Nsid,
        rkey: &str,
        record: &Record,
        at: Datetime,
    ) {
        let author_home = self.actor_home(author);
        self.shards[author_home].count_record();
        match record {
            Record::Post(post) => {
                let uri = AtUri::record(author.clone(), collection.clone(), rkey);
                let home = self.post_home(&uri);
                self.shards[home].insert_post(PostInfo {
                    uri,
                    author: author.clone(),
                    record: post.clone(),
                    indexed_at: at,
                    like_count: 0,
                    repost_count: 0,
                    labels: Vec::new(),
                });
                self.shards[author_home].credit_author_post(author);
            }
            Record::Like(like) => {
                let home = self.post_home(&like.subject);
                self.shards[home].apply_like(&like.subject);
            }
            Record::Repost(repost) => {
                let home = self.post_home(&repost.subject);
                self.shards[home].apply_repost(&repost.subject);
            }
            Record::Follow(follow) => {
                // The edge-owning shard (the follower's) decides freshness;
                // the endpoint counters then land wherever each actor lives.
                if self.shards[author_home].insert_follow_edge(author, &follow.subject) {
                    self.shards[author_home].credit_follows(author);
                    let target_home = self.actor_home(&follow.subject);
                    self.shards[target_home].credit_followers(&follow.subject);
                }
            }
            Record::Block(block) => {
                if self.shards[author_home].insert_block_edge(author, &block.subject) {
                    let target_home = self.actor_home(&block.subject);
                    self.shards[target_home].credit_blocked_by(&block.subject);
                }
            }
            Record::Profile(profile) => self.set_profile(author, profile),
            Record::FeedGenerator(_) | Record::LabelerService(_) | Record::Unknown(_) => {}
        }
    }

    /// Attach a profile record (routed to the actor's shard).
    pub fn set_profile(&mut self, author: &Did, profile: &ProfileRecord) {
        let home = self.actor_home(author);
        self.shards[home].set_profile(author, profile);
    }

    /// Remove a post: taken from the URI's shard, the author's post counter
    /// debited on the author's shard.
    pub fn remove_post(&mut self, uri: &AtUri) {
        let home = self.post_home(uri);
        if let Some(info) = self.shards[home].take_post(uri) {
            let author_home = self.actor_home(&info.author);
            self.shards[author_home].debit_author_post(&info.author);
        }
    }

    /// Process a firehose event's non-content effects. The event counter
    /// lands on the shard owning the event's repo DID (shard 0 for
    /// repo-less info frames); tombstones purge posts on *every* shard —
    /// an account's posts are spread across all of them.
    pub fn process_event(&mut self, event: &Event) {
        let counter_home = event.did().map(|d| self.actor_home(d)).unwrap_or(0);
        self.shards[counter_home].count_event();
        match &event.body {
            EventBody::HandleChange { did, handle } => {
                let home = self.actor_home(did);
                self.shards[home].upsert_actor(did, handle);
            }
            EventBody::Tombstone { did } => {
                let home = self.actor_home(did);
                self.shards[home].mark_deleted(did);
                for shard in &mut self.shards {
                    shard.purge_posts_of(did);
                }
            }
            EventBody::Commit { .. } | EventBody::Identity { .. } | EventBody::Info { .. } => {}
        }
    }

    /// Ingest a label, routed to the shard owning its target entity (post
    /// URI or account DID). Labels whose target is unknown are counted into
    /// [`AppViewShards::labels_preindex`] on that same shard.
    pub fn ingest_label(&mut self, label: &Label) {
        let home = match &label.target {
            LabelTarget::Record(uri) => self.post_home(uri),
            LabelTarget::Account(did) | LabelTarget::ProfileMedia(did) => self.actor_home(did),
        };
        self.shards[home].ingest_label(label);
    }

    // -- queries -----------------------------------------------------------

    /// Look up a post on its owning shard.
    pub fn post(&self, uri: &AtUri) -> Option<PostInfo> {
        self.shards[self.post_home(uri)].post(uri)
    }

    /// Whether a post is indexed (key probe on its owning shard, no block
    /// decode).
    pub fn has_post(&self, uri: &AtUri) -> bool {
        self.shards[self.post_home(uri)].has_post(uri)
    }

    /// Look up an actor on its owning shard.
    pub fn actor(&self, did: &Did) -> Option<ActorInfo> {
        self.shards[self.actor_home(did)].actor(did)
    }

    /// Whether `a` follows `b` (answered by `a`'s edge-owning shard).
    pub fn follows(&self, a: &Did, b: &Did) -> bool {
        self.shards[self.actor_home(a)].follows(a, b)
    }

    /// Whether `a` blocks `b`.
    pub fn blocks(&self, a: &Did, b: &Did) -> bool {
        self.shards[self.actor_home(a)].blocks(a, b)
    }

    /// Number of indexed posts across all shards.
    pub fn post_count(&self) -> usize {
        self.shards.iter().map(AppViewIndex::post_count).sum()
    }

    /// Number of known actors across all shards.
    pub fn actor_count(&self) -> usize {
        self.shards.iter().map(AppViewIndex::actor_count).sum()
    }

    /// Number of follow edges across all shards.
    pub fn follow_edge_count(&self) -> usize {
        self.shards
            .iter()
            .map(AppViewIndex::follow_edge_count)
            .sum()
    }

    /// Total labels ingested across all shards (including negations).
    pub fn labels_ingested(&self) -> u64 {
        self.shards.iter().map(AppViewIndex::labels_ingested).sum()
    }

    /// Labels whose target was not indexed when they arrived — counted,
    /// never silently dropped (summed across shards).
    pub fn labels_preindex(&self) -> u64 {
        self.shards.iter().map(AppViewIndex::labels_preindex).sum()
    }

    /// Entities dropped by merges because a source store had lost their
    /// block (see [`AppViewIndex::lost_entities`]); summed across shards.
    pub fn lost_entities(&self) -> u64 {
        self.shards.iter().map(AppViewIndex::lost_entities).sum()
    }

    /// Total records indexed across all shards.
    pub fn records_indexed(&self) -> u64 {
        self.shards.iter().map(AppViewIndex::records_indexed).sum()
    }

    /// Total firehose events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(AppViewIndex::events_processed).sum()
    }

    /// The "following" timeline, fanned out across shards: the viewer's
    /// follow set comes from the viewer's edge-owning shard, every shard
    /// contributes its matching posts, and the union is re-sorted under the
    /// canonical `(created_at desc, uri)` order — identical to the
    /// monolithic answer for any shard count.
    pub fn following_timeline(&self, viewer: &Did, limit: usize) -> Vec<PostInfo> {
        let followed: BTreeSet<String> =
            self.shards[self.actor_home(viewer)].follow_targets(viewer);
        let mut posts: Vec<PostInfo> = self
            .shards
            .iter()
            .flat_map(|shard| shard.posts_by_authors(&followed))
            .collect();
        sort_timeline(&mut posts);
        posts.truncate(limit);
        posts
    }

    /// All posts across shards, in global key (URI) order.
    pub fn posts(&self) -> Vec<PostInfo> {
        let mut out: Vec<PostInfo> = self.shards.iter().flat_map(AppViewIndex::posts).collect();
        // Sort by the URI *string*, matching the monolithic index's
        // BTreeMap key order exactly. `AtUri`'s derived Ord compares
        // (did, collection, rkey) component-wise, which diverges from
        // string order when one DID is a prefix of another (did:web).
        out.sort_by_cached_key(|p| p.uri.to_string());
        out
    }

    /// All actors across shards, in global key (DID) order (`Did`'s
    /// derived Ord — method then identifier — matches the string order of
    /// `did:<method>:<identifier>` exactly, since `plc` < `web` and the
    /// prefix is fixed per method).
    pub fn actors(&self) -> Vec<ActorInfo> {
        let mut out: Vec<ActorInfo> = self.shards.iter().flat_map(AppViewIndex::actors).collect();
        out.sort_by(|a, b| a.did.cmp(&b.did));
        out
    }

    /// Counter mutations coalesced into already-dirty entities, summed
    /// across shards (see [`AppViewIndex::counter_coalesced_writes`]).
    pub fn counter_coalesced_writes(&self) -> u64 {
        self.shards
            .iter()
            .map(AppViewIndex::counter_coalesced_writes)
            .sum()
    }

    /// Aggregate block-store statistics over every shard.
    pub fn store_stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for shard in &self.shards {
            stats.absorb(&shard.store_stats());
        }
        stats
    }

    /// Merge another shard set's state into this one, shard-wise (both
    /// sets must have the same shard count — entities then route
    /// identically and each pairwise [`AppViewIndex::merge`] is disjoint).
    /// This mirrors the study pipeline's `Analyzer::merge`: engine-shard
    /// worlds each hold an `AppViewShards` over their own population, and
    /// merging them shard-wise is associative.
    pub fn merge(&mut self, other: AppViewShards) {
        assert_eq!(
            self.shards.len(),
            other.shards.len(),
            "AppViewShards::merge requires equal shard counts"
        );
        for (mine, theirs) in self.shards.iter_mut().zip(other.shards) {
            mine.merge(theirs);
        }
    }

    /// Collapse every shard into one monolithic [`AppViewIndex`] (the
    /// merged view the property test compares against the oracle).
    pub fn into_merged(self) -> AppViewIndex {
        let mut shards = self.shards.into_iter();
        let mut merged = shards.next().expect("at least one shard");
        for shard in shards {
            merged.merge(shard);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{
        BlockRecord, FollowRecord, LikeRecord, PostRecord, ProfileRecord, RepostRecord,
    };
    use bsky_atproto::testrand::TestRng;

    fn base() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 1, 8, 0, 0).unwrap()
    }

    fn did(i: u64) -> Did {
        Did::plc_from_seed(format!("shard-user-{i}").as_bytes())
    }

    fn handle(i: u64) -> Handle {
        Handle::parse(&format!("user{i}.bsky.social")).unwrap()
    }

    fn post_uri(author: &Did, rkey: &str) -> AtUri {
        AtUri::record(author.clone(), Nsid::parse(known::POST).unwrap(), rkey)
    }

    /// One randomly drawn ingestion step, applied identically to the oracle
    /// and to a shard set.
    enum Op {
        Upsert(u64),
        Post(u64, String, Datetime),
        Like(u64, AtUri),
        Repost(u64, AtUri),
        Follow(u64, u64),
        Block(u64, u64),
        Profile(u64),
        RemovePost(AtUri),
        Tombstone(u64),
        HandleChange(u64),
        Label(AtUri, String, bool),
        AccountLabel(u64, String, bool),
    }

    fn arb_op(rng: &mut TestRng, minted: &mut Vec<AtUri>) -> Op {
        const USERS: u64 = 6;
        const VALUES: &[&str] = &["spam", "porn", "no-alt-text", "trolling"];
        let user = rng.below(USERS);
        // A URI from the minted pool — or, now and then, one that was never
        // (or not yet) posted, to exercise the unknown-target paths.
        let any_uri = |rng: &mut TestRng| -> AtUri {
            if minted.is_empty() || rng.below(8) == 0 {
                post_uri(
                    &did(rng.below(USERS)),
                    &format!("ghost{:03}", rng.below(30)),
                )
            } else {
                minted[rng.below(minted.len() as u64) as usize].clone()
            }
        };
        match rng.below(14) {
            0 => Op::Upsert(user),
            1..=3 => {
                let rkey = format!("p{:04}", rng.below(500));
                // A deliberately tiny timestamp universe so created_at ties
                // are common and the URI tie-break is exercised.
                let at = base().plus_seconds(rng.below(4) as i64 * 3600);
                minted.push(post_uri(&did(user), &rkey));
                Op::Post(user, rkey, at)
            }
            4..=5 => Op::Like(user, any_uri(rng)),
            6 => Op::Repost(user, any_uri(rng)),
            7..=8 => Op::Follow(user, rng.below(USERS)),
            9 => Op::Block(user, rng.below(USERS)),
            10 => Op::Profile(user),
            11 => {
                if rng.below(4) == 0 {
                    Op::Tombstone(user)
                } else {
                    Op::RemovePost(any_uri(rng))
                }
            }
            12 => Op::HandleChange(user),
            _ => {
                let value = VALUES[rng.below(VALUES.len() as u64) as usize].to_string();
                let negated = rng.below(4) == 0;
                if rng.below(5) == 0 {
                    Op::AccountLabel(user, value, negated)
                } else {
                    Op::Label(any_uri(rng), value, negated)
                }
            }
        }
    }

    // The property test drives both structures through a tiny trait-less
    // dispatch: a macro keeps the call sites literal (the two ingestion
    // surfaces are intentionally identical).
    macro_rules! apply_op {
        ($target:expr, $op:expr, $seq:expr) => {{
            let labeler = Did::plc_from_seed(b"shard-labeler");
            match $op {
                Op::Upsert(u) => $target.upsert_actor(&did(*u), &handle(*u)),
                Op::Post(u, rkey, at) => $target.index_record(
                    &did(*u),
                    &Nsid::parse(known::POST).unwrap(),
                    rkey,
                    &Record::Post(PostRecord::simple(format!("post {rkey}"), "en", *at)),
                    *at,
                ),
                Op::Like(u, uri) => $target.index_record(
                    &did(*u),
                    &Nsid::parse(known::LIKE).unwrap(),
                    &format!("l{}", *$seq),
                    &Record::Like(LikeRecord {
                        subject: uri.clone(),
                        created_at: base(),
                    }),
                    base(),
                ),
                Op::Repost(u, uri) => $target.index_record(
                    &did(*u),
                    &Nsid::parse(known::REPOST).unwrap(),
                    &format!("r{}", *$seq),
                    &Record::Repost(RepostRecord {
                        subject: uri.clone(),
                        created_at: base(),
                    }),
                    base(),
                ),
                Op::Follow(u, v) => $target.index_record(
                    &did(*u),
                    &Nsid::parse(known::FOLLOW).unwrap(),
                    &format!("f{}", *$seq),
                    &Record::Follow(FollowRecord {
                        subject: did(*v),
                        created_at: base(),
                    }),
                    base(),
                ),
                Op::Block(u, v) => $target.index_record(
                    &did(*u),
                    &Nsid::parse(known::BLOCK).unwrap(),
                    &format!("b{}", *$seq),
                    &Record::Block(BlockRecord {
                        subject: did(*v),
                        created_at: base(),
                    }),
                    base(),
                ),
                Op::Profile(u) => $target.index_record(
                    &did(*u),
                    &Nsid::parse(known::PROFILE).unwrap(),
                    "self",
                    &Record::Profile(ProfileRecord {
                        display_name: format!("user {u}"),
                        description: "prop".into(),
                        has_avatar: true,
                        has_banner: false,
                        created_at: base(),
                    }),
                    base(),
                ),
                Op::RemovePost(uri) => $target.remove_post(uri),
                Op::Tombstone(u) => $target.process_event(&Event {
                    seq: *$seq,
                    time: base(),
                    body: EventBody::Tombstone { did: did(*u) },
                }),
                Op::HandleChange(u) => $target.process_event(&Event {
                    seq: *$seq,
                    time: base(),
                    body: EventBody::HandleChange {
                        did: did(*u),
                        handle: Handle::parse(&format!("user{u}-new.example.org")).unwrap(),
                    },
                }),
                Op::Label(uri, value, negated) => {
                    let mut label = Label::new(
                        labeler.clone(),
                        LabelTarget::Record(uri.clone()),
                        value.as_str(),
                        base(),
                    )
                    .unwrap();
                    label.negated = *negated;
                    $target.ingest_label(&label);
                }
                Op::AccountLabel(u, value, negated) => {
                    let mut label = Label::new(
                        labeler.clone(),
                        LabelTarget::Account(did(*u)),
                        value.as_str(),
                        base(),
                    )
                    .unwrap();
                    label.negated = *negated;
                    $target.ingest_label(&label);
                }
            }
            *$seq += 1;
        }};
    }

    fn assert_same_state(oracle: &AppViewIndex, shards: &AppViewShards) {
        // Aggregate counts and counters.
        assert_eq!(shards.post_count(), oracle.post_count());
        assert_eq!(shards.actor_count(), oracle.actor_count());
        assert_eq!(shards.follow_edge_count(), oracle.follow_edge_count());
        assert_eq!(shards.records_indexed(), oracle.records_indexed());
        assert_eq!(shards.events_processed(), oracle.events_processed());
        assert_eq!(shards.labels_ingested(), oracle.labels_ingested());
        assert_eq!(shards.labels_preindex(), oracle.labels_preindex());
        // Full per-entity state (includes like/repost counts and label
        // sets), via the canonical key-ordered dumps.
        assert_eq!(shards.posts(), oracle.posts());
        assert_eq!(shards.actors(), oracle.actors());
        // Query fan-out: timelines and point lookups answer identically
        // without materializing the merge.
        for u in 0..6 {
            let d = did(u);
            assert_eq!(
                shards.following_timeline(&d, 25),
                oracle.following_timeline(&d, 25),
                "timeline for user {u}"
            );
            assert_eq!(shards.actor(&d), oracle.actor(&d));
            for v in 0..6 {
                assert_eq!(shards.follows(&d, &did(v)), oracle.follows(&d, &did(v)));
                assert_eq!(shards.blocks(&d, &did(v)), oracle.blocks(&d, &did(v)));
            }
        }
    }

    /// The tentpole property: random event/label interleavings applied to
    /// sharded sets (1, 2, 4, 7 shards) are indistinguishable from the
    /// monolithic oracle — live queries and the merged index alike. Flushes
    /// run at *different* cadences on the two sides and the write-back
    /// cache alternates per round, pinning that both are observationally
    /// transparent.
    #[test]
    fn sharded_interleavings_match_monolithic_oracle() {
        for round in 0..6u64 {
            let mut rng = TestRng::new(0xa99_71e0 + round);
            let mut minted = Vec::new();
            let ops: Vec<Op> = (0..250).map(|_| arb_op(&mut rng, &mut minted)).collect();

            let mut oracle = AppViewIndex::new();
            let mut seq = 1u64;
            for (i, op) in ops.iter().enumerate() {
                apply_op!(&mut oracle, op, &mut seq);
                if i % 100 == 99 {
                    oracle.flush();
                }
            }

            for count in [1usize, 2, 4, 7] {
                // Alternate store backends so the spill path is part of the
                // property, not a separate best-case test.
                let store = if round % 2 == 0 {
                    StoreConfig::mem()
                } else {
                    StoreConfig::paged().page_size(512).resident_pages(1)
                };
                let write_back = round % 3 != 0;
                let mut shards = AppViewShards::with_shards(count, &store, write_back);
                let mut seq = 1u64;
                for (i, op) in ops.iter().enumerate() {
                    apply_op!(&mut shards, op, &mut seq);
                    if i % 60 == 59 {
                        shards.flush();
                    }
                }
                assert_same_state(&oracle, &shards);
                // And the associative merge collapses to the oracle.
                let merged = shards.clone().into_merged();
                assert_eq!(merged.posts(), oracle.posts(), "{count} shards");
                assert_eq!(merged.actors(), oracle.actors(), "{count} shards");
                assert_eq!(merged.follow_edge_count(), oracle.follow_edge_count());
                assert_eq!(merged.records_indexed(), oracle.records_indexed());
                assert_eq!(merged.labels_ingested(), oracle.labels_ingested());
                assert_eq!(merged.labels_preindex(), oracle.labels_preindex());
                // Entities spread across shards when there is more than one.
                if count > 1 {
                    let populated = shards
                        .shards()
                        .iter()
                        .filter(|s| s.post_count() + s.actor_count() > 0)
                        .count();
                    assert!(populated > 1, "{count} shards: entities not partitioned");
                }
            }
        }
    }

    /// Shard-wise merge of two shard sets over *disjoint entity
    /// partitions* (the engine-shard world shape: each engine shard's
    /// AppView sees only its own users' entities) equals ingesting both
    /// streams into one set, and is associative.
    #[test]
    fn shard_sets_merge_associatively() {
        let store = StoreConfig::mem();
        let mut whole = AppViewShards::with_shards(4, &store, true);
        let mut parts = [
            AppViewShards::with_shards(4, &store, true),
            AppViewShards::with_shards(4, &store, false),
            AppViewShards::with_shards(4, &store, true),
        ];
        let mut rng = TestRng::new(0x117_c0de);
        let mut minted = Vec::new();
        let mut seq = 1u64;
        for _ in 0..150 {
            let op = arb_op(&mut rng, &mut minted);
            // Route each op to the partition owning its originating entity
            // (DID parity-ish split), like engine shards do — so the three
            // partitions hold disjoint entity sets.
            let owner = match &op {
                Op::Upsert(u)
                | Op::Post(u, _, _)
                | Op::Like(u, _)
                | Op::Repost(u, _)
                | Op::Follow(u, _)
                | Op::Block(u, _)
                | Op::Profile(u)
                | Op::Tombstone(u)
                | Op::HandleChange(u)
                | Op::AccountLabel(u, _, _) => (*u % 3) as usize,
                // Post-targeted ops go to the partition owning the post's
                // *author* (posts were partitioned by author above).
                Op::RemovePost(uri) | Op::Label(uri, _, _) => {
                    let author = (0..6)
                        .find(|u| &did(*u) == uri.did())
                        .expect("known author");
                    (author % 3) as usize
                }
            };
            let frozen = seq;
            apply_op!(&mut whole, &op, &mut seq);
            let mut part_seq = frozen;
            apply_op!(&mut parts[owner], &op, &mut part_seq);
        }
        // NOTE: the partitions are *not* a faithful engine-shard simulation
        // (cross-partition likes/follow targets miss), so the contract is
        // checked on the split-insensitive surfaces: counter totals and the
        // edge sets, plus associativity of the merge itself.
        let [a, b, c] = parts;
        let mut left_assoc = a.clone();
        left_assoc.merge(b.clone());
        left_assoc.merge(c.clone());
        let mut right_assoc = b;
        right_assoc.merge(c);
        let mut right_total = a;
        right_total.merge(right_assoc);
        assert_eq!(left_assoc.records_indexed(), whole.records_indexed());
        assert_eq!(left_assoc.events_processed(), whole.events_processed());
        assert_eq!(left_assoc.labels_ingested(), whole.labels_ingested());
        assert_eq!(left_assoc.post_count(), whole.post_count());
        assert_eq!(left_assoc.actor_count(), whole.actor_count());
        assert_eq!(left_assoc.records_indexed(), right_total.records_indexed());
        assert_eq!(left_assoc.posts(), right_total.posts());
        assert_eq!(left_assoc.actors(), right_total.actors());
    }
}
