//! The AppView's indices.
//!
//! The AppView consumes the firehose and the label streams, stores everything
//! in queryable indices, and serves the client-facing API (§2). These indices
//! are also what the measurement pipeline's AppView-based endpoints
//! (`getFeedGenerator`, `getFeed`) read from.

use bsky_atproto::firehose::{Event, EventBody};
use bsky_atproto::label::{Label, LabelTarget};
use bsky_atproto::record::{PostRecord, ProfileRecord, Record};
use bsky_atproto::{AtUri, Datetime, Did, Handle, Nsid};
use std::collections::{BTreeMap, BTreeSet};

/// Indexed information about a post.
#[derive(Debug, Clone, PartialEq)]
pub struct PostInfo {
    /// The post's `at://` URI.
    pub uri: AtUri,
    /// The author.
    pub author: Did,
    /// The record contents.
    pub record: PostRecord,
    /// When the AppView indexed it.
    pub indexed_at: Datetime,
    /// Likes counted so far.
    pub like_count: u64,
    /// Reposts counted so far.
    pub repost_count: u64,
    /// Labels currently applied (source DID, value).
    pub labels: Vec<(Did, String)>,
}

/// Indexed information about an actor (account).
#[derive(Debug, Clone, PartialEq)]
pub struct ActorInfo {
    /// The account DID.
    pub did: Did,
    /// Current handle.
    pub handle: Handle,
    /// Profile record, if one was published.
    pub profile: Option<ProfileRecord>,
    /// Number of accounts this actor follows.
    pub follows: u64,
    /// Number of accounts following this actor.
    pub followers: u64,
    /// Number of posts indexed for this actor.
    pub posts: u64,
    /// Number of block operations targeting this actor.
    pub blocked_by: u64,
    /// Labels applied to the whole account.
    pub account_labels: Vec<(Did, String)>,
    /// Whether the account has been tombstoned.
    pub deleted: bool,
}

/// The AppView's combined index.
#[derive(Debug, Clone, Default)]
pub struct AppViewIndex {
    posts: BTreeMap<String, PostInfo>,
    actors: BTreeMap<String, ActorInfo>,
    follow_edges: BTreeSet<(String, String)>,
    block_edges: BTreeSet<(String, String)>,
    events_processed: u64,
    records_indexed: u64,
    labels_ingested: u64,
}

impl AppViewIndex {
    /// Create an empty index.
    pub fn new() -> AppViewIndex {
        AppViewIndex::default()
    }

    /// Register an account (from an identity event or backfill).
    pub fn upsert_actor(&mut self, did: &Did, handle: &Handle) {
        let key = did.to_string();
        self.actors
            .entry(key)
            .and_modify(|a| a.handle = handle.clone())
            .or_insert_with(|| ActorInfo {
                did: did.clone(),
                handle: handle.clone(),
                profile: None,
                follows: 0,
                followers: 0,
                posts: 0,
                blocked_by: 0,
                account_labels: Vec::new(),
                deleted: false,
            });
    }

    /// Index a record authored by `author` (the content counterpart of a
    /// firehose commit op).
    pub fn index_record(
        &mut self,
        author: &Did,
        collection: &Nsid,
        rkey: &str,
        record: &Record,
        at: Datetime,
    ) {
        self.records_indexed += 1;
        let author_key = author.to_string();
        match record {
            Record::Post(post) => {
                let uri = AtUri::record(author.clone(), collection.clone(), rkey);
                self.posts.insert(
                    uri.to_string(),
                    PostInfo {
                        uri,
                        author: author.clone(),
                        record: post.clone(),
                        indexed_at: at,
                        like_count: 0,
                        repost_count: 0,
                        labels: Vec::new(),
                    },
                );
                if let Some(actor) = self.actors.get_mut(&author_key) {
                    actor.posts += 1;
                }
            }
            Record::Like(like) => {
                if let Some(post) = self.posts.get_mut(&like.subject.to_string()) {
                    post.like_count += 1;
                }
            }
            Record::Repost(repost) => {
                if let Some(post) = self.posts.get_mut(&repost.subject.to_string()) {
                    post.repost_count += 1;
                }
            }
            Record::Follow(follow) => {
                let edge = (author_key.clone(), follow.subject.to_string());
                if self.follow_edges.insert(edge) {
                    if let Some(actor) = self.actors.get_mut(&author_key) {
                        actor.follows += 1;
                    }
                    if let Some(target) = self.actors.get_mut(&follow.subject.to_string()) {
                        target.followers += 1;
                    }
                }
            }
            Record::Block(block) => {
                let edge = (author_key.clone(), block.subject.to_string());
                if self.block_edges.insert(edge) {
                    if let Some(target) = self.actors.get_mut(&block.subject.to_string()) {
                        target.blocked_by += 1;
                    }
                }
            }
            Record::Profile(profile) => {
                if let Some(actor) = self.actors.get_mut(&author_key) {
                    actor.profile = Some(profile.clone());
                }
            }
            // Feed generator and labeler declarations are tracked by their
            // dedicated registries; unknown lexicons are not indexed by the
            // Bluesky AppView (it cannot decode them, §4).
            Record::FeedGenerator(_) | Record::LabelerService(_) | Record::Unknown(_) => {}
        }
    }

    /// Remove a post from the index (a delete op).
    pub fn remove_post(&mut self, uri: &AtUri) {
        if let Some(info) = self.posts.remove(&uri.to_string()) {
            if let Some(actor) = self.actors.get_mut(&info.author.to_string()) {
                actor.posts = actor.posts.saturating_sub(1);
            }
        }
    }

    /// Process a firehose event's non-content effects (handle changes,
    /// identity updates, tombstones).
    pub fn process_event(&mut self, event: &Event) {
        self.events_processed += 1;
        match &event.body {
            EventBody::HandleChange { did, handle } => {
                self.upsert_actor(did, handle);
            }
            EventBody::Tombstone { did } => {
                if let Some(actor) = self.actors.get_mut(&did.to_string()) {
                    actor.deleted = true;
                }
                // Purge the account's posts.
                let prefix = format!("at://{did}/");
                let to_remove: Vec<String> = self
                    .posts
                    .range(prefix.clone()..format!("{prefix}\u{10FFFF}"))
                    .map(|(k, _)| k.clone())
                    .collect();
                for key in to_remove {
                    self.posts.remove(&key);
                }
            }
            EventBody::Commit { .. } | EventBody::Identity { .. } | EventBody::Info { .. } => {}
        }
    }

    /// Ingest a label from a labeler stream, applying or rescinding it.
    pub fn ingest_label(&mut self, label: &Label) {
        self.labels_ingested += 1;
        let entry = (label.src.clone(), label.value.clone());
        match &label.target {
            LabelTarget::Record(uri) => {
                if let Some(post) = self.posts.get_mut(&uri.to_string()) {
                    if label.negated {
                        post.labels.retain(|e| e != &entry);
                    } else if !post.labels.contains(&entry) {
                        post.labels.push(entry);
                    }
                }
            }
            LabelTarget::Account(did) | LabelTarget::ProfileMedia(did) => {
                if let Some(actor) = self.actors.get_mut(&did.to_string()) {
                    if label.negated {
                        actor.account_labels.retain(|e| e != &entry);
                    } else if !actor.account_labels.contains(&entry) {
                        actor.account_labels.push(entry);
                    }
                }
            }
        }
    }

    /// Look up a post.
    pub fn post(&self, uri: &AtUri) -> Option<&PostInfo> {
        self.posts.get(&uri.to_string())
    }

    /// Look up an actor.
    pub fn actor(&self, did: &Did) -> Option<&ActorInfo> {
        self.actors.get(&did.to_string())
    }

    /// Whether `a` follows `b`.
    pub fn follows(&self, a: &Did, b: &Did) -> bool {
        self.follow_edges.contains(&(a.to_string(), b.to_string()))
    }

    /// Whether `a` blocks `b`.
    pub fn blocks(&self, a: &Did, b: &Did) -> bool {
        self.block_edges.contains(&(a.to_string(), b.to_string()))
    }

    /// Number of indexed posts.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }

    /// Number of known actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of follow edges.
    pub fn follow_edge_count(&self) -> usize {
        self.follow_edges.len()
    }

    /// Iterate all posts.
    pub fn posts(&self) -> impl Iterator<Item = &PostInfo> {
        self.posts.values()
    }

    /// Iterate all actors.
    pub fn actors(&self) -> impl Iterator<Item = &ActorInfo> {
        self.actors.values()
    }

    /// Total labels ingested (including negations).
    pub fn labels_ingested(&self) -> u64 {
        self.labels_ingested
    }

    /// Total records indexed.
    pub fn records_indexed(&self) -> u64 {
        self.records_indexed
    }

    /// Total firehose events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The most recent posts by accounts `viewer` follows (a simple
    /// "following" timeline).
    pub fn following_timeline(&self, viewer: &Did, limit: usize) -> Vec<&PostInfo> {
        let mut posts: Vec<&PostInfo> = self
            .posts
            .values()
            .filter(|p| self.follows(viewer, &p.author))
            .collect();
        posts.sort_by_key(|p| std::cmp::Reverse(p.record.created_at));
        posts.truncate(limit);
        posts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{FollowRecord, LikeRecord};

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 15, 9, 0, 0).unwrap()
    }

    fn did(name: &str) -> Did {
        Did::plc_from_seed(name.as_bytes())
    }

    fn post_nsid() -> Nsid {
        Nsid::parse(known::POST).unwrap()
    }

    fn setup() -> (AppViewIndex, Did, Did, AtUri) {
        let mut index = AppViewIndex::new();
        let alice = did("alice");
        let bob = did("bob");
        index.upsert_actor(&alice, &Handle::parse("alice.bsky.social").unwrap());
        index.upsert_actor(&bob, &Handle::parse("bob.bsky.social").unwrap());
        index.index_record(
            &alice,
            &post_nsid(),
            "post00000001",
            &Record::Post(PostRecord::simple("hello world", "en", now())),
            now(),
        );
        let uri = AtUri::record(alice.clone(), post_nsid(), "post00000001");
        (index, alice, bob, uri)
    }

    #[test]
    fn posts_likes_reposts_follows_blocks() {
        let (mut index, alice, bob, uri) = setup();
        assert_eq!(index.post_count(), 1);
        assert_eq!(index.actor(&alice).unwrap().posts, 1);

        index.index_record(
            &bob,
            &Nsid::parse(known::LIKE).unwrap(),
            "like00000001",
            &Record::Like(LikeRecord {
                subject: uri.clone(),
                created_at: now(),
            }),
            now(),
        );
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "follow0000001",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert_eq!(index.post(&uri).unwrap().like_count, 1);
        assert!(index.follows(&bob, &alice));
        assert!(!index.follows(&alice, &bob));
        assert_eq!(index.actor(&alice).unwrap().followers, 1);
        assert_eq!(index.actor(&bob).unwrap().follows, 1);

        // Duplicate follow records do not double-count.
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "follow0000002",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert_eq!(index.actor(&alice).unwrap().followers, 1);

        index.index_record(
            &alice,
            &Nsid::parse(known::BLOCK).unwrap(),
            "block0000001",
            &Record::Block(bsky_atproto::record::BlockRecord {
                subject: bob.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert!(index.blocks(&alice, &bob));
        assert_eq!(index.actor(&bob).unwrap().blocked_by, 1);
        assert_eq!(index.records_indexed(), 5);
    }

    #[test]
    fn labels_apply_and_rescind() {
        let (mut index, _alice, _bob, uri) = setup();
        let labeler = did("labeler");
        let label = Label::new(
            labeler.clone(),
            LabelTarget::Record(uri.clone()),
            "porn",
            now(),
        )
        .unwrap();
        index.ingest_label(&label);
        assert_eq!(index.post(&uri).unwrap().labels.len(), 1);
        // Duplicate application is idempotent.
        index.ingest_label(&label);
        assert_eq!(index.post(&uri).unwrap().labels.len(), 1);
        index.ingest_label(&label.negation(now()));
        assert!(index.post(&uri).unwrap().labels.is_empty());
        assert_eq!(index.labels_ingested(), 3);

        // Account-level labels.
        let account_label =
            Label::new(labeler, LabelTarget::Account(did("alice")), "spam", now()).unwrap();
        index.ingest_label(&account_label);
        assert_eq!(index.actor(&did("alice")).unwrap().account_labels.len(), 1);
    }

    #[test]
    fn tombstone_purges_posts() {
        let (mut index, alice, _bob, uri) = setup();
        let event = Event {
            seq: 1,
            time: now(),
            body: EventBody::Tombstone { did: alice.clone() },
        };
        index.process_event(&event);
        assert!(index.post(&uri).is_none());
        assert!(index.actor(&alice).unwrap().deleted);
        assert_eq!(index.events_processed(), 1);
    }

    #[test]
    fn handle_change_events_update_actors() {
        let (mut index, alice, _bob, _uri) = setup();
        index.process_event(&Event {
            seq: 2,
            time: now(),
            body: EventBody::HandleChange {
                did: alice.clone(),
                handle: Handle::parse("alice.example.com").unwrap(),
            },
        });
        assert_eq!(
            index.actor(&alice).unwrap().handle.as_str(),
            "alice.example.com"
        );
    }

    #[test]
    fn remove_post_and_timeline() {
        let (mut index, alice, bob, uri) = setup();
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "f1",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        // Bob follows Alice, so Bob's timeline shows Alice's post.
        let timeline = index.following_timeline(&bob, 10);
        assert_eq!(timeline.len(), 1);
        // Alice follows nobody.
        assert!(index.following_timeline(&alice, 10).is_empty());
        index.remove_post(&uri);
        assert_eq!(index.post_count(), 0);
        assert_eq!(index.actor(&alice).unwrap().posts, 0);
        assert!(index.following_timeline(&bob, 10).is_empty());
    }
}
