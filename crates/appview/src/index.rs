//! The AppView's indices.
//!
//! The AppView consumes the firehose and the label streams, stores everything
//! in queryable indices, and serves the client-facing API (§2). These indices
//! are also what the measurement pipeline's AppView-based endpoints
//! (`getFeedGenerator`, `getFeed`) read from.
//!
//! ## Store-backed entity state
//!
//! Per-entity state — one [`PostInfo`] per indexed post, one [`ActorInfo`]
//! per known account — is not held in plain maps: each entity is encoded as
//! a DAG-CBOR block and kept in a pluggable
//! [`bsky_atproto::blockstore::BlockStore`], with only a `key → CID` index
//! (plus the graph edge sets and counters) resident in memory. With the
//! default [`MemStore`](bsky_atproto::blockstore::MemStore) this behaves
//! like the old in-memory maps; with the paged backend cold entities spill
//! to disk and are CID-verified on read-back, which removes the AppView from
//! the per-shard memory ceiling (see the crate docs). Because the entity key
//! (AT-URI or DID) is embedded in every block, block CIDs are unique per
//! entity and read-modify-write updates (`delete` old CID, `put` new) can
//! never clobber another entity's block.
//!
//! ## Ingestion primitives
//!
//! A single logical ingestion step can touch several entities — indexing a
//! follow record updates the edge set, the follower's `follows` counter and
//! the target's `followers` counter. [`AppViewIndex`] therefore exposes the
//! per-entity *primitives* ([`AppViewIndex::insert_post`],
//! [`AppViewIndex::credit_follows`], …) alongside the composed entry points
//! ([`AppViewIndex::index_record`], [`AppViewIndex::process_event`]). The
//! entity-sharded [`crate::shards::AppViewShards`] routes each primitive to
//! the shard owning the touched entity; because the monolithic entry points
//! are implemented *in terms of* the same primitives, the sharded index is
//! equivalent to the monolithic one by construction (and pinned by the
//! property test in `shards.rs`).

use bsky_atproto::blockstore::{BlockStore, StoreConfig, StoreStats};
use bsky_atproto::cbor::{self, Value};
use bsky_atproto::cid::Cid;
use bsky_atproto::firehose::{Event, EventBody};
use bsky_atproto::label::{Label, LabelTarget};
use bsky_atproto::record::{PostRecord, ProfileRecord, Record};
use bsky_atproto::{AtUri, Datetime, Did, Handle, Nsid};
use std::collections::{BTreeMap, BTreeSet};

/// Indexed information about a post.
#[derive(Debug, Clone, PartialEq)]
pub struct PostInfo {
    /// The post's `at://` URI.
    pub uri: AtUri,
    /// The author.
    pub author: Did,
    /// The record contents.
    pub record: PostRecord,
    /// When the AppView indexed it.
    pub indexed_at: Datetime,
    /// Likes counted so far.
    pub like_count: u64,
    /// Reposts counted so far.
    pub repost_count: u64,
    /// Labels currently applied (source DID, value).
    pub labels: Vec<(Did, String)>,
}

impl PostInfo {
    /// Encode as a DAG-CBOR block (the AppView's storage representation).
    pub fn to_block(&self) -> Vec<u8> {
        cbor::encode(&Value::map([
            ("uri", Value::text(self.uri.to_string())),
            ("author", Value::text(self.author.to_string())),
            ("record", Record::Post(self.record.clone()).to_value()),
            ("indexedAt", Value::Int(self.indexed_at.timestamp())),
            ("likes", Value::Int(self.like_count as i64)),
            ("reposts", Value::Int(self.repost_count as i64)),
            ("labels", labels_to_value(&self.labels)),
        ]))
    }

    /// Decode from a DAG-CBOR block. `None` on any mismatch — the store
    /// contract already maps corrupt blocks to "absent", and the index
    /// treats an undecodable entity the same way.
    pub fn from_block(bytes: &[u8]) -> Option<PostInfo> {
        let value = cbor::decode(bytes).ok()?;
        let record = match Record::from_value(value.get("record")?).ok()? {
            Record::Post(post) => post,
            _ => return None,
        };
        Some(PostInfo {
            uri: AtUri::parse(value.get("uri")?.as_text()?).ok()?,
            author: Did::parse(value.get("author")?.as_text()?).ok()?,
            record,
            indexed_at: Datetime(value.get("indexedAt")?.as_int()?),
            like_count: value.get("likes")?.as_int()? as u64,
            repost_count: value.get("reposts")?.as_int()? as u64,
            labels: labels_from_value(value.get("labels")?)?,
        })
    }
}

/// Indexed information about an actor (account).
#[derive(Debug, Clone, PartialEq)]
pub struct ActorInfo {
    /// The account DID.
    pub did: Did,
    /// Current handle.
    pub handle: Handle,
    /// Profile record, if one was published.
    pub profile: Option<ProfileRecord>,
    /// Number of accounts this actor follows.
    pub follows: u64,
    /// Number of accounts following this actor.
    pub followers: u64,
    /// Number of posts indexed for this actor.
    pub posts: u64,
    /// Number of block operations targeting this actor.
    pub blocked_by: u64,
    /// Labels applied to the whole account.
    pub account_labels: Vec<(Did, String)>,
    /// Whether the account has been tombstoned.
    pub deleted: bool,
}

impl ActorInfo {
    fn fresh(did: &Did, handle: &Handle) -> ActorInfo {
        ActorInfo {
            did: did.clone(),
            handle: handle.clone(),
            profile: None,
            follows: 0,
            followers: 0,
            posts: 0,
            blocked_by: 0,
            account_labels: Vec::new(),
            deleted: false,
        }
    }

    /// Encode as a DAG-CBOR block (the AppView's storage representation).
    pub fn to_block(&self) -> Vec<u8> {
        cbor::encode(&Value::map([
            ("did", Value::text(self.did.to_string())),
            ("handle", Value::text(self.handle.as_str())),
            (
                "profile",
                match &self.profile {
                    Some(profile) => Record::Profile(profile.clone()).to_value(),
                    None => Value::Null,
                },
            ),
            ("follows", Value::Int(self.follows as i64)),
            ("followers", Value::Int(self.followers as i64)),
            ("posts", Value::Int(self.posts as i64)),
            ("blockedBy", Value::Int(self.blocked_by as i64)),
            ("accountLabels", labels_to_value(&self.account_labels)),
            ("deleted", Value::Bool(self.deleted)),
        ]))
    }

    /// Decode from a DAG-CBOR block (`None` on any mismatch).
    pub fn from_block(bytes: &[u8]) -> Option<ActorInfo> {
        let value = cbor::decode(bytes).ok()?;
        let profile = match value.get("profile")? {
            Value::Null => None,
            profile => match Record::from_value(profile).ok()? {
                Record::Profile(profile) => Some(profile),
                _ => return None,
            },
        };
        Some(ActorInfo {
            did: Did::parse(value.get("did")?.as_text()?).ok()?,
            handle: Handle::parse(value.get("handle")?.as_text()?).ok()?,
            profile,
            follows: value.get("follows")?.as_int()? as u64,
            followers: value.get("followers")?.as_int()? as u64,
            posts: value.get("posts")?.as_int()? as u64,
            blocked_by: value.get("blockedBy")?.as_int()? as u64,
            account_labels: labels_from_value(value.get("accountLabels")?)?,
            deleted: value.get("deleted")?.as_bool()?,
        })
    }
}

fn labels_to_value(labels: &[(Did, String)]) -> Value {
    Value::Array(
        labels
            .iter()
            .map(|(src, value)| {
                Value::Array(vec![Value::text(src.to_string()), Value::text(value)])
            })
            .collect(),
    )
}

fn labels_from_value(value: &Value) -> Option<Vec<(Did, String)>> {
    value
        .as_array()?
        .iter()
        .map(|pair| {
            let pair = pair.as_array()?;
            Some((
                Did::parse(pair.first()?.as_text()?).ok()?,
                pair.get(1)?.as_text()?.to_string(),
            ))
        })
        .collect()
}

/// Canonical timeline order: newest first by the post's self-reported
/// creation time, ties broken by URI (ascending). Every query surface —
/// monolithic and sharded fan-out alike — sorts with exactly this
/// comparator, so shard counts can never reorder a timeline.
pub(crate) fn sort_timeline(posts: &mut [PostInfo]) {
    posts.sort_by(|a, b| {
        b.record
            .created_at
            .cmp(&a.record.created_at)
            .then_with(|| a.uri.cmp(&b.uri))
    });
}

/// The AppView's combined index (one entity shard of it, when owned by
/// [`crate::shards::AppViewShards`]).
///
/// Entity state lives as CBOR blocks in the backing store; see the module
/// docs for the storage layout and the primitive/composed ingestion split.
#[derive(Debug, Clone)]
pub struct AppViewIndex {
    /// Post key (AT-URI string) → block CID.
    posts: BTreeMap<String, Cid>,
    /// Actor key (DID string) → block CID.
    actors: BTreeMap<String, Cid>,
    store: Box<dyn BlockStore>,
    /// `(follower, followed)` DID pairs, keyed by the follower.
    follow_edges: BTreeSet<(String, String)>,
    /// `(blocker, blocked)` DID pairs, keyed by the blocker.
    block_edges: BTreeSet<(String, String)>,
    events_processed: u64,
    records_indexed: u64,
    labels_ingested: u64,
    labels_preindex: u64,
    lost_entities: u64,
}

impl Default for AppViewIndex {
    fn default() -> AppViewIndex {
        AppViewIndex::new()
    }
}

impl AppViewIndex {
    /// Create an empty index over the in-memory block store.
    pub fn new() -> AppViewIndex {
        AppViewIndex::with_store(&StoreConfig::default())
    }

    /// Create an empty index over an explicit block-store backend. The
    /// backend changes only where entity blocks reside (memory vs paged
    /// disk spill), never a query result.
    pub fn with_store(store: &StoreConfig) -> AppViewIndex {
        AppViewIndex {
            posts: BTreeMap::new(),
            actors: BTreeMap::new(),
            store: store.build(),
            follow_edges: BTreeSet::new(),
            block_edges: BTreeSet::new(),
            events_processed: 0,
            records_indexed: 0,
            labels_ingested: 0,
            labels_preindex: 0,
            lost_entities: 0,
        }
    }

    // -- block plumbing ----------------------------------------------------

    fn load_post_key(&self, key: &str) -> Option<PostInfo> {
        let cid = self.posts.get(key)?;
        PostInfo::from_block(&self.store.get(cid)?)
    }

    fn save_post(&mut self, info: &PostInfo) {
        let bytes = info.to_block();
        let cid = Cid::for_cbor(&bytes);
        if let Some(old) = self.posts.insert(info.uri.to_string(), cid) {
            if old != cid {
                self.store.delete(&old);
            }
        }
        self.store.put(cid, bytes);
    }

    fn load_actor_key(&self, key: &str) -> Option<ActorInfo> {
        let cid = self.actors.get(key)?;
        ActorInfo::from_block(&self.store.get(cid)?)
    }

    fn save_actor(&mut self, info: &ActorInfo) {
        let bytes = info.to_block();
        let cid = Cid::for_cbor(&bytes);
        if let Some(old) = self.actors.insert(info.did.to_string(), cid) {
            if old != cid {
                self.store.delete(&old);
            }
        }
        self.store.put(cid, bytes);
    }

    fn update_post(&mut self, key: &str, apply: impl FnOnce(&mut PostInfo)) {
        if let Some(mut info) = self.load_post_key(key) {
            apply(&mut info);
            self.save_post(&info);
        }
    }

    fn update_actor(&mut self, key: &str, apply: impl FnOnce(&mut ActorInfo)) {
        if let Some(mut info) = self.load_actor_key(key) {
            apply(&mut info);
            self.save_actor(&info);
        }
    }

    // -- ingestion primitives (the shard router's surface) -----------------

    /// Register an account (from an identity event or backfill). Targets
    /// the actor entity only.
    pub fn upsert_actor(&mut self, did: &Did, handle: &Handle) {
        let key = did.to_string();
        let mut info = self
            .load_actor_key(&key)
            .unwrap_or_else(|| ActorInfo::fresh(did, handle));
        info.handle = handle.clone();
        self.save_actor(&info);
    }

    /// Count one indexed record (part of every [`AppViewIndex::index_record`]).
    pub fn count_record(&mut self) {
        self.records_indexed += 1;
    }

    /// Insert (or replace) a post entity. Targets the post entity only —
    /// the author's post counter is [`AppViewIndex::credit_author_post`].
    pub fn insert_post(&mut self, info: PostInfo) {
        self.save_post(&info);
    }

    /// Credit one post to an author's counter (no-op for unknown actors,
    /// like the live AppView's denormalized counts).
    pub fn credit_author_post(&mut self, author: &Did) {
        self.update_actor(&author.to_string(), |a| a.posts += 1);
    }

    /// Debit one post from an author's counter (saturating).
    pub fn debit_author_post(&mut self, author: &Did) {
        self.update_actor(&author.to_string(), |a| a.posts = a.posts.saturating_sub(1));
    }

    /// Count a like on a post (no-op when the post is unknown).
    pub fn apply_like(&mut self, subject: &AtUri) {
        self.update_post(&subject.to_string(), |p| p.like_count += 1);
    }

    /// Count a repost (no-op when the post is unknown).
    pub fn apply_repost(&mut self, subject: &AtUri) {
        self.update_post(&subject.to_string(), |p| p.repost_count += 1);
    }

    /// Insert a follow edge (keyed by the follower). Returns `true` when
    /// the edge is new — the caller then credits both endpoint counters.
    pub fn insert_follow_edge(&mut self, follower: &Did, followed: &Did) -> bool {
        self.follow_edges
            .insert((follower.to_string(), followed.to_string()))
    }

    /// Credit one follow to the follower's counter (no-op when unknown).
    pub fn credit_follows(&mut self, follower: &Did) {
        self.update_actor(&follower.to_string(), |a| a.follows += 1);
    }

    /// Credit one follower to the followed account's counter.
    pub fn credit_followers(&mut self, followed: &Did) {
        self.update_actor(&followed.to_string(), |a| a.followers += 1);
    }

    /// Insert a block edge (keyed by the blocker). Returns `true` when new.
    pub fn insert_block_edge(&mut self, blocker: &Did, blocked: &Did) -> bool {
        self.block_edges
            .insert((blocker.to_string(), blocked.to_string()))
    }

    /// Credit one block against the blocked account's counter.
    pub fn credit_blocked_by(&mut self, blocked: &Did) {
        self.update_actor(&blocked.to_string(), |a| a.blocked_by += 1);
    }

    /// Attach a profile record to an actor (no-op when unknown).
    pub fn set_profile(&mut self, author: &Did, profile: &ProfileRecord) {
        let profile = profile.clone();
        self.update_actor(&author.to_string(), move |a| a.profile = Some(profile));
    }

    /// Remove a post entity, returning it (the caller debits the author's
    /// counter, which may live on another shard).
    pub fn take_post(&mut self, uri: &AtUri) -> Option<PostInfo> {
        let key = uri.to_string();
        let info = self.load_post_key(&key);
        if let Some(cid) = self.posts.remove(&key) {
            self.store.delete(&cid);
        }
        info
    }

    /// Count one firehose event (part of every
    /// [`AppViewIndex::process_event`]).
    pub fn count_event(&mut self) {
        self.events_processed += 1;
    }

    /// Mark an account tombstoned (no-op when unknown).
    pub fn mark_deleted(&mut self, did: &Did) {
        self.update_actor(&did.to_string(), |a| a.deleted = true);
    }

    /// Purge every post authored by `did` from this index's post map
    /// (tombstone handling; post counters are deliberately untouched, like
    /// the monolithic path).
    pub fn purge_posts_of(&mut self, did: &Did) {
        let prefix = format!("at://{did}/");
        let keys: Vec<String> = self
            .posts
            .range(prefix.clone()..format!("{prefix}\u{10FFFF}"))
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            if let Some(cid) = self.posts.remove(&key) {
                self.store.delete(&cid);
            }
        }
    }

    // -- composed ingestion (the monolithic entry points) ------------------

    /// Index a record authored by `author` (the content counterpart of a
    /// firehose commit op). Composed from the per-entity primitives above.
    pub fn index_record(
        &mut self,
        author: &Did,
        collection: &Nsid,
        rkey: &str,
        record: &Record,
        at: Datetime,
    ) {
        self.count_record();
        match record {
            Record::Post(post) => {
                let uri = AtUri::record(author.clone(), collection.clone(), rkey);
                self.insert_post(PostInfo {
                    uri,
                    author: author.clone(),
                    record: post.clone(),
                    indexed_at: at,
                    like_count: 0,
                    repost_count: 0,
                    labels: Vec::new(),
                });
                self.credit_author_post(author);
            }
            Record::Like(like) => self.apply_like(&like.subject),
            Record::Repost(repost) => self.apply_repost(&repost.subject),
            Record::Follow(follow) => {
                if self.insert_follow_edge(author, &follow.subject) {
                    self.credit_follows(author);
                    self.credit_followers(&follow.subject);
                }
            }
            Record::Block(block) => {
                if self.insert_block_edge(author, &block.subject) {
                    self.credit_blocked_by(&block.subject);
                }
            }
            Record::Profile(profile) => self.set_profile(author, profile),
            // Feed generator and labeler declarations are tracked by their
            // dedicated registries; unknown lexicons are not indexed by the
            // Bluesky AppView (it cannot decode them, §4).
            Record::FeedGenerator(_) | Record::LabelerService(_) | Record::Unknown(_) => {}
        }
    }

    /// Remove a post from the index (a delete op).
    pub fn remove_post(&mut self, uri: &AtUri) {
        if let Some(info) = self.take_post(uri) {
            self.debit_author_post(&info.author);
        }
    }

    /// Process a firehose event's non-content effects (handle changes,
    /// identity updates, tombstones).
    pub fn process_event(&mut self, event: &Event) {
        self.count_event();
        match &event.body {
            EventBody::HandleChange { did, handle } => {
                self.upsert_actor(did, handle);
            }
            EventBody::Tombstone { did } => {
                self.mark_deleted(did);
                self.purge_posts_of(did);
            }
            EventBody::Commit { .. } | EventBody::Identity { .. } | EventBody::Info { .. } => {}
        }
    }

    /// Ingest a label from a labeler stream, applying or rescinding it.
    ///
    /// A label whose target the AppView has not indexed (it arrived before
    /// the post, or the post was deleted) cannot be applied; it is counted
    /// into [`AppViewIndex::labels_preindex`] instead of vanishing silently.
    pub fn ingest_label(&mut self, label: &Label) {
        self.labels_ingested += 1;
        let entry = (label.src.clone(), label.value.clone());
        let negated = label.negated;
        let apply = move |labels: &mut Vec<(Did, String)>| {
            if negated {
                labels.retain(|e| e != &entry);
            } else if !labels.contains(&entry) {
                labels.push(entry);
            }
        };
        match &label.target {
            LabelTarget::Record(uri) => {
                let key = uri.to_string();
                match self.load_post_key(&key) {
                    Some(mut post) => {
                        apply(&mut post.labels);
                        self.save_post(&post);
                    }
                    None => self.labels_preindex += 1,
                }
            }
            LabelTarget::Account(did) | LabelTarget::ProfileMedia(did) => {
                let key = did.to_string();
                match self.load_actor_key(&key) {
                    Some(mut actor) => {
                        apply(&mut actor.account_labels);
                        self.save_actor(&actor);
                    }
                    None => self.labels_preindex += 1,
                }
            }
        }
    }

    // -- queries -----------------------------------------------------------

    /// Look up a post (decodes its block; spilled blocks page in verified).
    pub fn post(&self, uri: &AtUri) -> Option<PostInfo> {
        self.load_post_key(&uri.to_string())
    }

    /// Whether a post is indexed — a key-index probe, no block decode.
    pub fn has_post(&self, uri: &AtUri) -> bool {
        self.posts.contains_key(&uri.to_string())
    }

    /// Look up an actor.
    pub fn actor(&self, did: &Did) -> Option<ActorInfo> {
        self.load_actor_key(&did.to_string())
    }

    /// Whether `a` follows `b`.
    pub fn follows(&self, a: &Did, b: &Did) -> bool {
        self.follow_edges.contains(&(a.to_string(), b.to_string()))
    }

    /// Whether `a` blocks `b`.
    pub fn blocks(&self, a: &Did, b: &Did) -> bool {
        self.block_edges.contains(&(a.to_string(), b.to_string()))
    }

    /// Number of indexed posts.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }

    /// Number of known actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of follow edges.
    pub fn follow_edge_count(&self) -> usize {
        self.follow_edges.len()
    }

    /// All posts, decoded, in key (URI) order.
    pub fn posts(&self) -> Vec<PostInfo> {
        self.posts
            .keys()
            .filter_map(|key| self.load_post_key(key))
            .collect()
    }

    /// All actors, decoded, in key (DID) order.
    pub fn actors(&self) -> Vec<ActorInfo> {
        self.actors
            .keys()
            .filter_map(|key| self.load_actor_key(key))
            .collect()
    }

    /// Total labels ingested (including negations).
    pub fn labels_ingested(&self) -> u64 {
        self.labels_ingested
    }

    /// Labels that arrived before the entity they target was indexed (or
    /// after it was deleted) and could not be applied — counted, never
    /// silently dropped.
    pub fn labels_preindex(&self) -> u64 {
        self.labels_preindex
    }

    /// Entities dropped during [`AppViewIndex::merge`] because the source
    /// store had lost their block (corrupt spill files read as absent) —
    /// counted, never silent.
    pub fn lost_entities(&self) -> u64 {
        self.lost_entities
    }

    /// Total records indexed.
    pub fn records_indexed(&self) -> u64 {
        self.records_indexed
    }

    /// Total firehose events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The DIDs `viewer` follows (string form), from this index's edge set.
    pub fn follow_targets(&self, viewer: &Did) -> BTreeSet<String> {
        let key = viewer.to_string();
        self.follow_edges
            .range((key.clone(), String::new())..)
            .take_while(|(follower, _)| follower == &key)
            .map(|(_, followed)| followed.clone())
            .collect()
    }

    /// Every indexed post whose author is in `authors` (string DIDs).
    /// Author-prefix ranges over the URI key index, so only matching posts
    /// are decoded.
    pub fn posts_by_authors(&self, authors: &BTreeSet<String>) -> Vec<PostInfo> {
        let mut out = Vec::new();
        for author in authors {
            let prefix = format!("at://{author}/");
            for (key, _) in self
                .posts
                .range(prefix.clone()..format!("{prefix}\u{10FFFF}"))
            {
                if let Some(info) = self.load_post_key(key) {
                    out.push(info);
                }
            }
        }
        out
    }

    /// The most recent posts by accounts `viewer` follows (a simple
    /// "following" timeline), in canonical order — newest `created_at`
    /// first, ties broken by URI.
    pub fn following_timeline(&self, viewer: &Did, limit: usize) -> Vec<PostInfo> {
        let mut posts = self.posts_by_authors(&self.follow_targets(viewer));
        sort_timeline(&mut posts);
        posts.truncate(limit);
        posts
    }

    /// Residency/spill statistics of the backing block store.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Merge another index's state into this one (the associative merge the
    /// entity-sharded [`crate::shards::AppViewShards`] and the engine-shard
    /// worlds rely on). Entity sets must be disjoint — shards partition
    /// entities by hash, so they always are; counters add and edge sets
    /// union.
    pub fn merge(&mut self, other: AppViewIndex) {
        for (key, cid) in &other.posts {
            debug_assert!(
                !self.posts.contains_key(key),
                "post shards must be disjoint"
            );
            match other.store.get(cid) {
                Some(bytes) => {
                    self.posts.insert(key.clone(), *cid);
                    self.store.put(*cid, bytes);
                }
                // The source store lost the block (spill-file corruption
                // reads as absent): the entity cannot travel, but the loss
                // is counted — never silent.
                None => self.lost_entities += 1,
            }
        }
        for (key, cid) in &other.actors {
            debug_assert!(
                !self.actors.contains_key(key),
                "actor shards must be disjoint"
            );
            match other.store.get(cid) {
                Some(bytes) => {
                    self.actors.insert(key.clone(), *cid);
                    self.store.put(*cid, bytes);
                }
                None => self.lost_entities += 1,
            }
        }
        self.follow_edges.extend(other.follow_edges);
        self.block_edges.extend(other.block_edges);
        self.events_processed += other.events_processed;
        self.records_indexed += other.records_indexed;
        self.labels_ingested += other.labels_ingested;
        self.labels_preindex += other.labels_preindex;
        self.lost_entities += other.lost_entities;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{FollowRecord, LikeRecord};

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 15, 9, 0, 0).unwrap()
    }

    fn did(name: &str) -> Did {
        Did::plc_from_seed(name.as_bytes())
    }

    fn post_nsid() -> Nsid {
        Nsid::parse(known::POST).unwrap()
    }

    fn setup() -> (AppViewIndex, Did, Did, AtUri) {
        let mut index = AppViewIndex::new();
        let alice = did("alice");
        let bob = did("bob");
        index.upsert_actor(&alice, &Handle::parse("alice.bsky.social").unwrap());
        index.upsert_actor(&bob, &Handle::parse("bob.bsky.social").unwrap());
        index.index_record(
            &alice,
            &post_nsid(),
            "post00000001",
            &Record::Post(PostRecord::simple("hello world", "en", now())),
            now(),
        );
        let uri = AtUri::record(alice.clone(), post_nsid(), "post00000001");
        (index, alice, bob, uri)
    }

    #[test]
    fn posts_likes_reposts_follows_blocks() {
        let (mut index, alice, bob, uri) = setup();
        assert_eq!(index.post_count(), 1);
        assert_eq!(index.actor(&alice).unwrap().posts, 1);

        index.index_record(
            &bob,
            &Nsid::parse(known::LIKE).unwrap(),
            "like00000001",
            &Record::Like(LikeRecord {
                subject: uri.clone(),
                created_at: now(),
            }),
            now(),
        );
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "follow0000001",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert_eq!(index.post(&uri).unwrap().like_count, 1);
        assert!(index.follows(&bob, &alice));
        assert!(!index.follows(&alice, &bob));
        assert_eq!(index.actor(&alice).unwrap().followers, 1);
        assert_eq!(index.actor(&bob).unwrap().follows, 1);

        // Duplicate follow records do not double-count.
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "follow0000002",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert_eq!(index.actor(&alice).unwrap().followers, 1);

        index.index_record(
            &alice,
            &Nsid::parse(known::BLOCK).unwrap(),
            "block0000001",
            &Record::Block(bsky_atproto::record::BlockRecord {
                subject: bob.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert!(index.blocks(&alice, &bob));
        assert_eq!(index.actor(&bob).unwrap().blocked_by, 1);
        assert_eq!(index.records_indexed(), 5);
    }

    #[test]
    fn labels_apply_and_rescind() {
        let (mut index, _alice, _bob, uri) = setup();
        let labeler = did("labeler");
        let label = Label::new(
            labeler.clone(),
            LabelTarget::Record(uri.clone()),
            "porn",
            now(),
        )
        .unwrap();
        index.ingest_label(&label);
        assert_eq!(index.post(&uri).unwrap().labels.len(), 1);
        // Duplicate application is idempotent.
        index.ingest_label(&label);
        assert_eq!(index.post(&uri).unwrap().labels.len(), 1);
        index.ingest_label(&label.negation(now()));
        assert!(index.post(&uri).unwrap().labels.is_empty());
        assert_eq!(index.labels_ingested(), 3);
        assert_eq!(index.labels_preindex(), 0);

        // Account-level labels.
        let account_label =
            Label::new(labeler, LabelTarget::Account(did("alice")), "spam", now()).unwrap();
        index.ingest_label(&account_label);
        assert_eq!(index.actor(&did("alice")).unwrap().account_labels.len(), 1);
    }

    #[test]
    fn tombstone_purges_posts() {
        let (mut index, alice, _bob, uri) = setup();
        let event = Event {
            seq: 1,
            time: now(),
            body: EventBody::Tombstone { did: alice.clone() },
        };
        index.process_event(&event);
        assert!(index.post(&uri).is_none());
        assert!(index.actor(&alice).unwrap().deleted);
        assert_eq!(index.events_processed(), 1);
    }

    #[test]
    fn handle_change_events_update_actors() {
        let (mut index, alice, _bob, _uri) = setup();
        index.process_event(&Event {
            seq: 2,
            time: now(),
            body: EventBody::HandleChange {
                did: alice.clone(),
                handle: Handle::parse("alice.example.com").unwrap(),
            },
        });
        assert_eq!(
            index.actor(&alice).unwrap().handle.as_str(),
            "alice.example.com"
        );
    }

    #[test]
    fn remove_post_and_timeline() {
        let (mut index, alice, bob, uri) = setup();
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "f1",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        // Bob follows Alice, so Bob's timeline shows Alice's post.
        let timeline = index.following_timeline(&bob, 10);
        assert_eq!(timeline.len(), 1);
        // Alice follows nobody.
        assert!(index.following_timeline(&alice, 10).is_empty());
        index.remove_post(&uri);
        assert_eq!(index.post_count(), 0);
        assert_eq!(index.actor(&alice).unwrap().posts, 0);
        assert!(index.following_timeline(&bob, 10).is_empty());
    }

    #[test]
    fn entity_blocks_roundtrip() {
        let (index, alice, _bob, uri) = setup();
        let post = index.post(&uri).unwrap();
        assert_eq!(PostInfo::from_block(&post.to_block()), Some(post.clone()));
        let mut labeled = post;
        labeled.labels.push((did("labeler"), "spam".into()));
        labeled.like_count = 7;
        assert_eq!(PostInfo::from_block(&labeled.to_block()), Some(labeled));
        let actor = index.actor(&alice).unwrap();
        assert_eq!(ActorInfo::from_block(&actor.to_block()), Some(actor));
        assert!(PostInfo::from_block(b"garbage").is_none());
        assert!(ActorInfo::from_block(b"garbage").is_none());
    }

    #[test]
    fn paged_store_backend_answers_identically() {
        use bsky_atproto::blockstore::StoreConfig;
        let build = |store: &StoreConfig| {
            let mut index = AppViewIndex::with_store(store);
            let alice = did("alice");
            index.upsert_actor(&alice, &Handle::parse("alice.bsky.social").unwrap());
            for i in 0..40 {
                index.index_record(
                    &alice,
                    &post_nsid(),
                    &format!("post{i:08}"),
                    &Record::Post(PostRecord::simple(
                        format!("post number {i}"),
                        "en",
                        now().plus_seconds(i),
                    )),
                    now(),
                );
            }
            index
        };
        let mem = build(&StoreConfig::mem());
        let paged = build(&StoreConfig::paged().page_size(256).resident_pages(1));
        assert!(
            paged.store_stats().spilled_bytes > 0,
            "tiny pages must spill: {:?}",
            paged.store_stats()
        );
        assert!(paged.store_stats().resident_bytes < mem.store_stats().resident_bytes);
        assert_eq!(mem.posts(), paged.posts());
        assert_eq!(mem.actors(), paged.actors());
    }

    #[test]
    fn merge_combines_disjoint_indices() {
        let (index, alice, bob, uri) = setup();
        let mut other = AppViewIndex::new();
        let carol = did("carol");
        other.upsert_actor(&carol, &Handle::parse("carol.bsky.social").unwrap());
        other.index_record(
            &carol,
            &post_nsid(),
            "post00000009",
            &Record::Post(PostRecord::simple("from carol", "en", now())),
            now(),
        );
        let mut merged = index.clone();
        merged.merge(other);
        assert_eq!(merged.post_count(), 2);
        assert_eq!(merged.actor_count(), 3);
        assert_eq!(merged.records_indexed(), 2);
        assert!(merged.post(&uri).is_some());
        assert_eq!(merged.actor(&carol).unwrap().posts, 1);
        assert_eq!(merged.lost_entities(), 0, "no blocks lost in a mem merge");
        let _ = (alice, bob);
    }
}
