//! The AppView's indices.
//!
//! The AppView consumes the firehose and the label streams, stores everything
//! in queryable indices, and serves the client-facing API (§2). These indices
//! are also what the measurement pipeline's AppView-based endpoints
//! (`getFeedGenerator`, `getFeed`) read from.
//!
//! ## Store-backed entity state: the hot/cold split
//!
//! Per-entity state — one [`PostInfo`] per indexed post, one [`ActorInfo`]
//! per known account — is not held in plain maps. Each entity is split into
//! two halves with very different mutation rates:
//!
//! * **Cold content blocks.** The record payload, identity fields and
//!   labels encode as a DAG-CBOR *content block* in a pluggable
//!   [`bsky_atproto::blockstore::BlockStore`]. Content blocks are rewritten
//!   only by rare events (label changes, handle changes, profile updates,
//!   tombstones); the bulk ingestion volume never touches them. With the
//!   default [`MemStore`](bsky_atproto::blockstore::MemStore) they behave
//!   like the old in-memory maps; with the paged backend cold entities
//!   spill to disk and are CID-verified on read-back.
//! * **Hot counter state.** Likes, reposts and the actor graph counters —
//!   the fields that used to force a full decode → mutate → re-encode →
//!   re-hash → delete+put cycle per event — live in small resident dirty
//!   maps ([`PostCounters`] / [`ActorCounters`]). A counter bump is a map
//!   update; [`AppViewIndex::flush`] (called at day boundaries) encodes
//!   each dirty entity's counters *once* into a compact counter block, so
//!   N same-day bumps cost one encode+put instead of N full-block cycles.
//!   The dirty maps are bounded by one day's touched entities and empty
//!   again after every flush, so steady-state residency does not grow.
//!
//! Queries always overlay the freshest counter state (dirty map first, then
//! the flushed counter block), so readers never observe flush boundaries.
//! Because the entity key (AT-URI or DID) is embedded in every content
//! block, content CIDs are unique per entity; counter blocks embed the
//! key's FNV-1a hash (falling back to the full key on a hash-and-value
//! collision), so read-modify-write updates (`delete` old CID, `put` new)
//! can never clobber another entity's block. On top of this the store
//! itself is wrapped in a
//! [`WriteBackStore`] (the
//! `write_back` knob), which coalesces the remaining same-day content-block
//! rewrites into single backend puts at flush time.
//!
//! ## Ingestion primitives
//!
//! A single logical ingestion step can touch several entities — indexing a
//! follow record updates the edge set, the follower's `follows` counter and
//! the target's `followers` counter. [`AppViewIndex`] therefore exposes the
//! per-entity *primitives* ([`AppViewIndex::insert_post`],
//! [`AppViewIndex::credit_follows`], …) alongside the composed entry points
//! ([`AppViewIndex::index_record`], [`AppViewIndex::process_event`]). The
//! entity-sharded [`crate::shards::AppViewShards`] routes each primitive to
//! the shard owning the touched entity; because the monolithic entry points
//! are implemented *in terms of* the same primitives, the sharded index is
//! equivalent to the monolithic one by construction (and pinned by the
//! property test in `shards.rs`).

use bsky_atproto::blockstore::{BlockStore, StoreConfig, StoreStats, WriteBackStore};
use bsky_atproto::cbor::{self, Value};
use bsky_atproto::cid::Cid;
use bsky_atproto::did::{fnv1a_64, FNV_OFFSET};
use bsky_atproto::firehose::{Event, EventBody};
use bsky_atproto::label::{Label, LabelTarget};
use bsky_atproto::record::{PostRecord, ProfileRecord, Record};
use bsky_atproto::{AtUri, Datetime, Did, Handle, Nsid};
use std::collections::{BTreeMap, BTreeSet};

/// Indexed information about a post.
#[derive(Debug, Clone, PartialEq)]
pub struct PostInfo {
    /// The post's `at://` URI.
    pub uri: AtUri,
    /// The author.
    pub author: Did,
    /// The record contents.
    pub record: PostRecord,
    /// When the AppView indexed it.
    pub indexed_at: Datetime,
    /// Likes counted so far.
    pub like_count: u64,
    /// Reposts counted so far.
    pub repost_count: u64,
    /// Labels currently applied (source DID, value).
    pub labels: Vec<(Did, String)>,
}

impl PostInfo {
    /// Encode the cold half as a DAG-CBOR content block — everything except
    /// the hot counters, which live in [`PostCounters`] state. The block is
    /// the positional array `[uri, record, indexedAt, labels]`: positional
    /// fields drop the per-block key overhead of a string-keyed map, and
    /// the author is not stored at all — a post's author *is* the DID
    /// authority of its `at://` URI, so decode derives it.
    pub fn content_block(&self) -> Vec<u8> {
        cbor::encode(&Value::Array(vec![
            Value::text(self.uri.to_string()),
            Record::Post(self.record.clone()).to_value(),
            Value::Int(self.indexed_at.timestamp()),
            labels_to_value(&self.labels),
        ]))
    }

    /// Decode a content block; the counters come back zeroed and the caller
    /// overlays [`PostInfo::with_counters`]. `None` on any mismatch — the
    /// store contract already maps corrupt blocks to "absent", and the
    /// index treats an undecodable entity the same way.
    pub fn from_content(bytes: &[u8]) -> Option<PostInfo> {
        let value = cbor::decode(bytes).ok()?;
        let [uri, record, indexed_at, labels] = value.as_array()? else {
            return None;
        };
        let record = match Record::from_value(record).ok()? {
            Record::Post(post) => post,
            _ => return None,
        };
        let uri = AtUri::parse(uri.as_text()?).ok()?;
        let author = uri.did().clone();
        Some(PostInfo {
            uri,
            author,
            record,
            indexed_at: Datetime(indexed_at.as_int()?),
            like_count: 0,
            repost_count: 0,
            labels: labels_from_value(labels)?,
        })
    }

    /// Overlay hot counter state onto a decoded content block.
    pub fn with_counters(mut self, counters: PostCounters) -> PostInfo {
        self.like_count = counters.like_count;
        self.repost_count = counters.repost_count;
        self
    }

    /// The hot half of this info.
    pub fn counters(&self) -> PostCounters {
        PostCounters {
            like_count: self.like_count,
            repost_count: self.repost_count,
        }
    }
}

/// Hot mutable counters of a post — the per-entity counter state split out
/// of the immutable content block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostCounters {
    /// Likes counted so far.
    pub like_count: u64,
    /// Reposts counted so far.
    pub repost_count: u64,
}

impl PostCounters {
    /// Whether every counter is at its default — such state needs no
    /// counter block at all.
    pub fn is_default(&self) -> bool {
        *self == PostCounters::default()
    }

    /// Encode as a compact DAG-CBOR counter block: the positional array
    /// `[tag, likes, reposts]`. `tag` disambiguates the owning entity (the
    /// key's FNV-1a hash); it is ignored on decode. Positional encoding keeps
    /// the hot, endlessly-rewritten counter blocks around a dozen bytes
    /// where a string-keyed map would more than double that.
    pub fn to_block(&self, tag: Value) -> Vec<u8> {
        cbor::encode(&Value::Array(vec![
            tag,
            Value::Int(self.like_count as i64),
            Value::Int(self.repost_count as i64),
        ]))
    }

    /// Decode from a counter block (`None` on any mismatch).
    pub fn from_block(bytes: &[u8]) -> Option<PostCounters> {
        let value = cbor::decode(bytes).ok()?;
        match value.as_array()? {
            [_tag, likes, reposts] => Some(PostCounters {
                like_count: likes.as_int()? as u64,
                repost_count: reposts.as_int()? as u64,
            }),
            _ => None,
        }
    }
}

/// Hot mutable counters of an actor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActorCounters {
    /// Number of accounts this actor follows.
    pub follows: u64,
    /// Number of accounts following this actor.
    pub followers: u64,
    /// Number of posts indexed for this actor.
    pub posts: u64,
    /// Number of block operations targeting this actor.
    pub blocked_by: u64,
}

impl ActorCounters {
    /// Whether every counter is at its default.
    pub fn is_default(&self) -> bool {
        *self == ActorCounters::default()
    }

    /// Encode as a compact DAG-CBOR counter block: the positional array
    /// `[tag, follows, followers, posts, blockedBy]` (`tag` as in
    /// [`PostCounters::to_block`]).
    pub fn to_block(&self, tag: Value) -> Vec<u8> {
        cbor::encode(&Value::Array(vec![
            tag,
            Value::Int(self.follows as i64),
            Value::Int(self.followers as i64),
            Value::Int(self.posts as i64),
            Value::Int(self.blocked_by as i64),
        ]))
    }

    /// Decode from a counter block (`None` on any mismatch).
    pub fn from_block(bytes: &[u8]) -> Option<ActorCounters> {
        let value = cbor::decode(bytes).ok()?;
        match value.as_array()? {
            [_tag, follows, followers, posts, blocked_by] => Some(ActorCounters {
                follows: follows.as_int()? as u64,
                followers: followers.as_int()? as u64,
                posts: posts.as_int()? as u64,
                blocked_by: blocked_by.as_int()? as u64,
            }),
            _ => None,
        }
    }
}

/// The compact entity tag embedded in counter blocks: the FNV-1a hash of
/// the entity key, as the sharding layers already use. Embedding the full
/// AT-URI would several-fold a counter block's size; the hash keeps
/// blocks ~a dozen bytes while [`AppViewIndex`] falls back to the full key
/// on the (hash, counters) collisions that would otherwise share a CID.
fn counter_tag(key: &str) -> Value {
    Value::Int(fnv1a_64(key.as_bytes(), FNV_OFFSET) as i64)
}

/// Indexed information about an actor (account).
#[derive(Debug, Clone, PartialEq)]
pub struct ActorInfo {
    /// The account DID.
    pub did: Did,
    /// Current handle.
    pub handle: Handle,
    /// Profile record, if one was published.
    pub profile: Option<ProfileRecord>,
    /// Number of accounts this actor follows.
    pub follows: u64,
    /// Number of accounts following this actor.
    pub followers: u64,
    /// Number of posts indexed for this actor.
    pub posts: u64,
    /// Number of block operations targeting this actor.
    pub blocked_by: u64,
    /// Labels applied to the whole account.
    pub account_labels: Vec<(Did, String)>,
    /// Whether the account has been tombstoned.
    pub deleted: bool,
}

impl ActorInfo {
    fn fresh(did: &Did, handle: &Handle) -> ActorInfo {
        ActorInfo {
            did: did.clone(),
            handle: handle.clone(),
            profile: None,
            follows: 0,
            followers: 0,
            posts: 0,
            blocked_by: 0,
            account_labels: Vec::new(),
            deleted: false,
        }
    }

    /// Encode the cold half as a DAG-CBOR content block (identity fields,
    /// profile, labels, tombstone flag — not the hot graph counters): the
    /// positional array `[did, handle, profile, accountLabels, deleted]`,
    /// as in [`PostInfo::content_block`].
    pub fn content_block(&self) -> Vec<u8> {
        cbor::encode(&Value::Array(vec![
            Value::text(self.did.to_string()),
            Value::text(self.handle.as_str()),
            match &self.profile {
                Some(profile) => Record::Profile(profile.clone()).to_value(),
                None => Value::Null,
            },
            labels_to_value(&self.account_labels),
            Value::Bool(self.deleted),
        ]))
    }

    /// Decode a content block; counters come back zeroed for
    /// [`ActorInfo::with_counters`] to overlay (`None` on any mismatch).
    pub fn from_content(bytes: &[u8]) -> Option<ActorInfo> {
        let value = cbor::decode(bytes).ok()?;
        let [did, handle, profile, account_labels, deleted] = value.as_array()? else {
            return None;
        };
        let profile = match profile {
            Value::Null => None,
            profile => match Record::from_value(profile).ok()? {
                Record::Profile(profile) => Some(profile),
                _ => return None,
            },
        };
        Some(ActorInfo {
            did: Did::parse(did.as_text()?).ok()?,
            handle: Handle::parse(handle.as_text()?).ok()?,
            profile,
            follows: 0,
            followers: 0,
            posts: 0,
            blocked_by: 0,
            account_labels: labels_from_value(account_labels)?,
            deleted: deleted.as_bool()?,
        })
    }

    /// Overlay hot counter state onto a decoded content block.
    pub fn with_counters(mut self, counters: ActorCounters) -> ActorInfo {
        self.follows = counters.follows;
        self.followers = counters.followers;
        self.posts = counters.posts;
        self.blocked_by = counters.blocked_by;
        self
    }

    /// The hot half of this info.
    pub fn counters(&self) -> ActorCounters {
        ActorCounters {
            follows: self.follows,
            followers: self.followers,
            posts: self.posts,
            blocked_by: self.blocked_by,
        }
    }
}

fn labels_to_value(labels: &[(Did, String)]) -> Value {
    Value::Array(
        labels
            .iter()
            .map(|(src, value)| {
                Value::Array(vec![Value::text(src.to_string()), Value::text(value)])
            })
            .collect(),
    )
}

fn labels_from_value(value: &Value) -> Option<Vec<(Did, String)>> {
    value
        .as_array()?
        .iter()
        .map(|pair| {
            let pair = pair.as_array()?;
            Some((
                Did::parse(pair.first()?.as_text()?).ok()?,
                pair.get(1)?.as_text()?.to_string(),
            ))
        })
        .collect()
}

/// Canonical timeline order: newest first by the post's self-reported
/// creation time, ties broken by URI (ascending). Every query surface —
/// monolithic and sharded fan-out alike — sorts with exactly this
/// comparator, so shard counts can never reorder a timeline.
pub(crate) fn sort_timeline(posts: &mut [PostInfo]) {
    posts.sort_by(|a, b| {
        b.record
            .created_at
            .cmp(&a.record.created_at)
            .then_with(|| a.uri.cmp(&b.uri))
    });
}

/// Where one entity's blocks live: the cold content block plus the
/// optional flushed counter block (absent while counters are default or
/// only dirty in memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntityRef {
    content: Cid,
    counters: Option<Cid>,
}

impl EntityRef {
    fn content_only(content: Cid) -> EntityRef {
        EntityRef {
            content,
            counters: None,
        }
    }
}

/// The AppView's combined index (one entity shard of it, when owned by
/// [`crate::shards::AppViewShards`]).
///
/// Entity state lives as CBOR blocks in the backing store, split hot/cold;
/// see the module docs for the storage layout and the primitive/composed
/// ingestion split. Counter mutations accumulate in resident dirty maps
/// until [`AppViewIndex::flush`] — call it at epoch (day) boundaries and
/// before reading [`AppViewIndex::store_stats`] or merging.
#[derive(Debug, Clone)]
pub struct AppViewIndex {
    /// Post key (AT-URI string) → block CIDs.
    posts: BTreeMap<String, EntityRef>,
    /// Actor key (DID string) → block CIDs.
    actors: BTreeMap<String, EntityRef>,
    store: Box<dyn BlockStore>,
    /// Post counter state dirtied since the last flush.
    dirty_posts: BTreeMap<String, PostCounters>,
    /// Actor counter state dirtied since the last flush.
    dirty_actors: BTreeMap<String, ActorCounters>,
    /// `(follower, followed)` DID pairs, keyed by the follower.
    follow_edges: BTreeSet<(String, String)>,
    /// `(blocker, blocked)` DID pairs, keyed by the blocker.
    block_edges: BTreeSet<(String, String)>,
    events_processed: u64,
    records_indexed: u64,
    labels_ingested: u64,
    labels_preindex: u64,
    lost_entities: u64,
    counter_coalesced_writes: u64,
}

impl Default for AppViewIndex {
    fn default() -> AppViewIndex {
        AppViewIndex::new()
    }
}

impl AppViewIndex {
    /// Create an empty index over the in-memory block store with the
    /// write-back cache on (the standard configuration).
    pub fn new() -> AppViewIndex {
        AppViewIndex::with_store(&StoreConfig::default(), true)
    }

    /// Create an empty index over an explicit block-store backend,
    /// optionally wrapped in a [`WriteBackStore`] (`write_back`). Neither
    /// the backend nor the cache changes a query result — only where bytes
    /// reside and how many backend ops a day of mutations costs.
    pub fn with_store(store: &StoreConfig, write_back: bool) -> AppViewIndex {
        let store = if write_back {
            Box::new(WriteBackStore::new(store.build()))
        } else {
            store.build()
        };
        AppViewIndex {
            posts: BTreeMap::new(),
            actors: BTreeMap::new(),
            store,
            dirty_posts: BTreeMap::new(),
            dirty_actors: BTreeMap::new(),
            follow_edges: BTreeSet::new(),
            block_edges: BTreeSet::new(),
            events_processed: 0,
            records_indexed: 0,
            labels_ingested: 0,
            labels_preindex: 0,
            lost_entities: 0,
            counter_coalesced_writes: 0,
        }
    }

    // -- block plumbing ----------------------------------------------------

    /// The freshest counter state for a post: dirty map first, then the
    /// flushed counter block, then defaults.
    fn post_counters_for(&self, key: &str, entry: &EntityRef) -> PostCounters {
        if let Some(counters) = self.dirty_posts.get(key) {
            return *counters;
        }
        entry
            .counters
            .and_then(|cid| self.store.get(&cid))
            .and_then(|bytes| PostCounters::from_block(&bytes))
            .unwrap_or_default()
    }

    fn actor_counters_for(&self, key: &str, entry: &EntityRef) -> ActorCounters {
        if let Some(counters) = self.dirty_actors.get(key) {
            return *counters;
        }
        entry
            .counters
            .and_then(|cid| self.store.get(&cid))
            .and_then(|bytes| ActorCounters::from_block(&bytes))
            .unwrap_or_default()
    }

    fn load_post_key(&self, key: &str) -> Option<PostInfo> {
        let entry = self.posts.get(key)?;
        let info = PostInfo::from_content(&self.store.get(&entry.content)?)?;
        Some(info.with_counters(self.post_counters_for(key, entry)))
    }

    fn load_actor_key(&self, key: &str) -> Option<ActorInfo> {
        let entry = self.actors.get(key)?;
        let info = ActorInfo::from_content(&self.store.get(&entry.content)?)?;
        Some(info.with_counters(self.actor_counters_for(key, entry)))
    }

    /// Write (or rewrite) a post's cold content block. Counter state is
    /// deliberately untouched.
    fn save_post_content(&mut self, info: &PostInfo) {
        let key = info.uri.to_string();
        let bytes = info.content_block();
        let cid = Cid::for_cbor(&bytes);
        if let Some(entry) = self.posts.get_mut(&key) {
            let old = entry.content;
            if old != cid {
                entry.content = cid;
                self.store.delete(&old);
                self.store.put(cid, bytes);
            }
        } else {
            self.posts.insert(key, EntityRef::content_only(cid));
            self.store.put(cid, bytes);
        }
    }

    fn save_actor_content(&mut self, info: &ActorInfo) {
        let key = info.did.to_string();
        let bytes = info.content_block();
        let cid = Cid::for_cbor(&bytes);
        if let Some(entry) = self.actors.get_mut(&key) {
            let old = entry.content;
            if old != cid {
                entry.content = cid;
                self.store.delete(&old);
                self.store.put(cid, bytes);
            }
        } else {
            self.actors.insert(key, EntityRef::content_only(cid));
            self.store.put(cid, bytes);
        }
    }

    /// Mutate a post's hot counters — a resident map update, no block
    /// traffic (no-op for unknown posts, like every counter primitive).
    fn update_post_counters(&mut self, key: &str, apply: impl FnOnce(&mut PostCounters)) {
        let Some(entry) = self.posts.get(key).copied() else {
            return;
        };
        if let Some(counters) = self.dirty_posts.get_mut(key) {
            apply(counters);
            self.counter_coalesced_writes += 1;
            return;
        }
        let mut counters = entry
            .counters
            .and_then(|cid| self.store.get(&cid))
            .and_then(|bytes| PostCounters::from_block(&bytes))
            .unwrap_or_default();
        apply(&mut counters);
        self.dirty_posts.insert(key.to_string(), counters);
    }

    fn update_actor_counters(&mut self, key: &str, apply: impl FnOnce(&mut ActorCounters)) {
        let Some(entry) = self.actors.get(key).copied() else {
            return;
        };
        if let Some(counters) = self.dirty_actors.get_mut(key) {
            apply(counters);
            self.counter_coalesced_writes += 1;
            return;
        }
        let mut counters = entry
            .counters
            .and_then(|cid| self.store.get(&cid))
            .and_then(|bytes| ActorCounters::from_block(&bytes))
            .unwrap_or_default();
        apply(&mut counters);
        self.dirty_actors.insert(key.to_string(), counters);
    }

    /// Replace a post's counter state wholesale (the insert/replace path).
    fn set_post_counters(&mut self, key: &str, counters: PostCounters) {
        if counters.is_default()
            && !self.dirty_posts.contains_key(key)
            && self.posts.get(key).is_none_or(|e| e.counters.is_none())
        {
            return; // fresh default state needs no tracking at all
        }
        self.dirty_posts.insert(key.to_string(), counters);
    }

    /// Rewrite a post's cold content (labels are the only mutable cold
    /// field) through a full load/apply/save — the rare path.
    fn update_post_content(&mut self, key: &str, apply: impl FnOnce(&mut PostInfo)) -> bool {
        match self.load_post_key(key) {
            Some(mut info) => {
                apply(&mut info);
                self.save_post_content(&info);
                true
            }
            None => false,
        }
    }

    fn update_actor_content(&mut self, key: &str, apply: impl FnOnce(&mut ActorInfo)) -> bool {
        match self.load_actor_key(key) {
            Some(mut info) => {
                apply(&mut info);
                self.save_actor_content(&info);
                true
            }
            None => false,
        }
    }

    /// Write one entity's flushed counter block, replacing `old`; returns
    /// the stored CID. Blocks embed the key's FNV-1a hash tag; when another
    /// entity already owns an identical block (a hash *and* counter-value
    /// collision), fall back to embedding the full key, so counter CIDs
    /// stay unique per entity and a later rewrite's delete can never
    /// clobber a neighbour.
    fn put_counter_block(
        &mut self,
        key: &str,
        old: Option<Cid>,
        encode: impl Fn(Value) -> Vec<u8>,
    ) -> Option<Cid> {
        let bytes = encode(counter_tag(key));
        let cid = Cid::for_cbor(&bytes);
        if old == Some(cid) {
            return old;
        }
        let (cid, bytes) = if self.store.has(&cid) {
            let bytes = encode(Value::text(key));
            (Cid::for_cbor(&bytes), bytes)
        } else {
            (cid, bytes)
        };
        if let Some(old) = old {
            self.store.delete(&old);
        }
        self.store.put(cid, bytes);
        Some(cid)
    }

    /// Flush all dirty counter state into compact counter blocks and drain
    /// the write-back cache. Called at day boundaries (and before merge /
    /// store-stats reads); queries are flush-transparent either way.
    pub fn flush(&mut self) {
        for (key, counters) in std::mem::take(&mut self.dirty_posts) {
            let Some(entry) = self.posts.get(&key).copied() else {
                continue;
            };
            let new = if counters.is_default() {
                if let Some(old) = entry.counters {
                    self.store.delete(&old);
                }
                None
            } else {
                self.put_counter_block(&key, entry.counters, |tag| counters.to_block(tag))
            };
            self.posts.get_mut(&key).expect("entry exists").counters = new;
        }
        for (key, counters) in std::mem::take(&mut self.dirty_actors) {
            let Some(entry) = self.actors.get(&key).copied() else {
                continue;
            };
            let new = if counters.is_default() {
                if let Some(old) = entry.counters {
                    self.store.delete(&old);
                }
                None
            } else {
                self.put_counter_block(&key, entry.counters, |tag| counters.to_block(tag))
            };
            self.actors.get_mut(&key).expect("entry exists").counters = new;
        }
        self.store.flush();
        // The day boundary ends the hot window: demote sealed pages so
        // steady-state residency is the open page plus the dirty maps.
        self.store.evict_cold();
    }

    // -- ingestion primitives (the shard router's surface) -----------------

    /// Register an account (from an identity event or backfill). Targets
    /// the actor entity only.
    pub fn upsert_actor(&mut self, did: &Did, handle: &Handle) {
        let key = did.to_string();
        let handle_for_update = handle.clone();
        if !self.update_actor_content(&key, move |a| a.handle = handle_for_update) {
            self.save_actor_content(&ActorInfo::fresh(did, handle));
        }
    }

    /// Count one indexed record (part of every [`AppViewIndex::index_record`]).
    pub fn count_record(&mut self) {
        self.records_indexed += 1;
    }

    /// Insert (or replace) a post entity. Targets the post entity only —
    /// the author's post counter is [`AppViewIndex::credit_author_post`].
    pub fn insert_post(&mut self, info: PostInfo) {
        let key = info.uri.to_string();
        let counters = info.counters();
        self.save_post_content(&info);
        self.set_post_counters(&key, counters);
    }

    /// Credit one post to an author's counter (no-op for unknown actors,
    /// like the live AppView's denormalized counts).
    pub fn credit_author_post(&mut self, author: &Did) {
        self.update_actor_counters(&author.to_string(), |a| a.posts += 1);
    }

    /// Debit one post from an author's counter (saturating).
    pub fn debit_author_post(&mut self, author: &Did) {
        self.update_actor_counters(&author.to_string(), |a| a.posts = a.posts.saturating_sub(1));
    }

    /// Count a like on a post (no-op when the post is unknown).
    pub fn apply_like(&mut self, subject: &AtUri) {
        self.update_post_counters(&subject.to_string(), |p| p.like_count += 1);
    }

    /// Count a repost (no-op when the post is unknown).
    pub fn apply_repost(&mut self, subject: &AtUri) {
        self.update_post_counters(&subject.to_string(), |p| p.repost_count += 1);
    }

    /// Insert a follow edge (keyed by the follower). Returns `true` when
    /// the edge is new — the caller then credits both endpoint counters.
    pub fn insert_follow_edge(&mut self, follower: &Did, followed: &Did) -> bool {
        self.follow_edges
            .insert((follower.to_string(), followed.to_string()))
    }

    /// Credit one follow to the follower's counter (no-op when unknown).
    pub fn credit_follows(&mut self, follower: &Did) {
        self.update_actor_counters(&follower.to_string(), |a| a.follows += 1);
    }

    /// Credit one follower to the followed account's counter.
    pub fn credit_followers(&mut self, followed: &Did) {
        self.update_actor_counters(&followed.to_string(), |a| a.followers += 1);
    }

    /// Insert a block edge (keyed by the blocker). Returns `true` when new.
    pub fn insert_block_edge(&mut self, blocker: &Did, blocked: &Did) -> bool {
        self.block_edges
            .insert((blocker.to_string(), blocked.to_string()))
    }

    /// Credit one block against the blocked account's counter.
    pub fn credit_blocked_by(&mut self, blocked: &Did) {
        self.update_actor_counters(&blocked.to_string(), |a| a.blocked_by += 1);
    }

    /// Attach a profile record to an actor (no-op when unknown).
    pub fn set_profile(&mut self, author: &Did, profile: &ProfileRecord) {
        let profile = profile.clone();
        self.update_actor_content(&author.to_string(), move |a| a.profile = Some(profile));
    }

    /// Remove a post entity, returning it (the caller debits the author's
    /// counter, which may live on another shard).
    pub fn take_post(&mut self, uri: &AtUri) -> Option<PostInfo> {
        let key = uri.to_string();
        let info = self.load_post_key(&key);
        self.dirty_posts.remove(&key);
        if let Some(entry) = self.posts.remove(&key) {
            self.store.delete(&entry.content);
            if let Some(cid) = entry.counters {
                self.store.delete(&cid);
            }
        }
        info
    }

    /// Count one firehose event (part of every
    /// [`AppViewIndex::process_event`]).
    pub fn count_event(&mut self) {
        self.events_processed += 1;
    }

    /// Mark an account tombstoned (no-op when unknown).
    pub fn mark_deleted(&mut self, did: &Did) {
        self.update_actor_content(&did.to_string(), |a| a.deleted = true);
    }

    /// Purge every post authored by `did` from this index's post map
    /// (tombstone handling; the author's post counter is deliberately
    /// untouched, like the monolithic path).
    pub fn purge_posts_of(&mut self, did: &Did) {
        let prefix = format!("at://{did}/");
        let keys: Vec<String> = self
            .posts
            .range(prefix.clone()..format!("{prefix}\u{10FFFF}"))
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            self.dirty_posts.remove(&key);
            if let Some(entry) = self.posts.remove(&key) {
                self.store.delete(&entry.content);
                if let Some(cid) = entry.counters {
                    self.store.delete(&cid);
                }
            }
        }
    }

    // -- composed ingestion (the monolithic entry points) ------------------

    /// Index a record authored by `author` (the content counterpart of a
    /// firehose commit op). Composed from the per-entity primitives above.
    pub fn index_record(
        &mut self,
        author: &Did,
        collection: &Nsid,
        rkey: &str,
        record: &Record,
        at: Datetime,
    ) {
        self.count_record();
        match record {
            Record::Post(post) => {
                let uri = AtUri::record(author.clone(), collection.clone(), rkey);
                self.insert_post(PostInfo {
                    uri,
                    author: author.clone(),
                    record: post.clone(),
                    indexed_at: at,
                    like_count: 0,
                    repost_count: 0,
                    labels: Vec::new(),
                });
                self.credit_author_post(author);
            }
            Record::Like(like) => self.apply_like(&like.subject),
            Record::Repost(repost) => self.apply_repost(&repost.subject),
            Record::Follow(follow) => {
                if self.insert_follow_edge(author, &follow.subject) {
                    self.credit_follows(author);
                    self.credit_followers(&follow.subject);
                }
            }
            Record::Block(block) => {
                if self.insert_block_edge(author, &block.subject) {
                    self.credit_blocked_by(&block.subject);
                }
            }
            Record::Profile(profile) => self.set_profile(author, profile),
            // Feed generator and labeler declarations are tracked by their
            // dedicated registries; unknown lexicons are not indexed by the
            // Bluesky AppView (it cannot decode them, §4).
            Record::FeedGenerator(_) | Record::LabelerService(_) | Record::Unknown(_) => {}
        }
    }

    /// Remove a post from the index (a delete op).
    pub fn remove_post(&mut self, uri: &AtUri) {
        if let Some(info) = self.take_post(uri) {
            self.debit_author_post(&info.author);
        }
    }

    /// Process a firehose event's non-content effects (handle changes,
    /// identity updates, tombstones).
    pub fn process_event(&mut self, event: &Event) {
        self.count_event();
        match &event.body {
            EventBody::HandleChange { did, handle } => {
                self.upsert_actor(did, handle);
            }
            EventBody::Tombstone { did } => {
                self.mark_deleted(did);
                self.purge_posts_of(did);
            }
            EventBody::Commit { .. } | EventBody::Identity { .. } | EventBody::Info { .. } => {}
        }
    }

    /// Ingest a label from a labeler stream, applying or rescinding it.
    ///
    /// A label whose target the AppView has not indexed (it arrived before
    /// the post, or the post was deleted) cannot be applied; it is counted
    /// into [`AppViewIndex::labels_preindex`] instead of vanishing silently.
    pub fn ingest_label(&mut self, label: &Label) {
        self.labels_ingested += 1;
        let entry = (label.src.clone(), label.value.clone());
        let negated = label.negated;
        let apply = move |labels: &mut Vec<(Did, String)>| {
            if negated {
                labels.retain(|e| e != &entry);
            } else if !labels.contains(&entry) {
                labels.push(entry);
            }
        };
        match &label.target {
            LabelTarget::Record(uri) => {
                if !self.update_post_content(&uri.to_string(), |post| apply(&mut post.labels)) {
                    self.labels_preindex += 1;
                }
            }
            LabelTarget::Account(did) | LabelTarget::ProfileMedia(did) => {
                if !self.update_actor_content(&did.to_string(), |actor| {
                    apply(&mut actor.account_labels)
                }) {
                    self.labels_preindex += 1;
                }
            }
        }
    }

    // -- queries -----------------------------------------------------------

    /// Look up a post (decodes its block; spilled blocks page in verified).
    pub fn post(&self, uri: &AtUri) -> Option<PostInfo> {
        self.load_post_key(&uri.to_string())
    }

    /// Whether a post is indexed — a key-index probe, no block decode.
    pub fn has_post(&self, uri: &AtUri) -> bool {
        self.posts.contains_key(&uri.to_string())
    }

    /// Look up an actor.
    pub fn actor(&self, did: &Did) -> Option<ActorInfo> {
        self.load_actor_key(&did.to_string())
    }

    /// Whether `a` follows `b`.
    pub fn follows(&self, a: &Did, b: &Did) -> bool {
        self.follow_edges.contains(&(a.to_string(), b.to_string()))
    }

    /// Whether `a` blocks `b`.
    pub fn blocks(&self, a: &Did, b: &Did) -> bool {
        self.block_edges.contains(&(a.to_string(), b.to_string()))
    }

    /// Number of indexed posts.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }

    /// Number of known actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of follow edges.
    pub fn follow_edge_count(&self) -> usize {
        self.follow_edges.len()
    }

    /// All posts, decoded, in key (URI) order.
    pub fn posts(&self) -> Vec<PostInfo> {
        self.posts
            .keys()
            .filter_map(|key| self.load_post_key(key))
            .collect()
    }

    /// All actors, decoded, in key (DID) order.
    pub fn actors(&self) -> Vec<ActorInfo> {
        self.actors
            .keys()
            .filter_map(|key| self.load_actor_key(key))
            .collect()
    }

    /// Total labels ingested (including negations).
    pub fn labels_ingested(&self) -> u64 {
        self.labels_ingested
    }

    /// Labels that arrived before the entity they target was indexed (or
    /// after it was deleted) and could not be applied — counted, never
    /// silently dropped.
    pub fn labels_preindex(&self) -> u64 {
        self.labels_preindex
    }

    /// Entities dropped during [`AppViewIndex::merge`] because the source
    /// store had lost their block (corrupt spill files read as absent) —
    /// counted, never silent.
    pub fn lost_entities(&self) -> u64 {
        self.lost_entities
    }

    /// Total records indexed.
    pub fn records_indexed(&self) -> u64 {
        self.records_indexed
    }

    /// Total firehose events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The DIDs `viewer` follows (string form), from this index's edge set.
    pub fn follow_targets(&self, viewer: &Did) -> BTreeSet<String> {
        let key = viewer.to_string();
        self.follow_edges
            .range((key.clone(), String::new())..)
            .take_while(|(follower, _)| follower == &key)
            .map(|(_, followed)| followed.clone())
            .collect()
    }

    /// Every indexed post whose author is in `authors` (string DIDs).
    /// Author-prefix ranges over the URI key index, so only matching posts
    /// are decoded.
    pub fn posts_by_authors(&self, authors: &BTreeSet<String>) -> Vec<PostInfo> {
        let mut out = Vec::new();
        for author in authors {
            let prefix = format!("at://{author}/");
            for (key, _) in self
                .posts
                .range(prefix.clone()..format!("{prefix}\u{10FFFF}"))
            {
                if let Some(info) = self.load_post_key(key) {
                    out.push(info);
                }
            }
        }
        out
    }

    /// The most recent posts by accounts `viewer` follows (a simple
    /// "following" timeline), in canonical order — newest `created_at`
    /// first, ties broken by URI.
    pub fn following_timeline(&self, viewer: &Did, limit: usize) -> Vec<PostInfo> {
        let mut posts = self.posts_by_authors(&self.follow_targets(viewer));
        sort_timeline(&mut posts);
        posts.truncate(limit);
        posts
    }

    /// Residency/spill statistics of the backing block store. Call
    /// [`AppViewIndex::flush`] first for steady-state numbers — dirty
    /// counters and write-back-buffered blocks are resident until flushed.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Counter mutations that landed on an already-dirty entity — block
    /// writes the hot/cold split coalesced away relative to the old
    /// one-block-per-entity design.
    pub fn counter_coalesced_writes(&self) -> u64 {
        self.counter_coalesced_writes
    }

    /// Merge another index's state into this one (the associative merge the
    /// entity-sharded [`crate::shards::AppViewShards`] and the engine-shard
    /// worlds rely on). Entity sets must be disjoint — shards partition
    /// entities by hash, so they always are; counters add and edge sets
    /// union. Both sides are flushed first, so only flushed blocks travel.
    pub fn merge(&mut self, mut other: AppViewIndex) {
        self.flush();
        other.flush();
        for (key, entry) in &other.posts {
            debug_assert!(
                !self.posts.contains_key(key),
                "post shards must be disjoint"
            );
            // The source store lost the content block (spill-file corruption
            // reads as absent): the entity cannot travel, but the loss is
            // counted — never silent.
            let Some(bytes) = other.store.get(&entry.content) else {
                self.lost_entities += 1;
                continue;
            };
            self.store.put(entry.content, bytes);
            // Counter blocks are re-encoded through the collision-aware
            // writer: two source shards may hold hash-colliding blocks that
            // only clash once they share a store. A lost counter block
            // keeps the entity (zeroed) and counts the loss.
            let counters = match entry.counters {
                Some(cid) => match other
                    .store
                    .get(&cid)
                    .as_deref()
                    .and_then(PostCounters::from_block)
                {
                    Some(counters) => {
                        self.put_counter_block(key, None, |tag| counters.to_block(tag))
                    }
                    None => {
                        self.lost_entities += 1;
                        None
                    }
                },
                None => None,
            };
            self.posts.insert(
                key.clone(),
                EntityRef {
                    content: entry.content,
                    counters,
                },
            );
        }
        for (key, entry) in &other.actors {
            debug_assert!(
                !self.actors.contains_key(key),
                "actor shards must be disjoint"
            );
            let Some(bytes) = other.store.get(&entry.content) else {
                self.lost_entities += 1;
                continue;
            };
            self.store.put(entry.content, bytes);
            let counters = match entry.counters {
                Some(cid) => match other
                    .store
                    .get(&cid)
                    .as_deref()
                    .and_then(ActorCounters::from_block)
                {
                    Some(counters) => {
                        self.put_counter_block(key, None, |tag| counters.to_block(tag))
                    }
                    None => {
                        self.lost_entities += 1;
                        None
                    }
                },
                None => None,
            };
            self.actors.insert(
                key.clone(),
                EntityRef {
                    content: entry.content,
                    counters,
                },
            );
        }
        self.follow_edges.extend(other.follow_edges);
        self.block_edges.extend(other.block_edges);
        self.events_processed += other.events_processed;
        self.records_indexed += other.records_indexed;
        self.labels_ingested += other.labels_ingested;
        self.labels_preindex += other.labels_preindex;
        self.lost_entities += other.lost_entities;
        self.counter_coalesced_writes += other.counter_coalesced_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{FollowRecord, LikeRecord};

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 15, 9, 0, 0).unwrap()
    }

    fn did(name: &str) -> Did {
        Did::plc_from_seed(name.as_bytes())
    }

    fn post_nsid() -> Nsid {
        Nsid::parse(known::POST).unwrap()
    }

    fn setup() -> (AppViewIndex, Did, Did, AtUri) {
        let mut index = AppViewIndex::new();
        let alice = did("alice");
        let bob = did("bob");
        index.upsert_actor(&alice, &Handle::parse("alice.bsky.social").unwrap());
        index.upsert_actor(&bob, &Handle::parse("bob.bsky.social").unwrap());
        index.index_record(
            &alice,
            &post_nsid(),
            "post00000001",
            &Record::Post(PostRecord::simple("hello world", "en", now())),
            now(),
        );
        let uri = AtUri::record(alice.clone(), post_nsid(), "post00000001");
        (index, alice, bob, uri)
    }

    #[test]
    fn posts_likes_reposts_follows_blocks() {
        let (mut index, alice, bob, uri) = setup();
        assert_eq!(index.post_count(), 1);
        assert_eq!(index.actor(&alice).unwrap().posts, 1);

        index.index_record(
            &bob,
            &Nsid::parse(known::LIKE).unwrap(),
            "like00000001",
            &Record::Like(LikeRecord {
                subject: uri.clone(),
                created_at: now(),
            }),
            now(),
        );
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "follow0000001",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert_eq!(index.post(&uri).unwrap().like_count, 1);
        assert!(index.follows(&bob, &alice));
        assert!(!index.follows(&alice, &bob));
        assert_eq!(index.actor(&alice).unwrap().followers, 1);
        assert_eq!(index.actor(&bob).unwrap().follows, 1);

        // Duplicate follow records do not double-count.
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "follow0000002",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert_eq!(index.actor(&alice).unwrap().followers, 1);

        index.index_record(
            &alice,
            &Nsid::parse(known::BLOCK).unwrap(),
            "block0000001",
            &Record::Block(bsky_atproto::record::BlockRecord {
                subject: bob.clone(),
                created_at: now(),
            }),
            now(),
        );
        assert!(index.blocks(&alice, &bob));
        assert_eq!(index.actor(&bob).unwrap().blocked_by, 1);
        assert_eq!(index.records_indexed(), 5);
    }

    #[test]
    fn labels_apply_and_rescind() {
        let (mut index, _alice, _bob, uri) = setup();
        let labeler = did("labeler");
        let label = Label::new(
            labeler.clone(),
            LabelTarget::Record(uri.clone()),
            "porn",
            now(),
        )
        .unwrap();
        index.ingest_label(&label);
        assert_eq!(index.post(&uri).unwrap().labels.len(), 1);
        // Duplicate application is idempotent.
        index.ingest_label(&label);
        assert_eq!(index.post(&uri).unwrap().labels.len(), 1);
        index.ingest_label(&label.negation(now()));
        assert!(index.post(&uri).unwrap().labels.is_empty());
        assert_eq!(index.labels_ingested(), 3);
        assert_eq!(index.labels_preindex(), 0);

        // Account-level labels.
        let account_label =
            Label::new(labeler, LabelTarget::Account(did("alice")), "spam", now()).unwrap();
        index.ingest_label(&account_label);
        assert_eq!(index.actor(&did("alice")).unwrap().account_labels.len(), 1);
    }

    #[test]
    fn tombstone_purges_posts() {
        let (mut index, alice, _bob, uri) = setup();
        let event = Event {
            seq: 1,
            time: now(),
            body: EventBody::Tombstone { did: alice.clone() },
        };
        index.process_event(&event);
        assert!(index.post(&uri).is_none());
        assert!(index.actor(&alice).unwrap().deleted);
        assert_eq!(index.events_processed(), 1);
    }

    #[test]
    fn handle_change_events_update_actors() {
        let (mut index, alice, _bob, _uri) = setup();
        index.process_event(&Event {
            seq: 2,
            time: now(),
            body: EventBody::HandleChange {
                did: alice.clone(),
                handle: Handle::parse("alice.example.com").unwrap(),
            },
        });
        assert_eq!(
            index.actor(&alice).unwrap().handle.as_str(),
            "alice.example.com"
        );
    }

    #[test]
    fn remove_post_and_timeline() {
        let (mut index, alice, bob, uri) = setup();
        index.index_record(
            &bob,
            &Nsid::parse(known::FOLLOW).unwrap(),
            "f1",
            &Record::Follow(FollowRecord {
                subject: alice.clone(),
                created_at: now(),
            }),
            now(),
        );
        // Bob follows Alice, so Bob's timeline shows Alice's post.
        let timeline = index.following_timeline(&bob, 10);
        assert_eq!(timeline.len(), 1);
        // Alice follows nobody.
        assert!(index.following_timeline(&alice, 10).is_empty());
        index.remove_post(&uri);
        assert_eq!(index.post_count(), 0);
        assert_eq!(index.actor(&alice).unwrap().posts, 0);
        assert!(index.following_timeline(&bob, 10).is_empty());
    }

    #[test]
    fn entity_blocks_roundtrip() {
        let (index, alice, _bob, uri) = setup();
        let post = index.post(&uri).unwrap();
        assert_eq!(
            PostInfo::from_content(&post.content_block()).map(|p| p.with_counters(post.counters())),
            Some(post.clone())
        );
        let mut labeled = post;
        labeled.labels.push((did("labeler"), "spam".into()));
        labeled.like_count = 7;
        // Counters round-trip through their own compact block, content
        // through its own; together they reconstruct the full info.
        let counters = PostCounters::from_block(
            &labeled
                .counters()
                .to_block(counter_tag(&labeled.uri.to_string())),
        )
        .unwrap();
        assert_eq!(
            PostInfo::from_content(&labeled.content_block()).map(|p| p.with_counters(counters)),
            Some(labeled)
        );
        let actor = index.actor(&alice).unwrap();
        let actor_counters = ActorCounters::from_block(
            &actor
                .counters()
                .to_block(counter_tag(&actor.did.to_string())),
        )
        .unwrap();
        assert_eq!(
            ActorInfo::from_content(&actor.content_block())
                .map(|a| a.with_counters(actor_counters)),
            Some(actor)
        );
        assert!(PostInfo::from_content(b"garbage").is_none());
        assert!(ActorInfo::from_content(b"garbage").is_none());
        assert!(PostCounters::from_block(b"garbage").is_none());
        assert!(ActorCounters::from_block(b"garbage").is_none());
    }

    #[test]
    fn counter_flush_writes_compact_blocks_and_coalesces() {
        let (mut index, _alice, bob, uri) = setup();
        // Default counters, never bumped: no counter block exists even
        // after a flush.
        index.flush();
        assert!(index.posts.values().all(|e| e.counters.is_none()));
        // Same-day bumps coalesce in the dirty map: first bump dirties,
        // the rest are pure map updates.
        for _ in 0..5 {
            index.apply_like(&uri);
        }
        assert_eq!(index.counter_coalesced_writes(), 4);
        assert_eq!(index.post(&uri).unwrap().like_count, 5, "dirty overlay");
        index.flush();
        assert!(index.dirty_posts.is_empty());
        let entry = index.posts.get(&uri.to_string()).copied().unwrap();
        let block = index.store.get(&entry.counters.unwrap()).unwrap();
        assert!(
            block.len() < 40,
            "counter blocks stay compact ({} bytes)",
            block.len()
        );
        assert_eq!(index.post(&uri).unwrap().like_count, 5, "flushed overlay");
        // Counters that return to default drop their block at flush.
        index.update_post_counters(&uri.to_string(), |c| *c = PostCounters::default());
        index.flush();
        let entry = index.posts.get(&uri.to_string()).copied().unwrap();
        assert!(entry.counters.is_none(), "default state needs no block");
        let _ = bob;
    }

    #[test]
    fn counter_tag_collision_falls_back_to_full_key() {
        let (mut index, _alice, _bob, uri) = setup();
        index.apply_like(&uri);
        // Forge another entity's counter block that collides byte-for-byte
        // with what the hash-tagged encoding would produce for `uri`.
        let counters = PostCounters {
            like_count: 1,
            repost_count: 0,
        };
        let forged = counters.to_block(counter_tag(&uri.to_string()));
        let forged_cid = Cid::for_cbor(&forged);
        index.store.put(forged_cid, forged);
        index.flush();
        let entry = index.posts.get(&uri.to_string()).copied().unwrap();
        let cid = entry.counters.unwrap();
        assert_ne!(cid, forged_cid, "collision must divert to the full key");
        assert_eq!(
            PostCounters::from_block(&index.store.get(&cid).unwrap()),
            Some(counters)
        );
        assert_eq!(index.post(&uri).unwrap().like_count, 1);
    }

    #[test]
    fn paged_store_backend_answers_identically() {
        use bsky_atproto::blockstore::StoreConfig;
        let build = |store: &StoreConfig, write_back: bool| {
            let mut index = AppViewIndex::with_store(store, write_back);
            let alice = did("alice");
            index.upsert_actor(&alice, &Handle::parse("alice.bsky.social").unwrap());
            for i in 0..40 {
                index.index_record(
                    &alice,
                    &post_nsid(),
                    &format!("post{i:08}"),
                    &Record::Post(PostRecord::simple(
                        format!("post number {i}"),
                        "en",
                        now().plus_seconds(i),
                    )),
                    now(),
                );
            }
            index.flush();
            index
        };
        let mem = build(&StoreConfig::mem(), true);
        let paged = build(&StoreConfig::paged().page_size(256).resident_pages(1), true);
        assert!(
            paged.store_stats().spilled_bytes > 0,
            "tiny pages must spill: {:?}",
            paged.store_stats()
        );
        assert!(paged.store_stats().resident_bytes < mem.store_stats().resident_bytes);
        assert_eq!(mem.posts(), paged.posts());
        assert_eq!(mem.actors(), paged.actors());
        // The write-back cache is observationally transparent per backend.
        for store in [
            StoreConfig::mem(),
            StoreConfig::paged().page_size(256).resident_pages(1),
        ] {
            let cached = build(&store, true);
            let raw = build(&store, false);
            assert_eq!(cached.posts(), raw.posts());
            assert_eq!(cached.actors(), raw.actors());
            let stats = cached.store_stats();
            assert_eq!(stats.writeback_flushes, 1, "one flush drained the cache");
            assert_eq!(raw.store_stats().writeback_flushes, 0);
        }
    }

    #[test]
    fn merge_combines_disjoint_indices() {
        let (index, alice, bob, uri) = setup();
        let mut other = AppViewIndex::new();
        let carol = did("carol");
        other.upsert_actor(&carol, &Handle::parse("carol.bsky.social").unwrap());
        other.index_record(
            &carol,
            &post_nsid(),
            "post00000009",
            &Record::Post(PostRecord::simple("from carol", "en", now())),
            now(),
        );
        let mut merged = index.clone();
        merged.merge(other);
        assert_eq!(merged.post_count(), 2);
        assert_eq!(merged.actor_count(), 3);
        assert_eq!(merged.records_indexed(), 2);
        assert!(merged.post(&uri).is_some());
        assert_eq!(merged.actor(&carol).unwrap().posts, 1);
        assert_eq!(merged.lost_entities(), 0, "no blocks lost in a mem merge");
        let _ = (alice, bob);
    }
}
