//! # bsky-appview
//!
//! The AppView: the centralized component that collates network data into a
//! client-usable form (§2 of the paper).
//!
//! * [`index`] — post/actor/graph indices fed by the firehose and label
//!   streams.
//! * [`moderation`] — combining labels with per-user preferences into
//!   show/warn/hide decisions, including reserved-label and adult-content
//!   hardcoded behaviour.
//! * [`api`] — the public API surface the study crawls: `getProfile`,
//!   `getFeedGenerator`, `getFeed`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod index;
pub mod moderation;

pub use api::{AppView, FeedGeneratorView, ProfileView};
pub use index::{ActorInfo, AppViewIndex, PostInfo};
pub use moderation::{decide_post_visibility, summarize_feed_visibility, Visibility};
