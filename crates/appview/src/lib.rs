//! # bsky-appview
//!
//! The AppView: the centralized component that collates network data into a
//! client-usable form (§2 of the paper).
//!
//! * [`index`] — post/actor/graph indices fed by the firehose and label
//!   streams. Per-entity state ([`PostInfo`], [`ActorInfo`]) is encoded as
//!   DAG-CBOR blocks in a pluggable
//!   [`bsky_atproto::blockstore::BlockStore`]; only the `key → CID` maps,
//!   graph edge sets and counters stay resident, so the paged backend
//!   bounds the AppView's memory like it already bounds repositories and
//!   the relay mirror.
//! * [`shards`] — [`AppViewShards`]: the indices sharded by *entity hash*
//!   (posts by AT-URI hash, actors and their outgoing graph edges by
//!   [`bsky_atproto::Did::shard_hash`] — the same hash the workload plan
//!   partitions the population by). Ingestion decomposes into per-entity
//!   primitives routed to the owning shard; queries fan out and re-merge
//!   under the canonical `(created_at desc, uri)` order; an associative
//!   merge (mirroring the study pipeline's `Analyzer::merge`) collapses
//!   shard sets back into a monolithic index. A property test pins
//!   sharded == monolithic for random event/label interleavings.
//! * [`moderation`] — combining labels with per-user preferences into
//!   show/warn/hide decisions, including reserved-label and adult-content
//!   hardcoded behaviour.
//! * [`api`] — the public API surface the study crawls: `getProfile`,
//!   `getFeedGenerator`, `getFeed` — served from the sharded indices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod index;
pub mod moderation;
pub mod shards;

pub use api::{AppView, FeedGeneratorView, ProfileView};
pub use index::{ActorCounters, ActorInfo, AppViewIndex, PostCounters, PostInfo};
pub use moderation::{decide_post_visibility, summarize_feed_visibility, Visibility};
pub use shards::AppViewShards;
