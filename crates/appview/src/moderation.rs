//! Client-side moderation decisions.
//!
//! Labels only become moderation when a client combines them with the
//! viewer's preferences (§2, §6): for each Labeler the user subscribes to and
//! for each label value, the preference says whether to ignore, warn or hide.
//! Reserved `!` labels from the official Bluesky Labeler are enforced
//! regardless of preferences, and adult-content labels are hidden for users
//! who have not enabled adult content.

use crate::index::PostInfo;
use bsky_atproto::label::{is_reserved_value, ADULT_CONTENT_LABELS};
use bsky_atproto::Did;
use bsky_pds::{LabelAction, ModerationPreferences};

/// The visibility decision for a piece of content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Visibility {
    /// Show normally.
    Show,
    /// Show behind a warning.
    Warn,
    /// Hide from the viewer.
    Hide,
}

/// Decide the visibility of a post for a viewer.
///
/// `official_labeler` is the mandatory Bluesky labeler every user is
/// subscribed to (§6.2: "unsubscribing is not an option").
pub fn decide_post_visibility(
    post: &PostInfo,
    preferences: &ModerationPreferences,
    official_labeler: &Did,
) -> Visibility {
    let mut decision = Visibility::Show;
    for (src, value) in &post.labels {
        let from_official = src == official_labeler;
        let subscribed = from_official || preferences.subscribed_labelers.contains(src);
        if !subscribed {
            continue;
        }
        // Reserved values are only honoured from the official labeler and
        // always hide.
        if is_reserved_value(value) {
            if from_official {
                return Visibility::Hide;
            }
            continue;
        }
        // Age-gated values hide unless adult content is enabled; they have
        // hardcoded behaviour from any labeler (§6.2).
        if ADULT_CONTENT_LABELS.contains(&value.as_str()) && !preferences.adult_content_enabled {
            decision = decision.max(Visibility::Hide);
            continue;
        }
        let action = preferences.action_for(value);
        let vis = match action {
            LabelAction::Ignore => Visibility::Show,
            LabelAction::Warn => Visibility::Warn,
            LabelAction::Hide => Visibility::Hide,
        };
        decision = decision.max(vis);
    }
    decision
}

/// Filter a feed, returning `(visible, warned, hidden)` counts — the shape a
/// client uses to render a timeline and the study uses to sanity-check the
/// moderation pipeline end to end.
pub fn summarize_feed_visibility(
    posts: &[&PostInfo],
    preferences: &ModerationPreferences,
    official_labeler: &Did,
) -> (usize, usize, usize) {
    let mut show = 0;
    let mut warn = 0;
    let mut hide = 0;
    for post in posts {
        match decide_post_visibility(post, preferences, official_labeler) {
            Visibility::Show => show += 1,
            Visibility::Warn => warn += 1,
            Visibility::Hide => hide += 1,
        }
    }
    (show, warn, hide)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::PostRecord;
    use bsky_atproto::{AtUri, Datetime, Nsid};

    fn official() -> Did {
        Did::plc_from_seed(b"bluesky-official-labeler")
    }

    fn community() -> Did {
        Did::plc_from_seed(b"community-labeler")
    }

    fn post_with_labels(labels: Vec<(Did, &str)>) -> PostInfo {
        let author = Did::plc_from_seed(b"author");
        PostInfo {
            uri: AtUri::record(
                author.clone(),
                Nsid::parse(known::POST).unwrap(),
                "rkey000000001",
            ),
            author,
            record: PostRecord::simple("content", "en", Datetime::from_ymd(2024, 4, 1).unwrap()),
            indexed_at: Datetime::from_ymd(2024, 4, 1).unwrap(),
            like_count: 0,
            repost_count: 0,
            labels: labels
                .into_iter()
                .map(|(d, v)| (d, v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn unlabeled_posts_show() {
        let prefs = ModerationPreferences::default();
        let post = post_with_labels(vec![]);
        assert_eq!(
            decide_post_visibility(&post, &prefs, &official()),
            Visibility::Show
        );
    }

    #[test]
    fn takedown_from_official_always_hides() {
        let prefs = ModerationPreferences {
            adult_content_enabled: true,
            ..Default::default()
        };
        let post = post_with_labels(vec![(official(), "!takedown")]);
        assert_eq!(
            decide_post_visibility(&post, &prefs, &official()),
            Visibility::Hide
        );
        // The same value from a community labeler the user subscribes to is
        // ignored (reserved values are only valid from the official labeler).
        let mut prefs2 = ModerationPreferences::default();
        prefs2.subscribe(community());
        let post2 = post_with_labels(vec![(community(), "!takedown")]);
        assert_eq!(
            decide_post_visibility(&post2, &prefs2, &official()),
            Visibility::Show
        );
    }

    #[test]
    fn adult_content_is_age_gated() {
        let prefs = ModerationPreferences::default();
        let post = post_with_labels(vec![(official(), "porn")]);
        assert_eq!(
            decide_post_visibility(&post, &prefs, &official()),
            Visibility::Hide
        );
        let mut adult_ok = ModerationPreferences {
            adult_content_enabled: true,
            ..Default::default()
        };
        adult_ok
            .label_actions
            .insert("porn".into(), LabelAction::Ignore);
        assert_eq!(
            decide_post_visibility(&post, &adult_ok, &official()),
            Visibility::Show
        );
    }

    #[test]
    fn unsubscribed_community_labels_are_ignored() {
        let prefs = ModerationPreferences::default();
        let post = post_with_labels(vec![(community(), "no-alt-text")]);
        assert_eq!(
            decide_post_visibility(&post, &prefs, &official()),
            Visibility::Show
        );
        let mut subscribed = ModerationPreferences::default();
        subscribed.subscribe(community());
        assert_eq!(
            decide_post_visibility(&post, &subscribed, &official()),
            Visibility::Warn
        );
        subscribed
            .label_actions
            .insert("no-alt-text".into(), LabelAction::Hide);
        assert_eq!(
            decide_post_visibility(&post, &subscribed, &official()),
            Visibility::Hide
        );
    }

    #[test]
    fn strictest_decision_wins() {
        let mut prefs = ModerationPreferences::default();
        prefs.subscribe(community());
        prefs.label_actions.insert("spam".into(), LabelAction::Warn);
        prefs
            .label_actions
            .insert("trolling".into(), LabelAction::Hide);
        let post = post_with_labels(vec![(community(), "spam"), (community(), "trolling")]);
        assert_eq!(
            decide_post_visibility(&post, &prefs, &official()),
            Visibility::Hide
        );
    }

    /// Ingestion-to-decision coverage: how labels reach the index drives
    /// what the moderation layer can decide, so the ingestion edge cases
    /// are pinned here against the visibility outcome, at 1 and 4 entity
    /// shards.
    mod ingestion {
        use super::*;
        use crate::api::AppView;
        use bsky_atproto::blockstore::StoreConfig;
        use bsky_atproto::label::{Label, LabelTarget};
        use bsky_atproto::nsid::known;
        use bsky_atproto::record::Record;
        use bsky_atproto::{AtUri, Nsid};

        fn now() -> Datetime {
            Datetime::from_ymd_hms(2024, 4, 10, 10, 0, 0).unwrap()
        }

        fn seeded(shards: usize) -> (AppView, AtUri) {
            let mut appview = AppView::with_shards(shards, &StoreConfig::mem(), true);
            let author = Did::plc_from_seed(b"author");
            appview.index_mut().index_record(
                &author,
                &Nsid::parse(known::POST).unwrap(),
                "rkey000000001",
                &Record::Post(PostRecord::simple("content", "en", now())),
                now(),
            );
            let uri = AtUri::record(author, Nsid::parse(known::POST).unwrap(), "rkey000000001");
            (appview, uri)
        }

        fn spam(uri: &AtUri) -> Label {
            Label::new(official(), LabelTarget::Record(uri.clone()), "spam", now()).unwrap()
        }

        #[test]
        fn duplicate_label_delivery_is_idempotent() {
            for shards in [1, 4] {
                let (mut appview, uri) = seeded(shards);
                // The same stream entry delivered three times (a labeler
                // replaying its stream) applies exactly once.
                for _ in 0..3 {
                    appview.index_mut().ingest_label(&spam(&uri));
                }
                let post = appview.index().post(&uri).unwrap();
                assert_eq!(post.labels.len(), 1, "{shards} shard(s)");
                assert_eq!(appview.index().labels_ingested(), 3);
                assert_eq!(appview.index().labels_preindex(), 0);
                // The decision reflects one warning-grade label, not three.
                let mut prefs = ModerationPreferences::default();
                prefs.label_actions.insert("spam".into(), LabelAction::Warn);
                assert_eq!(
                    decide_post_visibility(&post, &prefs, &official()),
                    Visibility::Warn
                );
            }
        }

        #[test]
        fn rescinded_label_clears_the_earlier_application() {
            for shards in [1, 4] {
                let (mut appview, uri) = seeded(shards);
                appview.index_mut().ingest_label(&spam(&uri));
                appview
                    .index_mut()
                    .ingest_label(&spam(&uri).negation(now().plus_seconds(60)));
                let post = appview.index().post(&uri).unwrap();
                assert!(post.labels.is_empty(), "{shards} shard(s)");
                let mut prefs = ModerationPreferences::default();
                prefs.label_actions.insert("spam".into(), LabelAction::Hide);
                assert_eq!(
                    decide_post_visibility(&post, &prefs, &official()),
                    Visibility::Show,
                    "a rescinded label must not hide the post"
                );
            }
        }

        #[test]
        fn labels_racing_their_post_are_counted_not_silently_dropped() {
            for shards in [1, 4] {
                let mut appview = AppView::with_shards(shards, &StoreConfig::mem(), true);
                let author = Did::plc_from_seed(b"author");
                let uri = AtUri::record(
                    author.clone(),
                    Nsid::parse(known::POST).unwrap(),
                    "rkey000000001",
                );
                // The label stream races ahead of the firehose: the label
                // arrives before the post is indexed. It cannot apply —
                // but the gap is counted, like `repo_snapshot_skips`.
                appview.index_mut().ingest_label(&spam(&uri));
                assert_eq!(appview.index().labels_ingested(), 1);
                assert_eq!(
                    appview.index().labels_preindex(),
                    1,
                    "{shards} shard(s): early label must be counted"
                );
                // Account-level labels for unknown actors count the same way.
                let account_label = Label::new(
                    official(),
                    LabelTarget::Account(Did::plc_from_seed(b"nobody-yet")),
                    "spam",
                    now(),
                )
                .unwrap();
                appview.index_mut().ingest_label(&account_label);
                assert_eq!(appview.index().labels_preindex(), 2);
                // Once the post lands, later deliveries apply normally.
                appview.index_mut().index_record(
                    &author,
                    &Nsid::parse(known::POST).unwrap(),
                    "rkey000000001",
                    &Record::Post(PostRecord::simple("content", "en", now())),
                    now(),
                );
                appview.index_mut().ingest_label(&spam(&uri));
                assert_eq!(appview.index().post(&uri).unwrap().labels.len(), 1);
                assert_eq!(appview.index().labels_preindex(), 2, "no new gap");
            }
        }
    }

    #[test]
    fn feed_summary_counts() {
        let prefs = ModerationPreferences::default();
        let clean = post_with_labels(vec![]);
        let warned = post_with_labels(vec![(official(), "spam")]);
        let hidden = post_with_labels(vec![(official(), "porn")]);
        let posts = [&clean, &warned, &hidden];
        assert_eq!(
            summarize_feed_visibility(&posts, &prefs, &official()),
            (1, 1, 1)
        );
    }
}
