//! Hierarchical relay federation (ROADMAP: million-DID scale-out).
//!
//! The real AT Protocol network is not a single relay mirroring every PDS:
//! operators run *intermediate* relays close to PDS clusters, and downstream
//! consumers (including Bluesky's own infrastructure) subscribe to an
//! aggregated super-relay. This module reproduces that topology:
//!
//! ```text
//!   PDS fleet (hostname-sorted)
//!     ├── slice 0 ──► regional relay 0 ─┐
//!     ├── slice 1 ──► regional relay 1 ─┼──► super-relay (hub) ──► firehose
//!     └── slice N ──► regional relay N ─┘      consumers (AppView, study
//!                                              collector, observatory taps)
//! ```
//!
//! * **Partitioning** — region `r` of `n` crawls the contiguous slice
//!   `[r·len/n, (r+1)·len/n)` of the hostname-sorted PDS list. Because a
//!   single whole-fleet relay crawls hosts in exactly that sorted order,
//!   forwarding region 0's frames first, then region 1's, … reproduces the
//!   single-relay event interleaving *byte for byte*: same bodies, same
//!   receive times, same dense hub sequence numbers, same wire sizes.
//! * **Cursor-resumable forwarding** — the federation keeps one firehose
//!   cursor per region and forwards only frames past it, so a forwarding
//!   pass is idempotent and resumable like any other firehose subscription.
//! * **Cross-relay dedup** — commits are deduplicated by `(did, rev)` (a
//!   repo revision is a monotonically increasing TID, so the same pair can
//!   only ever denote the same commit); identity/handle/tombstone frames
//!   carry no revision and are deduplicated by their PDS outbox provenance
//!   `(host, outbox_seq)` recorded at crawl time. A frame that reaches the
//!   hub via two regions is mirrored and emitted exactly once, and every
//!   drop is counted on the hub's [`RelayStats`](crate::stats::RelayStats).
//! * **Backfill-on-join** — a region joining late walks the hub's
//!   `listRepos` view and pulls its slice's repositories through the
//!   existing `getRepo(since)` delta path: repos it already holds at an
//!   older revision cost O(delta), unknown repos cost one full fetch.
//! * **Link accounting** — every forwarded frame is recorded on a passive
//!   per-link `(time, size)` tap keyed `region->hub`, extending the §10
//!   observatory from PDS↔relay wires to relay↔relay wires.
//!
//! Regional relays and the hub each ride their own [`BlockStore`]
//! (`StoreConfig::paged()` everywhere for bounded residency), so the
//! federation's resident footprint stays sublinear in population: mirrors
//! spill cold archives and only the dedup index and forwarding cursors stay
//! hot.
//!
//! [`BlockStore`]: bsky_atproto::blockstore::BlockStore

use crate::firehose::RETENTION_SECONDS;
use crate::relay::{EventOrigin, Relay};
use bsky_atproto::blockstore::{StoreConfig, StoreStats};
use bsky_atproto::firehose::{Event, EventBody, Seq};
use bsky_atproto::Datetime;
use bsky_pds::PdsFleet;
use bsky_simnet::observer::{ConnTrace, WireObserver};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Identity of a frame for cross-relay deduplication.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum DedupKey {
    /// Commits: `(did, rev)`. Revisions are per-repo monotonic TIDs, so
    /// equal pairs always denote the same commit regardless of route.
    Commit { did: String, rev: String },
    /// Revision-less frames: the PDS outbox slot that produced them.
    Origin { host: String, outbox_seq: u64 },
}

/// Time-windowed set of already-forwarded frame identities. Entries expire
/// with the firehose retention window: a frame old enough to have fallen
/// out of every regional log can no longer be re-forwarded, so its key need
/// not be remembered.
#[derive(Debug, Clone, Default)]
struct DedupIndex {
    seen: BTreeMap<DedupKey, i64>,
}

impl DedupIndex {
    /// The dedup identity of `event`, if it has one. Commits always do;
    /// other frames need recorded provenance.
    fn key_for(event: &Event, origin: Option<&EventOrigin>) -> Option<DedupKey> {
        match &event.body {
            EventBody::Commit { did, rev, .. } => Some(DedupKey::Commit {
                did: did.to_string(),
                rev: rev.to_string(),
            }),
            _ => origin.map(|o| DedupKey::Origin {
                host: o.host.clone(),
                outbox_seq: o.outbox_seq,
            }),
        }
    }

    /// Admit a key, returning `false` when it was already present (a
    /// duplicate delivery).
    fn admit(&mut self, key: DedupKey, time: i64) -> bool {
        match self.seen.entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                slot.insert(time);
                true
            }
        }
    }

    /// Expire entries older than the firehose retention window.
    fn prune(&mut self, now: Datetime) {
        let cutoff = now.timestamp() - RETENTION_SECONDS;
        self.seen.retain(|_, t| *t >= cutoff);
    }

    fn len(&self) -> usize {
        self.seen.len()
    }
}

/// Outcome of a region backfill pass (see
/// [`RelayFederation::backfill_region`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackfillSummary {
    /// Repositories fetched into the region's mirror.
    pub repos: usize,
    /// How many required a full CAR fetch (previously unmirrored).
    pub full_fetches: u64,
    /// How many refreshed through the `getRepo(since)` delta path.
    pub delta_fetches: u64,
    /// Total bytes pulled from PDSes (full CARs plus deltas).
    pub bytes_fetched: u64,
}

/// The regional tier of a relay hierarchy: N regional relays, each crawling
/// a contiguous slice of the hostname-sorted PDS fleet, forwarding their
/// firehoses into a super-relay ("hub") with cross-relay dedup. See the
/// [module docs](self) for the topology and the byte-identity argument.
#[derive(Debug, Clone)]
pub struct RelayFederation {
    regions: Vec<Relay>,
    /// Per-region forwarding cursor into that region's firehose.
    cursors: Vec<Seq>,
    dedup: DedupIndex,
    /// Passive `(time, size)` tap of the region→hub wires, keyed
    /// `"<region hostname>-><hub hostname>"`.
    links: WireObserver,
}

impl RelayFederation {
    /// Create `regions` regional relays, each mirror riding its own block
    /// store built from `store`.
    pub fn new(regions: usize, store: &StoreConfig) -> RelayFederation {
        let regions = regions.max(1);
        RelayFederation {
            regions: (0..regions)
                .map(|r| Relay::with_store(format!("relay{r:02}.bsky.network"), store))
                .collect(),
            cursors: vec![0; regions],
            dedup: DedupIndex::default(),
            links: WireObserver::new(),
        }
    }

    /// Number of regional relays.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// A regional relay by index.
    pub fn region(&self, r: usize) -> &Relay {
        &self.regions[r]
    }

    /// Mutable access to a regional relay (tests inject duplicate and
    /// reordered deliveries through this).
    pub fn region_mut(&mut self, r: usize) -> &mut Relay {
        &mut self.regions[r]
    }

    /// Hostname slices: region `r` owns `hosts[r*len/n .. (r+1)*len/n]` of
    /// the hostname-sorted fleet.
    pub fn region_hosts(&self, fleet: &PdsFleet) -> Vec<Vec<String>> {
        Self::partition(fleet, self.regions.len())
    }

    fn partition(fleet: &PdsFleet, regions: usize) -> Vec<Vec<String>> {
        let hostnames: Vec<String> = fleet.servers().map(|p| p.hostname().to_string()).collect();
        let len = hostnames.len();
        (0..regions)
            .map(|r| hostnames[r * len / regions..(r + 1) * len / regions].to_vec())
            .collect()
    }

    /// One federation step: every region crawls its PDS slice, then all new
    /// regional frames are forwarded into `hub` (region 0 first — exactly
    /// the order a single whole-fleet relay would have interleaved them),
    /// deduplicated across regions. Prunes every tier's retention window
    /// afterwards. Returns the number of frames the hub accepted.
    pub fn crawl_and_forward(&mut self, hub: &mut Relay, fleet: &PdsFleet, now: Datetime) -> usize {
        let parts = Self::partition(fleet, self.regions.len());
        for (region, hosts) in self.regions.iter_mut().zip(&parts) {
            region.crawl_hosts(fleet, now, |h| hosts.iter().any(|x| x == h));
        }
        let forwarded = self.forward_into(hub, now);
        for region in &mut self.regions {
            region.prune_firehose(now);
        }
        hub.prune_firehose(now);
        forwarded
    }

    /// Forward every regional frame past its forwarding cursor into `hub`,
    /// deduplicating across regions. Exposed separately from
    /// [`RelayFederation::crawl_and_forward`] so tests can inject crafted
    /// regional streams; production stepping uses `crawl_and_forward`.
    pub fn forward_into(&mut self, hub: &mut Relay, now: Datetime) -> usize {
        let mut forwarded = 0usize;
        for r in 0..self.regions.len() {
            let sub = self.regions[r].subscribe(self.cursors[r]);
            self.cursors[r] = sub.cursor;
            let link = format!("{}->{}", self.regions[r].hostname(), hub.hostname());
            for event in sub.events {
                // Info frames are subscription artifacts (e.g. an
                // OutdatedCursor notice), not network activity.
                if matches!(event.body, EventBody::Info { .. }) {
                    continue;
                }
                self.links
                    .record(&link, event.time.timestamp(), event.wire_size() as u64);
                let origin = self.regions[r].event_origin(event.seq).cloned();
                if let Some(key) = DedupIndex::key_for(&event, origin.as_ref()) {
                    if self.dedup.admit(key, event.time.timestamp()) {
                        hub.stats_mut().record_dedup_tracked();
                    } else {
                        hub.stats_mut().record_duplicate_dropped();
                        continue;
                    }
                }
                hub.ingest_event(event.time, event.body, origin);
                hub.stats_mut().record_forwarded();
                forwarded += 1;
            }
        }
        self.dedup.prune(now);
        forwarded
    }

    /// Pending PDS outbox events across every region's slice — the
    /// federated equivalent of [`Relay::pending_events`].
    pub fn pending_events(&self, fleet: &PdsFleet) -> usize {
        let parts = Self::partition(fleet, self.regions.len());
        self.regions
            .iter()
            .zip(&parts)
            .map(|(region, hosts)| {
                region.pending_events_for(fleet, |h| hosts.iter().any(|x| x == h))
            })
            .sum()
    }

    /// Backfill region `r`'s mirror from the hub's `listRepos` view: every
    /// repository hosted on the region's PDS slice is pulled through the
    /// region's own `getRepo` — a delta refresh when the region already
    /// mirrors an older revision, a full fetch otherwise. This is how a
    /// late-joining region catches up without replaying the (retention-
    /// bounded) firehose.
    pub fn backfill_region(
        &mut self,
        r: usize,
        hub: &Relay,
        fleet: &mut PdsFleet,
        now: Datetime,
    ) -> BackfillSummary {
        let hosts = Self::partition(fleet, self.regions.len())[r].clone();
        let region = &mut self.regions[r];
        let before_full = region.stats().cache_misses();
        let before_delta = region.stats().delta_fetches();
        let before_bytes = region.stats().bytes_fetched_from_pds();
        let mut repos = 0usize;
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = hub.list_repos(cursor.as_deref(), 100);
            for (did, _rev) in &page {
                let hosted_here = fleet
                    .locate(did)
                    .is_some_and(|h| hosts.iter().any(|x| x == h));
                if hosted_here && region.get_repo(did, fleet, now).is_ok() {
                    repos += 1;
                }
            }
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        BackfillSummary {
            repos,
            full_fetches: region.stats().cache_misses() - before_full,
            delta_fetches: region.stats().delta_fetches() - before_delta,
            bytes_fetched: region.stats().bytes_fetched_from_pds() - before_bytes,
        }
    }

    /// Combined residency/spill statistics of every regional mirror store.
    pub fn store_stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for region in &self.regions {
            stats.absorb(&region.store_stats());
        }
        stats
    }

    /// Live entries in the cross-relay dedup index.
    pub fn dedup_entries(&self) -> usize {
        self.dedup.len()
    }

    /// Drain the region→hub link taps accumulated since the last drain,
    /// keyed `"<region>-><hub>"` in deterministic order.
    pub fn take_link_traces(&mut self) -> BTreeMap<String, ConnTrace> {
        self.links.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{PostRecord, Record};
    use bsky_atproto::{Did, Handle, Nsid};
    use bsky_pds::{Pds, PdsOperator};

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 1, 12, 0, 0).unwrap()
    }

    fn post(text: &str) -> Record {
        Record::Post(PostRecord::simple(text, "en", now()))
    }

    fn fleet_with_users(n: usize) -> (PdsFleet, Vec<Did>) {
        let mut fleet = PdsFleet::with_default_servers(4);
        fleet.add_server(Pds::new("self.example", PdsOperator::SelfHosted));
        let hosts: Vec<String> = fleet.servers().map(|p| p.hostname().to_string()).collect();
        let mut dids = Vec::new();
        for i in 0..n {
            let did = Did::plc_from_seed(format!("user{i}").as_bytes());
            let host = hosts[i % hosts.len()].clone();
            fleet
                .create_account_on(
                    &host,
                    did.clone(),
                    Handle::parse(&format!("user{i}.bsky.social")).unwrap(),
                    now(),
                )
                .unwrap();
            dids.push(did);
        }
        (fleet, dids)
    }

    fn seed_activity(fleet: &mut PdsFleet, dids: &[Did]) {
        for (i, did) in dids.iter().enumerate() {
            fleet
                .pds_for_mut(did)
                .unwrap()
                .create_record(
                    did,
                    Nsid::parse(known::POST).unwrap(),
                    post(&format!("post {i}")),
                    now(),
                )
                .unwrap();
        }
        fleet
            .pds_for_mut(&dids[0])
            .unwrap()
            .change_handle(&dids[0], Handle::parse("user0.example.com").unwrap(), now())
            .unwrap();
        fleet
            .pds_for_mut(&dids[1])
            .unwrap()
            .delete_account(&dids[1], now())
            .unwrap();
    }

    fn stream_of(relay: &Relay) -> Vec<Event> {
        relay.subscribe(0).events
    }

    #[test]
    fn federated_stream_is_identical_to_single_relay() {
        let (mut fleet, dids) = fleet_with_users(10);
        seed_activity(&mut fleet, &dids);

        for regions in [1usize, 2, 3] {
            // Fresh single relay and fresh federation crawl with the same
            // schedule: byte identity is a property of equal crawl
            // schedules, not of the federation alone.
            let mut single = Relay::default();
            single.crawl(&fleet, now());
            let mut fed = RelayFederation::new(regions, &StoreConfig::default());
            let mut hub = Relay::default();
            let forwarded = fed.crawl_and_forward(&mut hub, &fleet, now());
            assert_eq!(forwarded, stream_of(&single).len(), "regions={regions}");
            assert_eq!(stream_of(&hub), stream_of(&single), "regions={regions}");
            assert_eq!(
                hub.known_account_count(),
                single.known_account_count(),
                "regions={regions}"
            );
            assert_eq!(hub.stats().duplicates_dropped(), 0);
            assert_eq!(hub.stats().events_forwarded(), hub.stats().dedup_tracked());
            assert_eq!(hub.stats().total_bytes(), single.stats().total_bytes());

            // Incremental forwarding resumes from per-region cursors: the
            // next cycle forwards only new activity, and the hub keeps
            // tracking the single relay event for event.
            let extra = Did::plc_from_seed(format!("late-poster-{regions}").as_bytes());
            let host = fleet.servers().next().unwrap().hostname().to_string();
            fleet
                .create_account_on(
                    &host,
                    extra.clone(),
                    Handle::parse(&format!("late{regions}.bsky.social")).unwrap(),
                    now(),
                )
                .unwrap();
            single.crawl(&fleet, now());
            let delta = fed.crawl_and_forward(&mut hub, &fleet, now());
            assert_eq!(delta, 1, "regions={regions}: one identity frame");
            assert_eq!(stream_of(&hub), stream_of(&single), "regions={regions}");
        }
    }

    #[test]
    fn region_slices_are_contiguous_and_cover_the_fleet() {
        let (fleet, _) = fleet_with_users(4);
        let fed = RelayFederation::new(2, &StoreConfig::default());
        let slices = fed.region_hosts(&fleet);
        let all: Vec<String> = slices.iter().flatten().cloned().collect();
        let sorted: Vec<String> = fleet.servers().map(|p| p.hostname().to_string()).collect();
        assert_eq!(all, sorted, "slices must tile the sorted hostname list");
        assert_eq!(fed.pending_events(&fleet), {
            let relay = Relay::default();
            relay.pending_events(&fleet)
        });
    }

    #[test]
    fn cross_region_duplicates_are_dropped_exactly_once_each() {
        let (mut fleet, dids) = fleet_with_users(8);
        seed_activity(&mut fleet, &dids);

        let mut single = Relay::default();
        single.crawl(&fleet, now());
        let clean = stream_of(&single);

        // Both regions crawl the *whole* fleet: every frame reaches the hub
        // twice, once per region.
        let mut fed = RelayFederation::new(2, &StoreConfig::default());
        fed.region_mut(0).crawl(&fleet, now());
        fed.region_mut(1).crawl(&fleet, now());
        let mut hub = Relay::default();
        let forwarded = fed.forward_into(&mut hub, now());

        assert_eq!(forwarded, clean.len());
        assert_eq!(stream_of(&hub), clean);
        assert_eq!(hub.stats().duplicates_dropped(), clean.len() as u64);
        assert_eq!(hub.stats().dedup_tracked(), clean.len() as u64);
        assert_eq!(fed.dedup_entries(), clean.len());
    }

    /// Satellite: property test for `(did, rev)` dedup. Region 0 carries
    /// the clean stream; region 1 re-delivers the same frames *reordered*
    /// (seeded shuffle) and with every third frame duplicated a second
    /// time. The hub must emit exactly the clean single-relay sequence,
    /// mirror the same repositories, and count every injected duplicate.
    #[test]
    fn dedup_is_order_insensitive_and_counts_every_duplicate() {
        for seed in [7u64, 1234, 987_654] {
            let (mut fleet, dids) = fleet_with_users(9);
            seed_activity(&mut fleet, &dids);

            let mut single = Relay::default();
            single.crawl(&fleet, now());
            let clean = stream_of(&single);

            let mut fed = RelayFederation::new(2, &StoreConfig::default());
            fed.region_mut(0).crawl(&fleet, now());
            // Region 1's stream: clean frames with origins, shuffled by a
            // seeded LCG, every third frame delivered twice.
            let mut replay: Vec<(Event, Option<EventOrigin>)> = clean
                .iter()
                .enumerate()
                .flat_map(|(i, e)| {
                    let origin = fed.region(0).event_origin(e.seq).cloned();
                    let copies = if i % 3 == 0 { 2 } else { 1 };
                    std::iter::repeat_n((e.clone(), origin), copies)
                })
                .collect();
            let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            for i in (1..replay.len()).rev() {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                replay.swap(i, (state >> 33) as usize % (i + 1));
            }
            let injected = replay.len();
            for (event, origin) in replay {
                fed.region_mut(1)
                    .ingest_event(event.time, event.body, origin);
            }

            let mut hub = Relay::default();
            let forwarded = fed.forward_into(&mut hub, now());

            assert_eq!(forwarded, clean.len(), "seed={seed}");
            assert_eq!(stream_of(&hub), clean, "seed={seed}");
            assert_eq!(
                hub.stats().duplicates_dropped(),
                injected as u64,
                "seed={seed}: every region-1 frame is a duplicate"
            );
            // The super-relay mirror equals the single relay's, repo by repo.
            let (hub_repos, _) = hub.list_repos(None, 1000);
            let (single_repos, _) = single.list_repos(None, 1000);
            assert_eq!(hub_repos, single_repos, "seed={seed}");
            for (did, _) in &hub_repos {
                assert_eq!(
                    hub.get_repo(did, &mut fleet, now()).unwrap(),
                    single.get_repo(did, &mut fleet, now()).unwrap(),
                    "seed={seed}"
                );
            }
        }
    }

    #[test]
    fn dedup_index_expires_with_the_retention_window() {
        let mut index = DedupIndex::default();
        let t0 = now();
        assert!(index.admit(
            DedupKey::Origin {
                host: "a".into(),
                outbox_seq: 0
            },
            t0.timestamp()
        ));
        assert!(!index.admit(
            DedupKey::Origin {
                host: "a".into(),
                outbox_seq: 0
            },
            t0.timestamp()
        ));
        index.prune(t0.plus_days(4));
        assert_eq!(index.len(), 0);
        assert!(index.admit(
            DedupKey::Origin {
                host: "a".into(),
                outbox_seq: 0
            },
            t0.plus_days(4).timestamp()
        ));
    }

    #[test]
    fn link_taps_account_every_forwarded_frame() {
        let (mut fleet, dids) = fleet_with_users(6);
        seed_activity(&mut fleet, &dids);
        let mut fed = RelayFederation::new(2, &StoreConfig::default());
        let mut hub = Relay::default();
        fed.crawl_and_forward(&mut hub, &fleet, now());
        let traces = fed.take_link_traces();
        assert_eq!(traces.len(), 2);
        assert!(traces.contains_key("relay00.bsky.network->bsky.network"));
        let frames: usize = traces.values().map(|t| t.frame_count()).sum();
        let bytes: u64 = traces.values().map(|t| t.total_bytes()).sum();
        assert_eq!(frames as u64, hub.stats().events_forwarded());
        // Wire sizes canonicalise the seq width, so the region-side frame
        // bytes equal the hub-side firehose bytes exactly.
        assert_eq!(bytes, hub.stats().total_bytes());
        assert!(fed.take_link_traces().is_empty(), "drain resets the taps");
    }

    #[test]
    fn late_region_backfills_through_the_delta_path() {
        let (mut fleet, dids) = fleet_with_users(6);
        seed_activity(&mut fleet, &dids);
        // Enough history per repo that a one-commit delta is visibly
        // cheaper than a full CAR fetch.
        for did in &dids[2..] {
            for i in 0..4 {
                fleet
                    .pds_for_mut(did)
                    .unwrap()
                    .create_record(
                        did,
                        Nsid::parse(known::POST).unwrap(),
                        post(&format!("history {i}")),
                        now(),
                    )
                    .unwrap();
            }
        }

        let mut fed = RelayFederation::new(2, &StoreConfig::default());
        let mut hub = Relay::default();
        fed.crawl_and_forward(&mut hub, &fleet, now());

        // Region 1 joins: first backfill is all full fetches.
        let first = fed.backfill_region(1, &hub, &mut fleet, now());
        assert!(first.repos > 0);
        assert_eq!(first.full_fetches, first.repos as u64);
        assert_eq!(first.delta_fetches, 0);
        assert!(first.bytes_fetched > 0);

        // New commits land on region 1's slice; after the next crawl cycle
        // a re-backfill refreshes through `getRepo(since)` deltas only.
        let hosts = fed.region_hosts(&fleet)[1].clone();
        let movers: Vec<Did> = dids
            .iter()
            .filter(|d| {
                fleet
                    .locate(d)
                    .is_some_and(|h| hosts.iter().any(|x| x == h))
            })
            .cloned()
            .collect();
        assert!(!movers.is_empty());
        for did in &movers {
            fleet
                .pds_for_mut(did)
                .unwrap()
                .create_record(
                    did,
                    Nsid::parse(known::POST).unwrap(),
                    post("update"),
                    now(),
                )
                .unwrap();
        }
        fed.crawl_and_forward(&mut hub, &fleet, now());
        let second = fed.backfill_region(1, &hub, &mut fleet, now());
        assert_eq!(second.repos, first.repos);
        assert_eq!(second.full_fetches, 0, "{second:?}");
        assert_eq!(second.delta_fetches, movers.len() as u64);
        assert!(second.bytes_fetched < first.bytes_fetched);
    }
}
