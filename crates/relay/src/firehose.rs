//! The firehose log.
//!
//! The Relay assigns a global sequence number to every event it observes and
//! republishes the stream to subscribers (§2, §3). Events are retained for a
//! bounded window (three days on the live network); consumers resume with a
//! cursor and receive an `OutdatedCursor` info frame when their cursor has
//! fallen out of the window.

use bsky_atproto::datetime::SECONDS_PER_DAY;
use bsky_atproto::firehose::{Event, EventBody, EventKind, Seq};
use bsky_atproto::Datetime;
use std::collections::BTreeMap;

/// Retention window of the firehose, in seconds (three days, §2).
pub const RETENTION_SECONDS: i64 = 3 * SECONDS_PER_DAY;

/// The sequenced, retention-bounded event log.
#[derive(Debug, Clone, Default)]
pub struct FirehoseLog {
    events: Vec<Event>,
    next_seq: Seq,
    /// Totals survive pruning so long-run statistics stay correct.
    totals_by_kind: BTreeMap<EventKind, u64>,
    total_bytes: u64,
}

/// Result of reading from a cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Events after the cursor that are still retained, oldest first.
    pub events: Vec<Event>,
    /// True when the cursor predates the retention window (some events were
    /// missed and an `OutdatedCursor` info frame was prepended).
    pub outdated_cursor: bool,
    /// The new cursor to use for the next read.
    pub cursor: Seq,
}

impl FirehoseLog {
    /// Create an empty log. Sequence numbers start at 1.
    pub fn new() -> FirehoseLog {
        FirehoseLog {
            next_seq: 1,
            ..FirehoseLog::default()
        }
    }

    /// Append an event body, assigning the next sequence number.
    pub fn append(&mut self, time: Datetime, body: EventBody) -> Seq {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = Event { seq, time, body };
        *self.totals_by_kind.entry(event.kind()).or_insert(0) += 1;
        self.total_bytes += event.wire_size() as u64;
        self.events.push(event);
        seq
    }

    /// Drop events older than the retention window relative to `now`.
    /// Returns how many were pruned.
    pub fn prune(&mut self, now: Datetime) -> usize {
        let cutoff = now.timestamp() - RETENTION_SECONDS;
        let before = self.events.len();
        self.events.retain(|e| e.time.timestamp() >= cutoff);
        before - self.events.len()
    }

    /// Read events after `cursor` (0 = from the start of retention).
    pub fn read_from(&self, cursor: Seq) -> Subscription {
        let oldest_retained = self.events.first().map(|e| e.seq).unwrap_or(self.next_seq);
        let outdated = cursor + 1 < oldest_retained;
        let events: Vec<Event> = self
            .events
            .iter()
            .filter(|e| e.seq > cursor)
            .cloned()
            .collect();
        let new_cursor = events
            .last()
            .map(|e| e.seq)
            .unwrap_or(cursor.max(oldest_retained.saturating_sub(1)));
        Subscription {
            events,
            outdated_cursor: outdated,
            cursor: new_cursor,
        }
    }

    /// The highest sequence number assigned so far (0 when empty).
    pub fn head_seq(&self) -> Seq {
        self.next_seq - 1
    }

    /// Number of currently retained events.
    pub fn retained(&self) -> usize {
        self.events.len()
    }

    /// Lifetime totals per event kind (Table 1).
    pub fn totals_by_kind(&self) -> &BTreeMap<EventKind, u64> {
        &self.totals_by_kind
    }

    /// Lifetime total number of events.
    pub fn total_events(&self) -> u64 {
        self.totals_by_kind.values().sum()
    }

    /// Lifetime total wire bytes (the ≈30 GB/day estimate of §9 divides this
    /// by the observation window).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Iterate retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::Did;

    fn t(day: i64, sec: i64) -> Datetime {
        Datetime(Datetime::from_ymd(2024, 3, 6).unwrap().timestamp() + day * SECONDS_PER_DAY + sec)
    }

    fn identity_body(name: &str) -> EventBody {
        EventBody::Identity {
            did: Did::plc_from_seed(name.as_bytes()),
        }
    }

    #[test]
    fn sequence_numbers_are_dense_and_increasing() {
        let mut log = FirehoseLog::new();
        for i in 0..10 {
            let seq = log.append(t(0, i), identity_body(&format!("u{i}")));
            assert_eq!(seq, i as u64 + 1);
        }
        assert_eq!(log.head_seq(), 10);
        assert_eq!(log.total_events(), 10);
        assert_eq!(log.retained(), 10);
    }

    #[test]
    fn cursor_reads_only_new_events() {
        let mut log = FirehoseLog::new();
        for i in 0..5 {
            log.append(t(0, i), identity_body(&format!("u{i}")));
        }
        let first = log.read_from(0);
        assert_eq!(first.events.len(), 5);
        assert!(!first.outdated_cursor);
        assert_eq!(first.cursor, 5);
        // No new events → empty read, cursor unchanged.
        let empty = log.read_from(first.cursor);
        assert!(empty.events.is_empty());
        assert_eq!(empty.cursor, 5);
        // New event appears.
        log.append(t(0, 10), identity_body("u9"));
        let next = log.read_from(first.cursor);
        assert_eq!(next.events.len(), 1);
        assert_eq!(next.cursor, 6);
    }

    #[test]
    fn retention_prunes_but_totals_survive() {
        let mut log = FirehoseLog::new();
        for day in 0..6 {
            log.append(t(day, 0), identity_body(&format!("d{day}")));
        }
        let pruned = log.prune(t(5, 1));
        assert!(
            pruned >= 2,
            "events older than 3 days must be pruned, got {pruned}"
        );
        assert!(log.retained() < 6);
        assert_eq!(log.total_events(), 6);
        assert!(log.total_bytes() > 0);
        assert_eq!(
            log.totals_by_kind().get(&EventKind::Identity).copied(),
            Some(6)
        );
    }

    #[test]
    fn outdated_cursor_detection() {
        let mut log = FirehoseLog::new();
        for day in 0..6 {
            log.append(t(day, 0), identity_body(&format!("d{day}")));
        }
        log.prune(t(5, 1));
        let sub = log.read_from(0);
        assert!(sub.outdated_cursor);
        assert!(!sub.events.is_empty());
        // A cursor at the head is never outdated.
        let head = log.read_from(log.head_seq());
        assert!(!head.outdated_cursor);
        assert!(head.events.is_empty());
    }

    #[test]
    fn empty_log_reads() {
        let log = FirehoseLog::new();
        let sub = log.read_from(0);
        assert!(sub.events.is_empty());
        assert!(!sub.outdated_cursor);
        assert_eq!(log.head_seq(), 0);
        assert_eq!(log.total_events(), 0);
    }
}
