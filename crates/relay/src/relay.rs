//! The Relay service.
//!
//! The Relay aggregates user interactions across every known PDS: it crawls
//! their sync endpoints, mirrors repository data, and republishes everything
//! on the firehose (§2). Bluesky PBC runs the default Relay at
//! `bsky.network`; the study obtained both its full repository snapshot and
//! its real-time event stream from this single vantage point (§3).

use crate::firehose::{FirehoseLog, Subscription};
use crate::stats::RelayStats;
use bsky_atproto::blockstore::{BlockStore, StoreConfig, StoreStats};
use bsky_atproto::cid::Cid;
use bsky_atproto::error::{AtError, Result};
use bsky_atproto::firehose::{EventBody, Seq};
use bsky_atproto::repo::{DeltaScope, Repository};
use bsky_atproto::{Datetime, Did, Tid};
use bsky_pds::{PdsEventDetail, PdsFleet};
use bsky_simnet::observer::{ConnTrace, WireObserver};
use std::collections::BTreeMap;

/// A cached repository mirror entry. The CAR bytes themselves live in the
/// relay's [`BlockStore`], addressed by their content CID, so a paged store
/// can spill cold archives to disk.
#[derive(Debug, Clone)]
struct MirrorEntry {
    rev: Option<String>,
    car_cid: Cid,
    car_len: usize,
    fetched_at: Datetime,
}

/// Provenance of a firehose event: which PDS outbox produced it, and at
/// which outbox position. Events that carry no repo revision (identity,
/// handle, tombstone frames) are deduplicated across relay tiers by this
/// `(host, outbox_seq)` pair — the same outbox slot delivered twice is the
/// same event, wherever it travelled.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventOrigin {
    /// Hostname of the PDS whose outbox produced the event.
    pub host: String,
    /// Zero-based position in that outbox.
    pub outbox_seq: u64,
}

/// The Relay: PDS crawler, repository mirror and firehose publisher.
#[derive(Debug, Clone)]
pub struct Relay {
    hostname: String,
    firehose: FirehoseLog,
    crawl_cursors: BTreeMap<String, usize>,
    mirror: BTreeMap<String, MirrorEntry>,
    known_dids: BTreeMap<String, Option<String>>,
    stats: RelayStats,
    /// Mirrored CAR archives, CID-addressed.
    store: Box<dyn BlockStore>,
    /// Reference counts per CAR block: distinct DIDs can share identical
    /// archive bytes (e.g. two empty repositories), and a shared block must
    /// survive until the last referencing entry is gone.
    car_refs: BTreeMap<Cid, u32>,
    /// Passive wire tap: per-DID firehose `(time, size)` traces for the §10
    /// traffic observatory. Always on — recording is a couple of integer
    /// pushes per event — and drained by the study producer at day ends.
    wire_tap: WireObserver,
    /// Provenance of each retained firehose frame, pruned in lockstep with
    /// the firehose retention window. Downstream relay tiers read this to
    /// deduplicate events that carry no `(did, rev)` key of their own.
    origins: BTreeMap<Seq, EventOrigin>,
}

impl Default for Relay {
    fn default() -> Self {
        Relay::new("bsky.network")
    }
}

impl Relay {
    /// Create a relay with a hostname (the default network relay is
    /// `bsky.network`), backed by the default in-memory mirror store.
    pub fn new(hostname: impl Into<String>) -> Relay {
        Relay::with_store(hostname, &StoreConfig::default())
    }

    /// Create a relay whose CAR mirror uses an explicit block-store backend.
    pub fn with_store(hostname: impl Into<String>, store: &StoreConfig) -> Relay {
        Relay {
            hostname: hostname.into(),
            firehose: FirehoseLog::new(),
            crawl_cursors: BTreeMap::new(),
            mirror: BTreeMap::new(),
            known_dids: BTreeMap::new(),
            stats: RelayStats::new(),
            store: store.build(),
            car_refs: BTreeMap::new(),
            wire_tap: WireObserver::new(),
            origins: BTreeMap::new(),
        }
    }

    /// Insert or replace a mirror entry, storing the CAR in the block store
    /// with reference counting.
    fn cache_car(&mut self, key: String, rev: Option<String>, car: &[u8], now: Datetime) {
        let car_cid = Cid::for_raw(car);
        self.drop_entry(&key);
        *self.car_refs.entry(car_cid).or_insert(0) += 1;
        self.store.put(car_cid, car.to_vec());
        self.mirror.insert(
            key,
            MirrorEntry {
                rev,
                car_cid,
                car_len: car.len(),
                fetched_at: now,
            },
        );
    }

    /// Remove a mirror entry, deleting its CAR block once unreferenced.
    fn drop_entry(&mut self, key: &str) {
        if let Some(entry) = self.mirror.remove(key) {
            let refs = self.car_refs.entry(entry.car_cid).or_insert(1);
            *refs -= 1;
            if *refs == 0 {
                self.car_refs.remove(&entry.car_cid);
                self.store.delete(&entry.car_cid);
            }
        }
    }

    /// The relay hostname.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Crawl every PDS in the fleet, ingesting new events into the firehose.
    /// Returns the number of events ingested.
    pub fn crawl(&mut self, fleet: &PdsFleet, now: Datetime) -> usize {
        let ingested = self.crawl_hosts(fleet, now, |_| true);
        self.prune_firehose(now);
        ingested
    }

    /// Crawl the subset of PDSes whose hostname passes `accept`, in
    /// hostname-sorted order — the same order a whole-fleet [`Relay::crawl`]
    /// visits them, so a set of regional relays holding contiguous slices of
    /// the sorted hostname list reproduces the single-relay event
    /// interleaving exactly. Does *not* prune the firehose; callers that
    /// forward events downstream prune after forwarding.
    pub fn crawl_hosts(
        &mut self,
        fleet: &PdsFleet,
        now: Datetime,
        accept: impl Fn(&str) -> bool,
    ) -> usize {
        let mut ingested = 0usize;
        // Collect hostnames first to keep borrow scopes simple.
        let hostnames: Vec<String> = fleet
            .servers()
            .map(|p| p.hostname().to_string())
            .filter(|h| accept(h))
            .collect();
        for hostname in hostnames {
            let server = match fleet.server(&hostname) {
                Some(s) => s,
                None => continue,
            };
            let cursor = self.crawl_cursors.get(&hostname).copied().unwrap_or(0);
            let (events, next_cursor) = server.events_since(cursor);
            for (offset, event) in events.iter().enumerate() {
                let body = match &event.detail {
                    PdsEventDetail::Commit(result) => EventBody::Commit {
                        did: event.did.clone(),
                        commit: result.commit_cid,
                        rev: result.commit.rev,
                        ops: result.ops.clone(),
                        blocks_bytes: result.bytes_written,
                        too_big: result.bytes_written > 1_000_000,
                    },
                    PdsEventDetail::HandleChange(handle) => EventBody::HandleChange {
                        did: event.did.clone(),
                        handle: handle.clone(),
                    },
                    PdsEventDetail::IdentityUpdate => EventBody::Identity {
                        did: event.did.clone(),
                    },
                    PdsEventDetail::AccountDelete => EventBody::Tombstone {
                        did: event.did.clone(),
                    },
                };
                let time = if event.at.timestamp() > now.timestamp() {
                    now
                } else {
                    event.at
                };
                let origin = EventOrigin {
                    host: hostname.clone(),
                    outbox_seq: (cursor + offset) as u64,
                };
                self.ingest_event(time, body, Some(origin));
                ingested += 1;
            }
            self.crawl_cursors.insert(hostname, next_cursor);
        }
        ingested
    }

    /// Append one event to the firehose, updating the account table, volume
    /// stats and passive wire tap exactly as a crawl would. This is the
    /// ingress path shared by [`Relay::crawl`] and inter-relay forwarding:
    /// a super-relay receiving a frame from a regional relay feeds it
    /// through here so its mirror bookkeeping, `listRepos` view and wire
    /// accounting are indistinguishable from having crawled the PDS itself.
    pub fn ingest_event(
        &mut self,
        time: Datetime,
        body: EventBody,
        origin: Option<EventOrigin>,
    ) -> Seq {
        match &body {
            EventBody::Commit { did, rev, .. } => {
                // Track latest known revision for listRepos. The mirror
                // entry (if any) is *kept*: it goes stale, and the next
                // `get_repo` refreshes it with a `getRepo(since)` delta
                // instead of a full refetch.
                self.known_dids
                    .insert(did.to_string(), Some(rev.to_string()));
            }
            EventBody::Identity { did } => {
                self.known_dids.entry(did.to_string()).or_insert(None);
            }
            EventBody::Tombstone { did } => {
                let key = did.to_string();
                self.known_dids.remove(&key);
                self.drop_entry(&key);
            }
            EventBody::HandleChange { .. } | EventBody::Info { .. } => {}
        }
        let tap_key = match &body {
            EventBody::Commit { did, .. }
            | EventBody::Identity { did }
            | EventBody::HandleChange { did, .. }
            | EventBody::Tombstone { did } => Some(did.to_string()),
            EventBody::Info { .. } => None,
        };
        let seq = self.firehose.append(time, body);
        let wire_size = self
            .firehose
            .iter()
            .last()
            .map(|e| e.wire_size())
            .unwrap_or(0);
        self.stats.record_event(time, wire_size, seq);
        // Feed the passive tap: a firehose subscriber's wire carries this
        // frame at this instant, keyed by the subject DID.
        if let Some(key) = tap_key {
            self.wire_tap
                .record(&key, time.timestamp(), wire_size as u64);
        }
        if let Some(origin) = origin {
            self.origins.insert(seq, origin);
        }
        seq
    }

    /// Prune the firehose retention window, dropping origin records for
    /// frames that fell out of it.
    pub fn prune_firehose(&mut self, now: Datetime) {
        self.firehose.prune(now);
        match self.firehose.iter().next().map(|e| e.seq) {
            Some(oldest) => self.origins = self.origins.split_off(&oldest),
            None => self.origins.clear(),
        }
    }

    /// Provenance of a retained firehose frame, if recorded at ingest.
    pub fn event_origin(&self, seq: Seq) -> Option<&EventOrigin> {
        self.origins.get(&seq)
    }

    /// The firehose log (read access for subscribers and stats).
    pub fn firehose(&self) -> &FirehoseLog {
        &self.firehose
    }

    /// Drain the passive wire tap: per-DID `(time, size)` traces of every
    /// firehose frame appended since the last drain, in DID-sorted order.
    pub fn take_wire_traces(&mut self) -> BTreeMap<String, ConnTrace> {
        self.wire_tap.drain()
    }

    /// Number of PDS outbox events produced but not yet crawled. Producers
    /// that want to bound their in-flight batch size check this between
    /// simulation steps and crawl once a chunk's worth is pending.
    pub fn pending_events(&self, fleet: &PdsFleet) -> usize {
        self.pending_events_for(fleet, |_| true)
    }

    /// Pending-event count restricted to the PDSes whose hostname passes
    /// `accept` — the per-region slice of [`Relay::pending_events`].
    pub fn pending_events_for(&self, fleet: &PdsFleet, accept: impl Fn(&str) -> bool) -> usize {
        fleet
            .servers()
            .filter(|server| accept(server.hostname()))
            .map(|server| {
                let cursor = self
                    .crawl_cursors
                    .get(server.hostname())
                    .copied()
                    .unwrap_or(0);
                server.events_since(cursor).0.len()
            })
            .sum()
    }

    /// Subscribe to the firehose from a cursor.
    pub fn subscribe(&self, cursor: Seq) -> Subscription {
        self.firehose.read_from(cursor)
    }

    /// Relay-level statistics.
    pub fn stats(&self) -> &RelayStats {
        &self.stats
    }

    /// Mutable statistics handle for the federation forwarder, which
    /// accounts forwarded and deduplicated frames on the receiving relay.
    pub(crate) fn stats_mut(&mut self) -> &mut RelayStats {
        &mut self.stats
    }

    /// `sync.listRepos` served from the relay's own view of the network:
    /// pages of `(did, latest rev)` in DID order.
    pub fn list_repos(
        &self,
        cursor: Option<&str>,
        limit: usize,
    ) -> (Vec<(Did, Option<Tid>)>, Option<String>) {
        let limit = limit.max(1);
        let iter: Box<dyn Iterator<Item = (&String, &Option<String>)>> = match cursor {
            Some(c) => Box::new(self.known_dids.range::<String, _>((
                std::ops::Bound::Excluded(c.to_string()),
                std::ops::Bound::Unbounded,
            ))),
            None => Box::new(self.known_dids.iter()),
        };
        let page: Vec<(Did, Option<Tid>)> = iter
            .take(limit)
            .filter_map(|(did, rev)| {
                Some((
                    Did::parse(did).ok()?,
                    rev.as_deref().and_then(|r| Tid::parse(r).ok()),
                ))
            })
            .collect();
        let next = if page.len() == limit {
            page.last().map(|(did, _)| did.to_string())
        } else {
            None
        };
        (page, next)
    }

    /// Number of accounts the relay currently knows about.
    pub fn known_account_count(&self) -> usize {
        self.known_dids.len()
    }

    /// `sync.getRepo` served from the relay's local cache, falling back to
    /// fetching from the hosting PDS (and caching the result). This is the
    /// recommended way for researchers to download repositories because it
    /// "reduces load elsewhere in the network" (§3).
    ///
    /// A stale mirror entry whose revision is known is refreshed with a
    /// `getRepo(since)` delta from the PDS — only the blocks committed since
    /// the cached revision travel — and reassembled via
    /// [`Repository::apply_delta`]; a full fetch happens only for unknown
    /// repos, rev rewinds, or delta failures.
    pub fn get_repo(&mut self, did: &Did, fleet: &mut PdsFleet, now: Datetime) -> Result<Vec<u8>> {
        let key = did.to_string();
        let current_rev = self.known_dids.get(&key).cloned().flatten();
        if let Some(entry) = self.mirror.get(&key) {
            if entry.rev == current_rev {
                // The store verifies read-backs by CID; a block it cannot
                // return (corrupt spill) degrades to a refetch below —
                // counted, never silent.
                match self.store.get(&entry.car_cid) {
                    Some(car) => {
                        self.stats.record_cache_hit();
                        return Ok(car);
                    }
                    None => self.stats.record_mirror_read_failure(),
                }
            }
        }
        let pds = fleet
            .pds_for_mut(did)
            .ok_or_else(|| AtError::RepoError(format!("{did} is not hosted on any known PDS")))?;
        // Delta refresh: cached at a known revision, repo has advanced.
        if let (Some(entry), Some(_)) = (self.mirror.get(&key), current_rev.as_deref()) {
            if let Some(since) = entry.rev.as_deref().and_then(|r| Tid::parse(r).ok()) {
                let cached = self.store.get(&entry.car_cid);
                match (cached, pds.get_repo_since(did, &since, DeltaScope::Full)) {
                    (Some(base), Ok(delta)) => match Repository::apply_delta(&base, &delta) {
                        Ok(car) => {
                            self.stats.record_delta_fetch(delta.len());
                            self.cache_car(key, current_rev, &car, now);
                            return Ok(car);
                        }
                        // A delta that will not apply to the cached base
                        // degrades to a full refetch, visibly.
                        Err(_) => self.stats.record_delta_apply_failure(),
                    },
                    // The cached base could not be read back from the store.
                    (None, Ok(_)) => self.stats.record_mirror_read_failure(),
                    (_, Err(AtError::RevisionCompacted(_))) => {
                        // The PDS compacted our revision out of its delta
                        // window: fall back to a full fetch, visibly.
                        self.stats.record_compaction_fallback();
                    }
                    // Any other delta error also falls back to a full
                    // fetch — counted, never silent.
                    (_, Err(_)) => self.stats.record_delta_fetch_error(),
                }
            }
        }
        let car = pds.get_repo(did)?;
        self.stats.record_cache_miss(car.len());
        self.cache_car(key, current_rev, &car, now);
        Ok(car)
    }

    /// `sync.getRepo` with `since`, for downstream incremental mirrors: the
    /// delta is fetched from the hosting PDS and handed through. The
    /// relay's own mirror entry is left untouched — it refreshes lazily
    /// (and with its own delta) on the next full [`Relay::get_repo`], so
    /// forwarding costs O(delta), never a re-verification of the cached
    /// archive. Errors — unknown DID or unknown revision — mean the
    /// consumer must fall back to a full fetch.
    pub fn get_repo_since(
        &mut self,
        did: &Did,
        since: &Tid,
        scope: DeltaScope,
        fleet: &mut PdsFleet,
        _now: Datetime,
    ) -> Result<Vec<u8>> {
        let pds = fleet
            .pds_for_mut(did)
            .ok_or_else(|| AtError::RepoError(format!("{did} is not hosted on any known PDS")))?;
        let delta = pds.get_repo_since(did, since, scope)?;
        self.stats.record_delta_fetch(delta.len());
        Ok(delta)
    }

    /// Number of repositories currently mirrored.
    pub fn mirrored_repos(&self) -> usize {
        self.mirror.len()
    }

    /// Age of the oldest mirror entry relative to `now` (for eviction tests).
    pub fn oldest_mirror_age(&self, now: Datetime) -> Option<i64> {
        self.mirror
            .values()
            .map(|e| now.timestamp() - e.fetched_at.timestamp())
            .max()
    }

    /// Total logical bytes of mirrored CAR archives.
    pub fn mirror_bytes(&self) -> usize {
        self.mirror.values().map(|e| e.car_len).sum()
    }

    /// Residency/spill statistics of the mirror's block store.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsky_atproto::firehose::EventKind;
    use bsky_atproto::nsid::known;
    use bsky_atproto::record::{PostRecord, Record};
    use bsky_atproto::repo::{DeltaScope, Repository};
    use bsky_atproto::{Handle, Nsid};
    use bsky_pds::{Pds, PdsOperator};

    fn now() -> Datetime {
        Datetime::from_ymd_hms(2024, 4, 1, 12, 0, 0).unwrap()
    }

    fn post(text: &str) -> Record {
        Record::Post(PostRecord::simple(text, "en", now()))
    }

    fn fleet_with_users(n: usize) -> (PdsFleet, Vec<Did>) {
        let mut fleet = PdsFleet::with_default_servers(2);
        fleet.add_server(Pds::new("self.example", PdsOperator::SelfHosted));
        let hosts = [
            "pds001.host.bsky.network",
            "pds002.host.bsky.network",
            "self.example",
        ];
        let mut dids = Vec::new();
        for i in 0..n {
            let did = Did::plc_from_seed(format!("user{i}").as_bytes());
            let host = hosts[i % hosts.len()];
            fleet
                .create_account_on(
                    host,
                    did.clone(),
                    Handle::parse(&format!("user{i}.bsky.social")).unwrap(),
                    now(),
                )
                .unwrap();
            dids.push(did);
        }
        (fleet, dids)
    }

    #[test]
    fn crawl_converts_pds_events_into_firehose_frames() {
        let (mut fleet, dids) = fleet_with_users(6);
        for did in &dids {
            fleet
                .pds_for_mut(did)
                .unwrap()
                .create_record(did, Nsid::parse(known::POST).unwrap(), post("hi"), now())
                .unwrap();
        }
        fleet
            .pds_for_mut(&dids[0])
            .unwrap()
            .change_handle(&dids[0], Handle::parse("user0.example.com").unwrap(), now())
            .unwrap();
        fleet
            .pds_for_mut(&dids[1])
            .unwrap()
            .delete_account(&dids[1], now())
            .unwrap();

        let mut relay = Relay::default();
        let ingested = relay.crawl(&fleet, now());
        // 6 identity (account creation) + 6 commits + 1 handle + 1 tombstone
        assert_eq!(ingested, 14);
        let totals = relay.firehose().totals_by_kind();
        assert_eq!(totals.get(&EventKind::Commit).copied(), Some(6));
        assert_eq!(totals.get(&EventKind::Identity).copied(), Some(6));
        assert_eq!(totals.get(&EventKind::HandleChange).copied(), Some(1));
        assert_eq!(totals.get(&EventKind::Tombstone).copied(), Some(1));
        // A second crawl with no new activity ingests nothing.
        assert_eq!(relay.crawl(&fleet, now()), 0);
        // Deleted accounts disappear from the relay's account list.
        assert_eq!(relay.known_account_count(), 5);
    }

    #[test]
    fn subscription_sees_crawled_events_in_order() {
        let (mut fleet, dids) = fleet_with_users(3);
        let mut relay = Relay::default();
        relay.crawl(&fleet, now());
        let sub = relay.subscribe(0);
        let first_batch = sub.events.len();
        assert!(first_batch >= 3);
        assert!(sub.events.windows(2).all(|w| w[0].seq < w[1].seq));

        fleet
            .pds_for_mut(&dids[0])
            .unwrap()
            .create_record(
                &dids[0],
                Nsid::parse(known::POST).unwrap(),
                post("new"),
                now(),
            )
            .unwrap();
        relay.crawl(&fleet, now());
        let more = relay.subscribe(sub.cursor);
        assert_eq!(more.events.len(), 1);
        assert_eq!(more.events[0].kind(), EventKind::Commit);
    }

    #[test]
    fn list_repos_pagination_over_all_pdses() {
        let (mut fleet, dids) = fleet_with_users(13);
        for did in &dids {
            fleet
                .pds_for_mut(did)
                .unwrap()
                .create_record(did, Nsid::parse(known::POST).unwrap(), post("x"), now())
                .unwrap();
        }
        let mut relay = Relay::default();
        relay.crawl(&fleet, now());
        let mut seen = 0;
        let mut cursor: Option<String> = None;
        loop {
            let (page, next) = relay.list_repos(cursor.as_deref(), 5);
            seen += page.len();
            assert!(page.iter().all(|(_, rev)| rev.is_some()));
            match next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(seen, 13);
    }

    #[test]
    fn get_repo_caches_and_refreshes_with_deltas() {
        let (mut fleet, dids) = fleet_with_users(2);
        let did = dids[0].clone();
        fleet
            .pds_for_mut(&did)
            .unwrap()
            .create_record(&did, Nsid::parse(known::POST).unwrap(), post("v1"), now())
            .unwrap();
        let mut relay = Relay::default();
        relay.crawl(&fleet, now());

        let car1 = relay.get_repo(&did, &mut fleet, now()).unwrap();
        let car2 = relay.get_repo(&did, &mut fleet, now()).unwrap();
        assert_eq!(car1, car2);
        assert_eq!(relay.stats().cache_hits(), 1);
        assert_eq!(relay.mirrored_repos(), 1);
        assert!(relay.oldest_mirror_age(now()).unwrap() >= 0);
        let (_, blocks) = Repository::parse_car(&car1).unwrap();
        assert!(!blocks.is_empty());

        // New activity makes the entry stale; the next fetch refreshes it
        // with a delta from the PDS instead of re-reading the whole repo.
        fleet
            .pds_for_mut(&did)
            .unwrap()
            .create_record(&did, Nsid::parse(known::POST).unwrap(), post("v2"), now())
            .unwrap();
        relay.crawl(&fleet, now());
        let car3 = relay.get_repo(&did, &mut fleet, now()).unwrap();
        assert_ne!(car1, car3);
        assert_eq!(relay.stats().cache_misses(), 1, "refresh must be a delta");
        assert_eq!(relay.stats().delta_fetches(), 1);
        assert!(relay.stats().delta_bytes_fetched() > 0);
        assert!(relay.stats().delta_bytes_fetched() < car3.len() as u64);
        // The reassembled archive carries both record versions.
        let (_, blocks3) = Repository::parse_car(&car3).unwrap();
        let records: Vec<Record> = blocks3
            .values()
            .filter_map(|b| Record::from_cbor(b).ok())
            .collect();
        assert!(records.contains(&post("v1")));
        assert!(records.contains(&post("v2")));
        // Serving from the refreshed mirror is a hit again.
        relay.get_repo(&did, &mut fleet, now()).unwrap();
        assert_eq!(relay.stats().cache_hits(), 2);

        // Unknown DIDs error.
        assert!(relay
            .get_repo(&Did::plc_from_seed(b"nobody"), &mut fleet, now())
            .is_err());
    }

    #[test]
    fn get_repo_since_serves_downstream_mirrors() {
        let (mut fleet, dids) = fleet_with_users(1);
        let did = dids[0].clone();
        for i in 0..20 {
            fleet
                .pds_for_mut(&did)
                .unwrap()
                .create_record(
                    &did,
                    Nsid::parse(known::POST).unwrap(),
                    post(&format!("v1 {i}")),
                    now(),
                )
                .unwrap();
        }
        let mut relay = Relay::default();
        relay.crawl(&fleet, now());
        let base = relay.get_repo(&did, &mut fleet, now()).unwrap();
        let since = relay.list_repos(None, 10).0[0].1.unwrap();

        fleet
            .pds_for_mut(&did)
            .unwrap()
            .create_record(&did, Nsid::parse(known::POST).unwrap(), post("v2"), now())
            .unwrap();
        relay.crawl(&fleet, now());
        let delta = relay
            .get_repo_since(&did, &since, DeltaScope::Full, &mut fleet, now())
            .unwrap();
        assert!(delta.len() < base.len());
        assert_eq!(relay.stats().delta_fetches(), 1);
        let merged = Repository::apply_delta(&base, &delta).unwrap();
        assert!(!merged.is_empty());
        // The relay's own mirror entry went stale and refreshes lazily —
        // with a delta of its own — on the next full read.
        let car = relay.get_repo(&did, &mut fleet, now()).unwrap();
        assert_eq!(relay.stats().delta_fetches(), 2);
        assert_eq!(relay.stats().cache_misses(), 1, "no full refetch");
        assert_eq!(car, merged);

        // Unknown revisions propagate as errors (full-fetch fallback).
        assert!(relay
            .get_repo_since(
                &did,
                &Tid::from_micros(3, 3),
                DeltaScope::Full,
                &mut fleet,
                now()
            )
            .is_err());
    }

    #[test]
    fn mirror_is_store_backed_with_refcounted_cars() {
        use bsky_atproto::blockstore::StoreConfig;
        // A paged mirror store spills cold archives and still serves them
        // byte-identically.
        let (mut fleet, dids) = fleet_with_users(6);
        for did in &dids {
            for i in 0..5 {
                fleet
                    .pds_for_mut(did)
                    .unwrap()
                    .create_record(
                        did,
                        Nsid::parse(known::POST).unwrap(),
                        post(&format!("{did} {i}")),
                        now(),
                    )
                    .unwrap();
            }
        }
        let paged = StoreConfig::paged().page_size(512).resident_pages(1);
        let mut relay = Relay::with_store("bsky.network", &paged);
        relay.crawl(&fleet, now());
        let mut cars = Vec::new();
        for did in &dids {
            cars.push(relay.get_repo(did, &mut fleet, now()).unwrap());
        }
        let stats = relay.store_stats();
        assert!(stats.spilled_bytes > 0, "mirror must spill: {stats:?}");
        assert_eq!(stats.logical_bytes, relay.mirror_bytes());
        // Cache hits page spilled archives back in, byte-identical.
        for (did, car) in dids.iter().zip(&cars) {
            assert_eq!(&relay.get_repo(did, &mut fleet, now()).unwrap(), car);
        }
        // Deleting an account drops its entry and its store block.
        let blocks_before = relay.store_stats().blocks;
        fleet
            .pds_for_mut(&dids[0])
            .unwrap()
            .delete_account(&dids[0], now())
            .unwrap();
        relay.crawl(&fleet, now());
        assert_eq!(relay.mirrored_repos(), dids.len() - 1);
        assert_eq!(relay.store_stats().blocks, blocks_before - 1);
    }

    #[test]
    fn compacted_revisions_fall_back_to_full_fetch_visibly() {
        let (mut fleet, dids) = fleet_with_users(1);
        let did = dids[0].clone();
        for i in 0..10 {
            fleet
                .pds_for_mut(&did)
                .unwrap()
                .create_record(
                    &did,
                    Nsid::parse(known::POST).unwrap(),
                    post(&format!("old {i}")),
                    now(),
                )
                .unwrap();
        }
        let mut relay = Relay::default();
        relay.crawl(&fleet, now());
        relay.get_repo(&did, &mut fleet, now()).unwrap();
        assert_eq!(relay.stats().cache_misses(), 1);

        // The repo advances, then the PDS compacts the relay's cached
        // revision out of its delta window.
        let later = now().plus_days(30);
        fleet
            .pds_for_mut(&did)
            .unwrap()
            .create_record(&did, Nsid::parse(known::POST).unwrap(), post("new"), later)
            .unwrap();
        let head = fleet
            .pds_for(&did)
            .unwrap()
            .repo(&did)
            .unwrap()
            .rev()
            .unwrap();
        let cutoff = bsky_atproto::Tid::from_micros(head.timestamp_micros(), 0);
        let stats = fleet.compact_all(&cutoff);
        assert!(stats.commits_dropped > 0, "{stats:?}");
        relay.crawl(&fleet, later);

        // The refresh cannot be a delta anymore: the fallback is a full
        // fetch and it is *counted*, never silent.
        let car = relay.get_repo(&did, &mut fleet, later).unwrap();
        assert_eq!(relay.stats().compaction_fallbacks(), 1);
        assert_eq!(relay.stats().delta_fetches(), 0);
        assert_eq!(relay.stats().cache_misses(), 2);
        let records: Vec<Record> = Repository::parse_car(&car)
            .unwrap()
            .1
            .values()
            .filter_map(|b| Record::from_cbor(b).ok())
            .collect();
        assert!(records.contains(&post("new")));
        assert_eq!(records.len(), 11, "live records all survive compaction");
    }

    #[test]
    fn commit_timestamps_never_exceed_crawl_time() {
        let (mut fleet, dids) = fleet_with_users(1);
        let future = now().plus_days(10);
        fleet
            .pds_for_mut(&dids[0])
            .unwrap()
            .create_record(
                &dids[0],
                Nsid::parse(known::POST).unwrap(),
                post("future"),
                future,
            )
            .unwrap();
        let mut relay = Relay::default();
        relay.crawl(&fleet, now());
        for event in relay.firehose().iter() {
            assert!(event.time.timestamp() <= now().timestamp());
        }
    }
}
