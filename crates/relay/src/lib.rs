//! # bsky-relay
//!
//! The Relay and its Firehose (§2, §3 of the paper): the central aggregation
//! point that crawls every PDS, mirrors repositories, and republishes all
//! network activity as a sequenced event stream.
//!
//! * [`firehose`] — the sequenced, retention-bounded event log with cursors
//!   and outdated-cursor signalling.
//! * [`relay`] — the Relay service: PDS crawler, repository mirror
//!   (`sync.getRepo` with caching), network-wide `sync.listRepos`.
//! * [`stats`] — per-day event/byte accounting behind the ≈30 GB/day
//!   firehose-volume estimate (§9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod firehose;
pub mod relay;
pub mod stats;

pub use firehose::{FirehoseLog, Subscription, RETENTION_SECONDS};
pub use relay::Relay;
pub use stats::RelayStats;
