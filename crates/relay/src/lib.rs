//! # bsky-relay
//!
//! The Relay and its Firehose (§2, §3 of the paper): the central aggregation
//! point that crawls every PDS, mirrors repositories, and republishes all
//! network activity as a sequenced event stream.
//!
//! * [`firehose`] — the sequenced, retention-bounded event log with cursors
//!   and outdated-cursor signalling.
//! * [`relay`] — the Relay service: PDS crawler, repository mirror
//!   (`sync.getRepo` with caching), network-wide `sync.listRepos`.
//! * [`federation`] — hierarchical relay federation: N regional relays each
//!   crawling a contiguous slice of the hostname-sorted PDS fleet, forwarding
//!   cursor-resumably into a super-relay with cross-relay `(did, rev)` dedup,
//!   backfill-on-join through the `getRepo(since)` delta path, and passive
//!   region→hub link taps for the §10 observatory. Built so a federated run
//!   is byte-identical to a single-relay run — dedup makes the observed
//!   stream identical by construction.
//! * [`stats`] — per-day event/byte accounting behind the ≈30 GB/day
//!   firehose-volume estimate (§9), plus forwarding/dedup counters for the
//!   federated topology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod federation;
pub mod firehose;
pub mod relay;
pub mod stats;

pub use federation::{BackfillSummary, RelayFederation};
pub use firehose::{FirehoseLog, Subscription, RETENTION_SECONDS};
pub use relay::{EventOrigin, Relay};
pub use stats::RelayStats;
