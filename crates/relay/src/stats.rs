//! Relay volume accounting.
//!
//! §9 estimates that "the Firehose already outputs ≈30 GB of data per day per
//! subscribed client". The relay keeps per-day event and byte counters so the
//! study can reproduce that estimate for the simulated network (and so the
//! scaling section of EXPERIMENTS.md can extrapolate it to the real network
//! size).

use bsky_atproto::Datetime;
use std::collections::BTreeMap;

/// Per-day and lifetime relay statistics.
#[derive(Debug, Clone, Default)]
pub struct RelayStats {
    events_per_day: BTreeMap<i64, u64>,
    bytes_per_day: BTreeMap<i64, u64>,
    cache_hits: u64,
    cache_misses: u64,
    delta_fetches: u64,
    compaction_fallbacks: u64,
    mirror_read_failures: u64,
    delta_apply_failures: u64,
    delta_fetch_errors: u64,
    bytes_fetched_from_pds: u64,
    delta_bytes_fetched: u64,
    highest_seq: u64,
    events_forwarded: u64,
    duplicates_dropped: u64,
    dedup_tracked: u64,
}

impl RelayStats {
    /// Create empty statistics.
    pub fn new() -> RelayStats {
        RelayStats::default()
    }

    /// Record one firehose event of `wire_bytes` at `time`.
    pub fn record_event(&mut self, time: Datetime, wire_bytes: usize, seq: u64) {
        let day = time.day_index();
        *self.events_per_day.entry(day).or_insert(0) += 1;
        *self.bytes_per_day.entry(day).or_insert(0) += wire_bytes as u64;
        self.highest_seq = self.highest_seq.max(seq);
    }

    /// Record a repo fetch served from the mirror cache.
    pub fn record_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Record a repo fetch that had to go to the hosting PDS.
    pub fn record_cache_miss(&mut self, bytes: usize) {
        self.cache_misses += 1;
        self.bytes_fetched_from_pds += bytes as u64;
    }

    /// Record a `getRepo(since)` delta fetched from a PDS — a stale mirror
    /// entry refreshed (or a downstream consumer served) without re-reading
    /// the whole repository.
    pub fn record_delta_fetch(&mut self, bytes: usize) {
        self.delta_fetches += 1;
        self.bytes_fetched_from_pds += bytes as u64;
        self.delta_bytes_fetched += bytes as u64;
    }

    /// Total events observed.
    pub fn total_events(&self) -> u64 {
        self.events_per_day.values().sum()
    }

    /// Total firehose bytes emitted.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_day.values().sum()
    }

    /// Number of days with at least one event.
    pub fn active_days(&self) -> usize {
        self.events_per_day.len()
    }

    /// Mean firehose output per active day, in bytes.
    pub fn mean_bytes_per_day(&self) -> f64 {
        if self.events_per_day.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.active_days() as f64
        }
    }

    /// Per-day series `(day_index, events, bytes)` in day order.
    pub fn daily_series(&self) -> Vec<(i64, u64, u64)> {
        self.events_per_day
            .iter()
            .map(|(day, events)| {
                (
                    *day,
                    *events,
                    self.bytes_per_day.get(day).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// Mirror cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Mirror cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Record a delta attempt that failed because the PDS compacted the
    /// cached revision out of its delta-serving window (a full fetch
    /// follows) — surfaced so fallbacks never happen silently.
    pub fn record_compaction_fallback(&mut self) {
        self.compaction_fallbacks += 1;
    }

    /// Record a mirror cache entry whose blocks could not be read back
    /// from the store (the fetch degrades to a refetch from the PDS) —
    /// previously a silent fall-through.
    pub fn record_mirror_read_failure(&mut self) {
        self.mirror_read_failures += 1;
    }

    /// Record a fetched delta that failed to apply to the cached base
    /// (the fetch degrades to a full refetch) — previously a silent
    /// fall-through.
    pub fn record_delta_apply_failure(&mut self) {
        self.delta_apply_failures += 1;
    }

    /// Record a `getRepo(since)` request that errored for a reason other
    /// than revision compaction (the fetch degrades to a full refetch) —
    /// previously a silent `_ => {}` arm.
    pub fn record_delta_fetch_error(&mut self) {
        self.delta_fetch_errors += 1;
    }

    /// Mirror cache entries whose stored blocks could not be read back.
    pub fn mirror_read_failures(&self) -> u64 {
        self.mirror_read_failures
    }

    /// Fetched deltas that failed to apply to the cached base.
    pub fn delta_apply_failures(&self) -> u64 {
        self.delta_apply_failures
    }

    /// Delta fetch errors other than revision compaction.
    pub fn delta_fetch_errors(&self) -> u64 {
        self.delta_fetch_errors
    }

    /// Delta (`getRepo(since)`) fetches served from PDSes.
    pub fn delta_fetches(&self) -> u64 {
        self.delta_fetches
    }

    /// Delta attempts that fell back to a full fetch because the revision
    /// was compacted away.
    pub fn compaction_fallbacks(&self) -> u64 {
        self.compaction_fallbacks
    }

    /// Bytes fetched from PDSes (full CARs and deltas combined).
    pub fn bytes_fetched_from_pds(&self) -> u64 {
        self.bytes_fetched_from_pds
    }

    /// Bytes of that total that were delta fetches.
    pub fn delta_bytes_fetched(&self) -> u64 {
        self.delta_bytes_fetched
    }

    /// Highest firehose sequence number observed.
    pub fn highest_seq(&self) -> u64 {
        self.highest_seq
    }

    /// Record one frame forwarded into this relay from an upstream
    /// (regional) relay tier.
    pub fn record_forwarded(&mut self) {
        self.events_forwarded += 1;
    }

    /// Record one frame dropped by the cross-relay dedup index because it
    /// already reached this relay via another region.
    pub fn record_duplicate_dropped(&mut self) {
        self.duplicates_dropped += 1;
    }

    /// Record one key admitted into the cross-relay dedup index.
    pub fn record_dedup_tracked(&mut self) {
        self.dedup_tracked += 1;
    }

    /// Frames forwarded into this relay from upstream relay tiers.
    pub fn events_forwarded(&self) -> u64 {
        self.events_forwarded
    }

    /// Frames dropped by cross-relay dedup as already-seen.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// Keys admitted into the cross-relay dedup index.
    pub fn dedup_tracked(&self) -> u64 {
        self.dedup_tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(n: i64) -> Datetime {
        Datetime::from_ymd(2024, 4, 1).unwrap().plus_days(n)
    }

    #[test]
    fn per_day_accounting() {
        let mut stats = RelayStats::new();
        stats.record_event(day(0), 100, 1);
        stats.record_event(day(0), 150, 2);
        stats.record_event(day(1), 200, 3);
        assert_eq!(stats.total_events(), 3);
        assert_eq!(stats.total_bytes(), 450);
        assert_eq!(stats.active_days(), 2);
        assert!((stats.mean_bytes_per_day() - 225.0).abs() < 1e-9);
        let series = stats.daily_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1, 2);
        assert_eq!(series[0].2, 250);
        assert_eq!(stats.highest_seq(), 3);
    }

    #[test]
    fn cache_accounting() {
        let mut stats = RelayStats::new();
        stats.record_cache_miss(1_000);
        stats.record_cache_hit();
        stats.record_cache_hit();
        stats.record_delta_fetch(50);
        assert_eq!(stats.cache_hits(), 2);
        assert_eq!(stats.cache_misses(), 1);
        assert_eq!(stats.delta_fetches(), 1);
        assert_eq!(stats.bytes_fetched_from_pds(), 1_050);
        assert_eq!(stats.delta_bytes_fetched(), 50);
    }

    #[test]
    fn empty_stats() {
        let stats = RelayStats::new();
        assert_eq!(stats.total_events(), 0);
        assert_eq!(stats.mean_bytes_per_day(), 0.0);
        assert!(stats.daily_series().is_empty());
    }
}
