//! # bsky-atproto
//!
//! A self-contained implementation of the AT Protocol ("ATProto") data model
//! as used by Bluesky and as described in *Looking AT the Blue Skies of
//! Bluesky* (IMC 2024).
//!
//! The crate provides every on-the-wire and at-rest structure the measurement
//! study touches:
//!
//! * **Identifiers** — [`did::Did`] (PLC and WEB methods), [`handle::Handle`]
//!   (FQDN handles), [`nsid::Nsid`] (lexicon namespaces), [`tid::Tid`]
//!   (timestamp identifiers / record keys) and [`aturi::AtUri`]
//!   (`at://<did>/<collection>/<rkey>` record URIs).
//! * **Encoding** — a DAG-CBOR subset ([`cbor`]) used to serialise repository
//!   records, plus content addressing ([`cid`]) on top of an in-crate SHA-256
//!   implementation ([`crypto`]).
//! * **Repositories** — a Merkle Search Tree ([`mst`]), signed commits and CAR
//!   export ([`repo`]), and the lexicon record types of the `app.bsky` and
//!   `com.atproto` namespaces ([`record`]).
//! * **Streaming** — firehose event frames ([`firehose`]), moderation
//!   labels ([`label`]), and wire-framing mitigations ([`framing`]:
//!   padding and batching policies for the §10 traffic observatory).
//! * **Time** — a dependency-free civil datetime ([`datetime`]) so that the
//!   whole workspace shares one notion of simulated wall-clock time.
//!
//! The crate is deliberately synchronous and allocation-conscious, following
//! the smoltcp idiom of the networking guides: plain data structures, explicit
//! state machines, and no hidden global state.

// Unsafe code is denied crate-wide with one audited exception: the SHA-NI
// hardware compression path in `crypto::shani`, which is pure `core::arch`
// intrinsics behind a runtime CPU-feature probe and is pinned bit-for-bit
// against the safe scalar implementation by test.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aturi;
pub mod blockstore;
pub mod cbor;
pub mod cid;
pub mod crypto;
pub mod datetime;
pub mod did;
pub mod error;
pub mod firehose;
pub mod framing;
pub mod handle;
pub mod label;
pub mod mst;
pub mod nsid;
pub mod record;
pub mod repo;
pub mod testrand;
pub mod tid;

pub use aturi::AtUri;
pub use blockstore::{BlockStore, StoreConfig, StoreKind};
pub use cid::Cid;
pub use datetime::Datetime;
pub use did::{Did, DidMethod};
pub use error::{AtError, Result};
pub use framing::{BatchPolicy, FramingPolicy, PaddingPolicy};
pub use handle::Handle;
pub use nsid::Nsid;
pub use record::Record;
pub use repo::{Commit, Repository};
pub use tid::Tid;
