//! Error types shared by the ATProto data model.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AtError>;

/// Errors produced while parsing, encoding or manipulating ATProto data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtError {
    /// A DID string did not match `did:<method>:<identifier>` or used an
    /// unsupported method.
    InvalidDid(String),
    /// A handle was not a valid fully-qualified domain name.
    InvalidHandle(String),
    /// An NSID did not follow the reverse-DNS naming rules.
    InvalidNsid(String),
    /// A TID was not 13 base32-sortable characters.
    InvalidTid(String),
    /// An `at://` URI could not be parsed.
    InvalidAtUri(String),
    /// A CID string or byte representation was malformed.
    InvalidCid(String),
    /// CBOR encoding failed (e.g. unsupported float payload).
    CborEncode(String),
    /// CBOR decoding failed (truncated input, bad major type, ...).
    CborDecode(String),
    /// A record did not contain the fields required by its lexicon.
    InvalidRecord(String),
    /// A repository operation referenced a missing key or commit.
    RepoError(String),
    /// A delta was requested since a revision that a compaction pass has
    /// dropped from the delta-serving window: the caller must fall back to
    /// a full CAR fetch (and should surface the fallback, not hide it).
    RevisionCompacted(String),
    /// A signature did not verify against the signer's key.
    BadSignature(String),
    /// A datetime string or component was out of range.
    InvalidDatetime(String),
    /// A label value violated the labelling rules (e.g. empty value).
    InvalidLabel(String),
}

impl fmt::Display for AtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtError::InvalidDid(s) => write!(f, "invalid DID: {s}"),
            AtError::InvalidHandle(s) => write!(f, "invalid handle: {s}"),
            AtError::InvalidNsid(s) => write!(f, "invalid NSID: {s}"),
            AtError::InvalidTid(s) => write!(f, "invalid TID: {s}"),
            AtError::InvalidAtUri(s) => write!(f, "invalid at:// URI: {s}"),
            AtError::InvalidCid(s) => write!(f, "invalid CID: {s}"),
            AtError::CborEncode(s) => write!(f, "CBOR encode error: {s}"),
            AtError::CborDecode(s) => write!(f, "CBOR decode error: {s}"),
            AtError::InvalidRecord(s) => write!(f, "invalid record: {s}"),
            AtError::RepoError(s) => write!(f, "repository error: {s}"),
            AtError::RevisionCompacted(s) => {
                write!(f, "revision compacted (full fetch required): {s}")
            }
            AtError::BadSignature(s) => write!(f, "bad signature: {s}"),
            AtError::InvalidDatetime(s) => write!(f, "invalid datetime: {s}"),
            AtError::InvalidLabel(s) => write!(f, "invalid label: {s}"),
        }
    }
}

impl std::error::Error for AtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = AtError::InvalidDid("did:xyz".into());
        assert!(e.to_string().contains("did:xyz"));
        let e = AtError::CborDecode("truncated".into());
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            AtError::InvalidTid("x".into()),
            AtError::InvalidTid("x".into())
        );
        assert_ne!(
            AtError::InvalidTid("x".into()),
            AtError::InvalidTid("y".into())
        );
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&AtError::RepoError("missing".into()));
    }
}
