//! Content identifiers (CIDs).
//!
//! ATProto addresses every repository node and record by a CID. We model a
//! CIDv1 with the DAG-CBOR codec and a SHA-256 multihash, rendered in a
//! base32-lower multibase, which is exactly the shape Bluesky uses
//! (`bafyrei...`). The binary layout is simplified (version byte, codec byte,
//! digest) but the string form, ordering and uniqueness properties match what
//! the measurement pipeline relies on.

use crate::crypto::{sha256, Digest, DIGEST_LEN};
use crate::error::{AtError, Result};
use std::fmt;

const BASE32_ALPHABET: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// Codec tag for DAG-CBOR blocks.
pub const CODEC_DAG_CBOR: u8 = 0x71;
/// Codec tag for raw blocks (e.g. blobs).
pub const CODEC_RAW: u8 = 0x55;

/// A content identifier: (version, codec, SHA-256 digest).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cid {
    codec: u8,
    digest: Digest,
}

impl Cid {
    /// CID of a DAG-CBOR encoded block.
    pub fn for_cbor(bytes: &[u8]) -> Cid {
        Cid {
            codec: CODEC_DAG_CBOR,
            digest: sha256(bytes),
        }
    }

    /// CID of a raw (non-CBOR) block such as an image blob.
    pub fn for_raw(bytes: &[u8]) -> Cid {
        Cid {
            codec: CODEC_RAW,
            digest: sha256(bytes),
        }
    }

    /// Construct from parts (used by decoders).
    pub fn from_parts(codec: u8, digest: Digest) -> Cid {
        Cid { codec, digest }
    }

    /// The codec byte.
    pub fn codec(&self) -> u8 {
        self.codec
    }

    /// The raw digest.
    pub fn digest(&self) -> &Digest {
        &self.digest
    }

    /// Binary form: version, codec, hash function tag, length, digest.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + DIGEST_LEN);
        out.push(0x01); // CIDv1
        out.push(self.codec);
        out.push(0x12); // sha2-256 multihash code
        out.push(DIGEST_LEN as u8);
        out.extend_from_slice(&self.digest);
        out
    }

    /// Parse the binary form produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Cid> {
        if bytes.len() != 4 + DIGEST_LEN {
            return Err(AtError::InvalidCid(format!(
                "bad CID length {}",
                bytes.len()
            )));
        }
        if bytes[0] != 0x01 || bytes[2] != 0x12 || bytes[3] != DIGEST_LEN as u8 {
            return Err(AtError::InvalidCid("bad CID header".into()));
        }
        let mut digest = [0u8; DIGEST_LEN];
        digest.copy_from_slice(&bytes[4..]);
        Ok(Cid {
            codec: bytes[1],
            digest,
        })
    }

    /// String form: multibase `b` prefix + base32-lower of the binary form.
    pub fn to_string_form(&self) -> String {
        let mut s = String::with_capacity(60);
        s.push('b');
        base32_encode(&self.to_bytes(), &mut s);
        s
    }

    /// Parse the string form.
    pub fn parse(s: &str) -> Result<Cid> {
        let rest = s
            .strip_prefix('b')
            .ok_or_else(|| AtError::InvalidCid(format!("missing multibase prefix: {s}")))?;
        let bytes = base32_decode(rest)?;
        Cid::from_bytes(&bytes)
    }
}

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_form())
    }
}

impl fmt::Debug for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cid({})", self.to_string_form())
    }
}

fn base32_encode(data: &[u8], out: &mut String) {
    let mut buffer: u64 = 0;
    let mut bits: u32 = 0;
    for &byte in data {
        buffer = (buffer << 8) | byte as u64;
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            let idx = ((buffer >> bits) & 0x1f) as usize;
            out.push(BASE32_ALPHABET[idx] as char);
        }
    }
    if bits > 0 {
        let idx = ((buffer << (5 - bits)) & 0x1f) as usize;
        out.push(BASE32_ALPHABET[idx] as char);
    }
}

fn base32_decode(s: &str) -> Result<Vec<u8>> {
    let mut buffer: u64 = 0;
    let mut bits: u32 = 0;
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    for c in s.bytes() {
        let val = BASE32_ALPHABET
            .iter()
            .position(|&a| a == c)
            .ok_or_else(|| AtError::InvalidCid(format!("bad base32 char '{}'", c as char)))?
            as u64;
        buffer = (buffer << 5) | val;
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((buffer >> bits) & 0xff) as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_is_deterministic_and_content_addressed() {
        let a = Cid::for_cbor(b"hello");
        let b = Cid::for_cbor(b"hello");
        let c = Cid::for_cbor(b"hello!");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Codec participates in identity.
        assert_ne!(Cid::for_cbor(b"x"), Cid::for_raw(b"x"));
    }

    #[test]
    fn string_form_shape() {
        let cid = Cid::for_cbor(b"some record");
        let s = cid.to_string_form();
        assert!(s.starts_with('b'));
        assert!(s.len() > 50);
        assert!(s
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
    }

    #[test]
    fn roundtrip_string_and_bytes() {
        for payload in [&b""[..], b"a", b"abc", b"the quick brown fox"] {
            let cid = Cid::for_cbor(payload);
            assert_eq!(Cid::parse(&cid.to_string_form()).unwrap(), cid);
            assert_eq!(Cid::from_bytes(&cid.to_bytes()).unwrap(), cid);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Cid::parse("nonsense").is_err());
        assert!(Cid::parse("b!!!").is_err());
        assert!(Cid::from_bytes(&[1, 2, 3]).is_err());
        let mut bytes = Cid::for_cbor(b"x").to_bytes();
        bytes[0] = 0x02;
        assert!(Cid::from_bytes(&bytes).is_err());
    }

    #[test]
    fn base32_roundtrip_various_lengths() {
        for len in 0..40usize {
            let data: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37)).collect();
            let mut s = String::new();
            base32_encode(&data, &mut s);
            let back = base32_decode(&s).unwrap();
            assert_eq!(back, data, "length {len}");
        }
    }

    #[test]
    fn ordering_is_stable() {
        let mut cids: Vec<Cid> = (0..10u8).map(|i| Cid::for_cbor(&[i])).collect();
        let mut cloned = cids.clone();
        cids.sort();
        cloned.sort_by_key(|c| *c.digest());
        // Ordering by digest matches derive(Ord) given equal codecs.
        assert_eq!(cids, cloned);
    }
}
