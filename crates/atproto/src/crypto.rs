//! Minimal cryptographic primitives used by the repository layer.
//!
//! The study never needs real elliptic-curve cryptography: it only needs repo
//! commits to be *content addressed* and *attributable to a signing key* so
//! that sync, firehose and identity semantics hold. We therefore implement
//! SHA-256 from the FIPS 180-4 specification and build a deterministic
//! keyed-hash signature scheme (an HMAC-SHA-256 construction) on top of it.
//! This keeps the workspace free of external crypto dependencies while
//! exercising the same code paths a real deployment would (hashing every
//! record, signing every commit, verifying on ingest).

use crate::error::{AtError, Result};

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// A 256-bit digest.
pub type Digest = [u8; DIGEST_LEN];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use bsky_atproto::crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(bsky_atproto::crypto::to_hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feed bytes into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.process_block(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consume the hasher and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding then the 64-bit length.
        self.update_padding();
        let mut len_block = [0u8; 8];
        len_block.copy_from_slice(&bit_len.to_be_bytes());
        // After update_padding the buffer has exactly 56 bytes pending.
        self.buffer[56..64].copy_from_slice(&len_block);
        let block = self.buffer;
        self.process_block(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self) {
        // Write 0x80 then pad with zeros until 56 bytes are pending in the
        // final block (processing an extra block if necessary).
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pending = self.buffer_len;
        let pad_len = if pending < 56 {
            56 - pending
        } else {
            120 - pending
        };
        // Manually process without affecting total_len.
        let mut input = &pad[..pad_len];
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        if !input.is_empty() {
            self.buffer[self.buffer_len..self.buffer_len + input.len()].copy_from_slice(input);
            self.buffer_len += input.len();
        }
        debug_assert_eq!(self.buffer_len, 56);
    }

    #[allow(unsafe_code)] // dispatch into the audited `shani` fast path
    fn process_block(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY: `available()` confirmed the sha/ssse3/sse4.1 features.
            unsafe { shani::process_block(&mut self.state, block) };
            return;
        }
        self.process_block_scalar(block);
    }

    fn process_block_scalar(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hardware SHA-256 block compression via the x86 SHA extensions, used when
/// the CPU advertises them (every block run through here produces exactly
/// the state transition of [`Sha256::process_block_scalar`] — pinned by the
/// `hardware_and_scalar_compression_agree` test). Round-constant vectors are
/// loaded from the same `K` table as the scalar path. Layout follows the
/// standard ABEF/CDGH register scheme of the extension.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // the one audited exception to the crate-wide deny
mod shani {
    use super::K;
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    /// One-time runtime feature probe.
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            is_x86_feature_detected!("sha")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("sse4.1")
        })
    }

    #[inline]
    unsafe fn load_k(round: usize) -> __m128i {
        _mm_loadu_si128(K.as_ptr().add(round).cast())
    }

    /// # Safety
    /// Requires the `sha`, `ssse3` and `sse4.1` CPU features (checked by
    /// [`available`]).
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn process_block(state: &mut [u32; 8], block: &[u8; 64]) {
        // Big-endian 32-bit lane loads of the message block.
        let byte_swap = _mm_set_epi64x(0x0c0d0e0f08090a0bu64 as i64, 0x0405060700010203u64 as i64);

        // Repack [a,b,c,d] / [e,f,g,h] into the ABEF / CDGH working pair.
        let mut tmp = _mm_loadu_si128(state.as_ptr().cast());
        let mut state1 = _mm_loadu_si128(state.as_ptr().add(4).cast());
        tmp = _mm_shuffle_epi32(tmp, 0xB1);
        state1 = _mm_shuffle_epi32(state1, 0x1B);
        let mut state0 = _mm_alignr_epi8(tmp, state1, 8);
        state1 = _mm_blend_epi16(state1, tmp, 0xF0);
        let abef_save = state0;
        let cdgh_save = state1;

        // Four-round step: feed W[i..i+4]+K[i..i+4] through both halves of
        // the state.
        macro_rules! rounds4 {
            ($wk:expr) => {{
                let mut msg = $wk;
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                msg = _mm_shuffle_epi32(msg, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            }};
        }

        let mut msgs = [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), byte_swap),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), byte_swap),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), byte_swap),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), byte_swap),
        ];

        // Rounds 0-11: the schedule only needs the msg1 half so far.
        rounds4!(_mm_add_epi32(msgs[0], load_k(0)));
        rounds4!(_mm_add_epi32(msgs[1], load_k(4)));
        msgs[0] = _mm_sha256msg1_epu32(msgs[0], msgs[1]);
        rounds4!(_mm_add_epi32(msgs[2], load_k(8)));
        msgs[1] = _mm_sha256msg1_epu32(msgs[1], msgs[2]);

        // Rounds 12-51: full rotating schedule. In group `g` the vector
        // `msgs[g % 4]` carries W[4g..4g+4]; the next vector absorbs the
        // alignr/msg2 recurrence and the previous one starts msg1.
        for g in 3..=12 {
            let a = g % 4;
            rounds4!(_mm_add_epi32(msgs[a], load_k(4 * g)));
            let shifted = _mm_alignr_epi8(msgs[a], msgs[(a + 3) % 4], 4);
            msgs[(a + 1) % 4] = _mm_add_epi32(msgs[(a + 1) % 4], shifted);
            msgs[(a + 1) % 4] = _mm_sha256msg2_epu32(msgs[(a + 1) % 4], msgs[a]);
            msgs[(a + 3) % 4] = _mm_sha256msg1_epu32(msgs[(a + 3) % 4], msgs[a]);
        }

        // Rounds 52-63: drain the schedule (no further msg1 feeding needed).
        for g in 13..=14 {
            let a = g % 4;
            rounds4!(_mm_add_epi32(msgs[a], load_k(4 * g)));
            let shifted = _mm_alignr_epi8(msgs[a], msgs[(a + 3) % 4], 4);
            msgs[(a + 1) % 4] = _mm_add_epi32(msgs[(a + 1) % 4], shifted);
            msgs[(a + 1) % 4] = _mm_sha256msg2_epu32(msgs[(a + 1) % 4], msgs[a]);
        }
        rounds4!(_mm_add_epi32(msgs[3], load_k(60)));

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);

        // Unpack ABEF/CDGH back to [a,b,c,d] / [e,f,g,h].
        tmp = _mm_shuffle_epi32(state0, 0x1B);
        state1 = _mm_shuffle_epi32(state1, 0xB1);
        state0 = _mm_blend_epi16(tmp, state1, 0xF0);
        state1 = _mm_alignr_epi8(state1, tmp, 8);
        _mm_storeu_si128(state.as_mut_ptr().cast(), state0);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), state1);
    }
}

/// Hash a byte slice in one call.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA-256 keyed hash (RFC 2104 construction).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        let d = sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(&d);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Render a digest (or any byte slice) as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Parse lowercase/uppercase hex into bytes.
pub fn from_hex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(AtError::InvalidCid(format!("odd hex length {}", s.len())));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| AtError::InvalidCid(format!("bad hex char {}", pair[0] as char)))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| AtError::InvalidCid(format!("bad hex char {}", pair[1] as char)))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

/// A signing key for repository commits and label streams.
///
/// The key is a 32-byte secret; the "public key" (the identifier placed in DID
/// documents) is the SHA-256 of the secret, which is enough for the simulated
/// network to verify attributions deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigningKey {
    secret: [u8; 32],
}

/// A verifying (public) key derived from a [`SigningKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VerifyingKey {
    public: Digest,
}

/// A detached signature over a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Digest);

impl SigningKey {
    /// Derive a key deterministically from seed material (e.g. a DID string
    /// plus a per-network secret).
    pub fn from_seed(seed: &[u8]) -> Self {
        SigningKey {
            secret: sha256(seed),
        }
    }

    /// The matching verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            public: sha256(&self.secret),
        }
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        // Bind the signature to the public key so two keys never produce the
        // same signature for the same message.
        let pk = self.verifying_key();
        let mut keyed = Vec::with_capacity(64);
        keyed.extend_from_slice(&self.secret);
        keyed.extend_from_slice(&pk.public);
        Signature(hmac_sha256(&keyed, message))
    }
}

impl VerifyingKey {
    /// `did:key`-style multibase rendering used inside DID documents.
    pub fn to_multibase(&self) -> String {
        format!("zQ3sim{}", to_hex(&self.public))
    }

    /// Parse the multibase rendering produced by [`Self::to_multibase`].
    pub fn from_multibase(s: &str) -> Result<Self> {
        let hex = s
            .strip_prefix("zQ3sim")
            .ok_or_else(|| AtError::InvalidCid(format!("bad key multibase: {s}")))?;
        let bytes = from_hex(hex)?;
        if bytes.len() != DIGEST_LEN {
            return Err(AtError::InvalidCid("bad key length".into()));
        }
        let mut public = [0u8; DIGEST_LEN];
        public.copy_from_slice(&bytes);
        Ok(VerifyingKey { public })
    }

    /// Raw public bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.public
    }
}

/// Verify a signature given the *signing* key owner (used by the simulated
/// services, which hold the key registry).
pub fn verify(key: &SigningKey, message: &[u8], sig: &Signature) -> bool {
    key.sign(message) == *sig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// On machines with the SHA extensions the hardware compression must
    /// reproduce the scalar path bit for bit — every CID and signature in
    /// the study depends on it. On machines without them, this degenerates
    /// to scalar-vs-scalar and passes trivially.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // exercises the audited `shani` fast path directly
    #[test]
    fn hardware_and_scalar_compression_agree() {
        if !shani::available() {
            return;
        }
        let mut state = H0;
        let mut scalar = Sha256::new();
        // A few hundred deterministic pseudo-random blocks, chained so state
        // divergence at any block propagates to the end.
        let mut seed = 0x1234_5678_9abc_def0u64;
        for _ in 0..256 {
            let mut block = [0u8; 64];
            for chunk in block.chunks_exact_mut(8) {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                chunk.copy_from_slice(&seed.to_le_bytes());
            }
            unsafe { shani::process_block(&mut state, &block) };
            scalar.process_block_scalar(&block);
            assert_eq!(state, scalar.state);
        }
    }

    // FIPS 180-4 / NIST test vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_blocks() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_exact_block_boundaries() {
        // 55, 56, 63, 64, 65 bytes exercise every padding branch.
        for n in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0x61u8; n];
            let one_shot = sha256(&data);
            let mut inc = Sha256::new();
            for chunk in data.chunks(7) {
                inc.update(chunk);
            }
            assert_eq!(one_shot, inc.finalize(), "length {n}");
        }
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_rfc4231_case1() {
        // RFC 4231 test case 1.
        let key = [0x0bu8; 20];
        let digest = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&digest),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let digest = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&digest),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let key = vec![0xaau8; 131];
        let digest = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&digest),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = (0u8..=255).collect::<Vec<_>>();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn signatures_verify_and_bind_to_key() {
        let k1 = SigningKey::from_seed(b"did:plc:alice");
        let k2 = SigningKey::from_seed(b"did:plc:bob");
        let msg = b"commit bytes";
        let sig = k1.sign(msg);
        assert!(verify(&k1, msg, &sig));
        assert!(!verify(&k2, msg, &sig));
        assert!(!verify(&k1, b"other message", &sig));
    }

    #[test]
    fn signing_is_deterministic() {
        let k = SigningKey::from_seed(b"seed");
        assert_eq!(k.sign(b"m"), k.sign(b"m"));
    }

    #[test]
    fn verifying_key_multibase_roundtrip() {
        let k = SigningKey::from_seed(b"did:plc:carol");
        let vk = k.verifying_key();
        let mb = vk.to_multibase();
        assert!(mb.starts_with("zQ3sim"));
        assert_eq!(VerifyingKey::from_multibase(&mb).unwrap(), vk);
        assert!(VerifyingKey::from_multibase("nonsense").is_err());
    }
}
