//! Decentralized Identifiers (DIDs).
//!
//! Bluesky recognises two DID methods (§2 of the paper): `did:plc`, resolved
//! through the `plc.directory` service operated by Bluesky PBC, and `did:web`,
//! resolved through `https://<fqdn>/.well-known/did.json`. The immutable DID
//! is the primary key for a user across the whole network.

use crate::crypto::{sha256, to_hex};
use crate::error::{AtError, Result};
use std::fmt;

/// The DID method, which determines how the DID document is retrieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DidMethod {
    /// `did:plc` — resolved via the centralized PLC directory.
    Plc,
    /// `did:web` — resolved via the domain's `/.well-known/did.json`.
    Web,
}

impl DidMethod {
    /// The method name as it appears in the DID string.
    pub fn as_str(&self) -> &'static str {
        match self {
            DidMethod::Plc => "plc",
            DidMethod::Web => "web",
        }
    }
}

impl fmt::Display for DidMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed DID, e.g. `did:plc:ewvi7nxzyoun6zhxrhs64oiz` or
/// `did:web:example.com`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Did {
    method: DidMethod,
    identifier: String,
}

/// Alphabet used by PLC identifiers (base32-sortable, lowercase).
const PLC_ALPHABET: &[u8; 32] = b"234567abcdefghijklmnopqrstuvwxyz";
/// Length of the method-specific identifier of a `did:plc`.
pub const PLC_ID_LEN: usize = 24;

impl Did {
    /// Parse a DID string.
    pub fn parse(s: &str) -> Result<Did> {
        let rest = s
            .strip_prefix("did:")
            .ok_or_else(|| AtError::InvalidDid(s.to_string()))?;
        let (method, identifier) = rest
            .split_once(':')
            .ok_or_else(|| AtError::InvalidDid(s.to_string()))?;
        if identifier.is_empty() {
            return Err(AtError::InvalidDid(s.to_string()));
        }
        match method {
            "plc" => {
                if identifier.len() != PLC_ID_LEN
                    || !identifier.bytes().all(|b| PLC_ALPHABET.contains(&b))
                {
                    return Err(AtError::InvalidDid(s.to_string()));
                }
                Ok(Did {
                    method: DidMethod::Plc,
                    identifier: identifier.to_string(),
                })
            }
            "web" => {
                if !identifier
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-')
                    || identifier.starts_with('.')
                    || identifier.ends_with('.')
                    || !identifier.contains('.')
                {
                    return Err(AtError::InvalidDid(s.to_string()));
                }
                Ok(Did {
                    method: DidMethod::Web,
                    identifier: identifier.to_string(),
                })
            }
            _ => Err(AtError::InvalidDid(s.to_string())),
        }
    }

    /// Derive a deterministic `did:plc` from seed material (in the real PLC
    /// method the identifier is a hash of the genesis operation; we hash the
    /// seed, which preserves uniqueness and determinism).
    pub fn plc_from_seed(seed: &[u8]) -> Did {
        let digest = sha256(seed);
        let hex = to_hex(&digest);
        let mut id = String::with_capacity(PLC_ID_LEN);
        for (i, b) in hex.bytes().enumerate().take(PLC_ID_LEN) {
            // Map each hex nibble character plus position into the PLC alphabet.
            let v = (b as usize + i * 7) % 32;
            id.push(PLC_ALPHABET[v] as char);
        }
        Did {
            method: DidMethod::Plc,
            identifier: id,
        }
    }

    /// Construct a `did:web` for a domain.
    pub fn web(domain: &str) -> Result<Did> {
        Did::parse(&format!("did:web:{domain}"))
    }

    /// The method of this DID.
    pub fn method(&self) -> DidMethod {
        self.method
    }

    /// The method-specific identifier (PLC id or domain name).
    pub fn identifier(&self) -> &str {
        &self.identifier
    }

    /// For `did:web`, the domain the DID document must be fetched from.
    pub fn web_domain(&self) -> Option<&str> {
        match self.method {
            DidMethod::Web => Some(&self.identifier),
            DidMethod::Plc => None,
        }
    }

    /// Full string form.
    pub fn as_string(&self) -> String {
        format!("did:{}:{}", self.method.as_str(), self.identifier)
    }

    /// FNV-1a hash of the full DID string — the canonical entity-sharding
    /// hash: the workload plan partitions the population by it, and the
    /// AppView routes actors and graph edges by it, so both layers agree on
    /// which shard owns a DID.
    pub fn shard_hash(&self) -> u64 {
        self.fold_shard_hash(FNV_OFFSET)
    }

    /// Continue an FNV-1a fold over this DID's canonical string bytes
    /// (`did:<method>:<identifier>`) without materializing the string —
    /// this sits on the AppView's per-record routing hot path.
    pub fn fold_shard_hash(&self, hash: u64) -> u64 {
        let hash = fnv1a_64(b"did:", hash);
        let hash = fnv1a_64(self.method.as_str().as_bytes(), hash);
        let hash = fnv1a_64(b":", hash);
        fnv1a_64(self.identifier.as_bytes(), hash)
    }
}

/// FNV-1a offset basis (the hash of the empty string).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a folding step over a byte slice, continuing from `hash`
/// (start from [`FNV_OFFSET`]). Shared by every entity-sharding surface —
/// DIDs ([`Did::shard_hash`]) and AT-URIs (the AppView's post shards) — so
/// shard assignment is a stable pure function of the entity string.
pub fn fnv1a_64(bytes: &[u8], mut hash: u64) -> u64 {
    for byte in bytes {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl fmt::Display for Did {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "did:{}:{}", self.method.as_str(), self.identifier)
    }
}

impl fmt::Debug for Did {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Did({self})")
    }
}

impl std::str::FromStr for Did {
    type Err = AtError;
    fn from_str(s: &str) -> Result<Did> {
        Did::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn parse_plc_did_from_paper() {
        let did = Did::parse("did:plc:ewvi7nxzyoun6zhxrhs64oiz").unwrap();
        assert_eq!(did.method(), DidMethod::Plc);
        assert_eq!(did.identifier(), "ewvi7nxzyoun6zhxrhs64oiz");
        assert_eq!(did.to_string(), "did:plc:ewvi7nxzyoun6zhxrhs64oiz");
        assert!(did.web_domain().is_none());
    }

    #[test]
    fn parse_labeler_dids_from_table6() {
        for s in [
            "did:plc:wp7hxfjl5l4zlptn7y6774lk",
            "did:plc:ar7c4by46qjdydhdevvrndac",
            "did:plc:newitj5jo3uel7o4mnf3vj2o",
            "did:plc:mjyeurqmqjeexbgigk3yytvb",
            "did:plc:bpkpvmwpd3nr2ry4btt55ack",
        ] {
            assert!(Did::parse(s).is_ok(), "{s}");
        }
    }

    #[test]
    fn parse_web_did() {
        let did = Did::parse("did:web:example.com").unwrap();
        assert_eq!(did.method(), DidMethod::Web);
        assert_eq!(did.web_domain(), Some("example.com"));
    }

    #[test]
    fn reject_malformed() {
        for s in [
            "",
            "did:",
            "did:plc:",
            "did:plc:short",
            "did:plc:UPPERCASEUPPERCASEUPPERC",
            "did:plc:0123456789abcdefghijklmn", // '0' and '1' not in alphabet
            "did:web:",
            "did:web:nodots",
            "did:web:.leading.dot",
            "did:web:trailing.dot.",
            "did:key:zabc",
            "plc:ewvi7nxzyoun6zhxrhs64oiz",
        ] {
            assert!(Did::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn seeded_plc_dids_are_deterministic_valid_and_distinct() {
        let mut seen = HashSet::new();
        for i in 0..5_000u32 {
            let did = Did::plc_from_seed(format!("user-{i}").as_bytes());
            assert_eq!(did, Did::plc_from_seed(format!("user-{i}").as_bytes()));
            // Re-parsing the rendered form succeeds.
            assert_eq!(Did::parse(&did.to_string()).unwrap(), did);
            assert!(seen.insert(did.to_string()), "collision at {i}");
        }
    }

    #[test]
    fn ordering_groups_by_method_then_id() {
        let a = Did::plc_from_seed(b"a");
        let b = Did::web("zzz.example").unwrap();
        assert!(a < b); // Plc < Web per enum ordering
    }

    #[test]
    fn from_str_works() {
        let did: Did = "did:web:blog.example.org".parse().unwrap();
        assert_eq!(did.method(), DidMethod::Web);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn seeded_dids_always_reparse() {
        let mut rng = TestRng::new(0xd1d);
        for _ in 0..200 {
            let seed = rng.bytes(48);
            let did = Did::plc_from_seed(&seed);
            assert_eq!(Did::parse(&did.to_string()).unwrap(), did);
        }
    }

    #[test]
    fn parser_never_panics() {
        let mut rng = TestRng::new(0xd1d2);
        for _ in 0..500 {
            let s = rng.junk_string(64);
            let _ = Did::parse(&s);
        }
    }

    #[test]
    fn shard_hash_is_the_fnv1a_of_the_string_form() {
        let mut rng = TestRng::new(0xd1d3);
        for _ in 0..100 {
            let did = Did::plc_from_seed(&rng.bytes(32));
            assert_eq!(
                did.shard_hash(),
                fnv1a_64(did.to_string().as_bytes(), FNV_OFFSET)
            );
        }
        let web = Did::web("example.com").unwrap();
        assert_eq!(
            web.shard_hash(),
            fnv1a_64(b"did:web:example.com", FNV_OFFSET)
        );
    }
}
