//! Timestamp identifiers (TIDs).
//!
//! Record keys in ATProto repositories are TIDs: 13 characters of
//! base32-sortable encoding over a 64-bit value composed of a microsecond
//! timestamp and a per-writer clock identifier. TIDs sort lexicographically
//! in time order, which the repository (MST) layer and the paper's timestamp
//! analyses ("2,202 Feed Generator posts have timestamps predating Bluesky's
//! launch") both rely on.

use crate::datetime::Datetime;
use crate::error::{AtError, Result};
use std::fmt;

/// Base32-sortable alphabet used by TIDs.
const TID_ALPHABET: &[u8; 32] = b"234567abcdefghijklmnopqrstuvwxyz";
/// Number of characters in a TID.
pub const TID_LEN: usize = 13;

/// A timestamp identifier / record key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(u64);

impl Tid {
    /// Construct a TID from a timestamp (microseconds since the epoch) and a
    /// 10-bit clock identifier that disambiguates concurrent writers.
    pub fn from_micros(micros: u64, clock_id: u16) -> Tid {
        // Top bit must remain 0 so the first character stays in range.
        let ts = micros & ((1 << 53) - 1);
        Tid((ts << 10) | (clock_id as u64 & 0x3ff))
    }

    /// Construct from a [`Datetime`] plus a sub-second sequence number and
    /// clock id, keeping ordering within a second.
    pub fn from_datetime(dt: Datetime, sequence: u32, clock_id: u16) -> Tid {
        let micros = (dt.timestamp().max(0) as u64) * 1_000_000 + (sequence as u64 % 1_000_000);
        Tid::from_micros(micros, clock_id)
    }

    /// The embedded timestamp in microseconds since the epoch.
    pub fn timestamp_micros(&self) -> u64 {
        self.0 >> 10
    }

    /// The embedded timestamp as a [`Datetime`] (seconds precision).
    pub fn datetime(&self) -> Datetime {
        Datetime((self.timestamp_micros() / 1_000_000) as i64)
    }

    /// The 10-bit clock identifier.
    pub fn clock_id(&self) -> u16 {
        (self.0 & 0x3ff) as u16
    }

    /// The raw 64-bit value.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Render as a 13-character base32-sortable string, e.g. `3kdgeujwlq32y`.
    pub fn to_string_form(&self) -> String {
        let mut out = [0u8; TID_LEN];
        let mut v = self.0;
        for slot in out.iter_mut().rev() {
            *slot = TID_ALPHABET[(v & 0x1f) as usize];
            v >>= 5;
        }
        String::from_utf8(out.to_vec()).expect("alphabet is ascii")
    }

    /// Parse the string form.
    pub fn parse(s: &str) -> Result<Tid> {
        if s.len() != TID_LEN {
            return Err(AtError::InvalidTid(s.to_string()));
        }
        let mut v: u64 = 0;
        for c in s.bytes() {
            let idx = TID_ALPHABET
                .iter()
                .position(|&a| a == c)
                .ok_or_else(|| AtError::InvalidTid(s.to_string()))? as u64;
            v = (v << 5) | idx;
        }
        Ok(Tid(v))
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_form())
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tid({})", self.to_string_form())
    }
}

impl std::str::FromStr for Tid {
    type Err = AtError;
    fn from_str(s: &str) -> Result<Tid> {
        Tid::parse(s)
    }
}

/// A monotonic TID generator for a single writer (PDS or account).
///
/// Real PDS implementations guarantee strictly increasing TIDs even when the
/// clock stalls; this clocker reproduces that behaviour.
#[derive(Debug, Clone)]
pub struct TidClock {
    clock_id: u16,
    last_micros: u64,
}

impl TidClock {
    /// Create a clock with the given 10-bit writer identifier.
    pub fn new(clock_id: u16) -> TidClock {
        TidClock {
            clock_id: clock_id & 0x3ff,
            last_micros: 0,
        }
    }

    /// Produce the next TID at or after the given instant.
    pub fn next(&mut self, now: Datetime) -> Tid {
        let mut micros = now.timestamp().max(0) as u64 * 1_000_000;
        if micros <= self.last_micros {
            micros = self.last_micros + 1;
        }
        self.last_micros = micros;
        Tid::from_micros(micros, self.clock_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_form_is_13_chars_and_roundtrips() {
        let tid = Tid::from_micros(1_713_916_800_000_000, 42);
        let s = tid.to_string_form();
        assert_eq!(s.len(), TID_LEN);
        assert_eq!(Tid::parse(&s).unwrap(), tid);
        assert_eq!(tid.clock_id(), 42);
        assert_eq!(tid.timestamp_micros(), 1_713_916_800_000_000);
    }

    #[test]
    fn parses_paper_example_shape() {
        // The paper's example record key.
        let tid = Tid::parse("3kdgeujwlq32y").unwrap();
        assert!(tid.timestamp_micros() > 0);
        assert_eq!(tid.to_string_form(), "3kdgeujwlq32y");
    }

    #[test]
    fn lexicographic_order_matches_time_order() {
        let a = Tid::from_datetime(Datetime::from_ymd(2023, 5, 1).unwrap(), 0, 1);
        let b = Tid::from_datetime(Datetime::from_ymd(2023, 5, 1).unwrap(), 5, 1);
        let c = Tid::from_datetime(Datetime::from_ymd(2024, 2, 6).unwrap(), 0, 1);
        assert!(a.to_string_form() < b.to_string_form());
        assert!(b.to_string_form() < c.to_string_form());
        assert!(a < b && b < c);
    }

    #[test]
    fn clock_is_strictly_monotonic() {
        let mut clock = TidClock::new(7);
        let now = Datetime::from_ymd(2024, 4, 24).unwrap();
        let mut prev = clock.next(now);
        for _ in 0..1000 {
            let next = clock.next(now); // same wall-clock instant
            assert!(next > prev);
            assert!(next.to_string_form() > prev.to_string_form());
            prev = next;
        }
    }

    #[test]
    fn rejects_invalid_strings() {
        assert!(Tid::parse("short").is_err());
        assert!(Tid::parse("0000000000000").is_err()); // '0' not in alphabet
        assert!(Tid::parse("3kdgeujwlq32y9").is_err()); // too long
        assert!(Tid::parse("").is_err());
    }

    #[test]
    fn datetime_extraction() {
        let dt = Datetime::from_ymd_hms(2024, 4, 24, 10, 30, 0).unwrap();
        let tid = Tid::from_datetime(dt, 123, 5);
        assert_eq!(tid.datetime(), dt);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn roundtrip_any_value() {
        let mut rng = TestRng::new(0x71d);
        for _ in 0..300 {
            let micros = rng.below(1u64 << 53);
            let clock = rng.below(1024) as u16;
            let tid = Tid::from_micros(micros, clock);
            assert_eq!(Tid::parse(&tid.to_string_form()).unwrap(), tid);
            assert_eq!(tid.timestamp_micros(), micros);
            assert_eq!(tid.clock_id(), clock);
        }
    }

    #[test]
    fn ordering_is_preserved() {
        let mut rng = TestRng::new(0x71d2);
        for _ in 0..300 {
            let a = rng.below(1u64 << 53);
            let b = rng.below(1u64 << 53);
            let ta = Tid::from_micros(a, 0);
            let tb = Tid::from_micros(b, 0);
            assert_eq!(a.cmp(&b), ta.to_string_form().cmp(&tb.to_string_form()));
        }
    }
}
